//! Source deltas: typed descriptions of how a logical data source evolves.
//!
//! MOMA's mappings are materialized (paper Section 2.2) precisely so they
//! can be *reused* when sources change. A [`SourceDelta`] is the unit of
//! change: a batch of instance additions, removals and attribute updates
//! against one LDS. Applying it through
//! [`SourceRegistry::apply_delta`](crate::SourceRegistry::apply_delta)
//! yields an [`AppliedDelta`] — the resolved arena indexes that were
//! touched — which downstream consumers (incremental matchers, index
//! maintenance in `moma-table`, repository invalidation in `moma-core`)
//! use to re-do only the work the change demands.
//!
//! ## Semantics
//!
//! * `Add` inserts a new instance; a duplicate id is a typed error
//!   ([`crate::ModelError::DuplicateId`]).
//! * `Remove` tombstones an instance: the arena slot (and thus every
//!   `u32` index held by existing mapping tables) stays valid, but the
//!   instance no longer appears in
//!   [`LogicalSource::iter`](crate::LogicalSource::iter) /
//!   [`LogicalSource::project`](crate::LogicalSource::project) output.
//!   Removing an unknown or already-removed id is a recorded no-op
//!   (`skipped`), so delta streams may contain duplicate removals.
//! * `Update` replaces (or with `None` clears) one attribute of a live
//!   instance; the kind must match the schema. Updating an unknown or
//!   removed id is a recorded no-op. Writing a value identical to the
//!   current one is *not* detected — it is reported as touched, and
//!   incremental consumers simply redo a tiny amount of work.

use crate::attr::AttrValue;
use crate::lds::LdsId;

/// One instance-level change inside a [`SourceDelta`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Insert a new instance with the given id and attribute values.
    Add {
        /// Source-assigned identifier of the new instance.
        id: String,
        /// `(attribute name, value)` pairs; unnamed attributes stay
        /// missing.
        fields: Vec<(String, AttrValue)>,
    },
    /// Tombstone the instance with this id.
    Remove {
        /// Identifier of the instance to remove.
        id: String,
    },
    /// Replace (`Some`) or clear (`None`) one attribute of an instance.
    Update {
        /// Identifier of the instance to update.
        id: String,
        /// Attribute name (must exist in the LDS schema).
        attr: String,
        /// The new value; `None` clears the attribute.
        value: Option<AttrValue>,
    },
}

/// A batch of changes against one logical data source.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceDelta {
    /// The source the operations apply to.
    pub lds: LdsId,
    /// The operations, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl SourceDelta {
    /// Empty delta against `lds`.
    pub fn new(lds: LdsId) -> Self {
        Self { lds, ops: vec![] }
    }

    /// Append an `Add` operation (builder style).
    pub fn add(mut self, id: impl Into<String>, fields: Vec<(String, AttrValue)>) -> Self {
        self.ops.push(DeltaOp::Add {
            id: id.into(),
            fields,
        });
        self
    }

    /// Append a `Remove` operation (builder style).
    pub fn remove(mut self, id: impl Into<String>) -> Self {
        self.ops.push(DeltaOp::Remove { id: id.into() });
        self
    }

    /// Append an `Update` operation (builder style).
    pub fn update(
        mut self,
        id: impl Into<String>,
        attr: impl Into<String>,
        value: Option<AttrValue>,
    ) -> Self {
        self.ops.push(DeltaOp::Update {
            id: id.into(),
            attr: attr.into(),
            value,
        });
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The resolved effect of applying a [`SourceDelta`]: which arena indexes
/// were touched, in application order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AppliedDelta {
    /// The source the delta was applied to.
    pub lds: LdsId,
    /// Arena indexes of newly inserted instances.
    pub added: Vec<u32>,
    /// Arena indexes of tombstoned instances.
    pub removed: Vec<u32>,
    /// `(arena index, attribute name)` of every applied update.
    pub updated: Vec<(u32, String)>,
    /// Operations that resolved to nothing (unknown or already-removed
    /// ids) and were ignored.
    pub skipped: usize,
}

impl AppliedDelta {
    /// Whether the delta touched no instance at all.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.updated.is_empty()
    }

    /// Number of touched instances (adds + removes + updates; an
    /// instance updated twice counts twice).
    pub fn touched(&self) -> usize {
        self.added.len() + self.removed.len() + self.updated.len()
    }

    /// Arena indexes whose value of `attr` may have changed: every add
    /// and remove, plus updates naming `attr`.
    pub fn touched_for_attr(&self, attr: &str) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let updated: Vec<u32> = self
            .updated
            .iter()
            .filter(|(_, a)| a == attr)
            .map(|(i, _)| *i)
            .collect();
        (self.added.clone(), self.removed.clone(), updated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_ops() {
        let d = SourceDelta::new(LdsId(3))
            .add("n1", vec![("title".into(), "T".into())])
            .remove("old")
            .update("x", "title", Some("U".into()))
            .update("x", "year", None);
        assert_eq!(d.lds, LdsId(3));
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert!(matches!(d.ops[0], DeltaOp::Add { .. }));
        assert!(matches!(d.ops[1], DeltaOp::Remove { .. }));
        assert!(matches!(d.ops[3], DeltaOp::Update { value: None, .. }));
    }

    #[test]
    fn applied_delta_touch_accounting() {
        let a = AppliedDelta {
            lds: LdsId(0),
            added: vec![5],
            removed: vec![1, 2],
            updated: vec![(3, "title".into()), (3, "year".into())],
            skipped: 1,
        };
        assert!(!a.is_empty());
        assert_eq!(a.touched(), 5);
        let (add, rem, upd) = a.touched_for_attr("title");
        assert_eq!(add, vec![5]);
        assert_eq!(rem, vec![1, 2]);
        assert_eq!(upd, vec![3]);
        assert!(a.touched_for_attr("pages").2.is_empty());
    }

    #[test]
    fn empty_delta() {
        assert!(SourceDelta::new(LdsId(0)).is_empty());
        assert!(AppliedDelta::default().is_empty());
        assert_eq!(AppliedDelta::default().touched(), 0);
    }
}
