//! Object instances.

use crate::attr::AttrValue;

/// An object instance inside a logical data source.
///
/// Per paper Definition 1 context: "Each object instance is identified by
/// an id value and may have additional attribute values." Values are
/// aligned positionally with the owning LDS schema; `None` marks a missing
/// (optional) attribute — common for web sources such as Google Scholar
/// where e.g. the publication year is frequently absent.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInstance {
    /// Source-assigned identifier, e.g. `conf/VLDB/ChirkovaHS01` (DBLP) or
    /// `P-672216` (ACM).
    pub id: String,
    /// Attribute values aligned to the LDS schema slots.
    pub values: Vec<Option<AttrValue>>,
}

impl ObjectInstance {
    /// Create an instance with all attributes missing.
    pub fn new(id: impl Into<String>, arity: usize) -> Self {
        Self {
            id: id.into(),
            values: vec![None; arity],
        }
    }

    /// Create an instance from a full value row.
    pub fn with_values(id: impl Into<String>, values: Vec<Option<AttrValue>>) -> Self {
        Self {
            id: id.into(),
            values,
        }
    }

    /// Value at schema slot `slot`, if present.
    pub fn value(&self, slot: usize) -> Option<&AttrValue> {
        self.values.get(slot).and_then(|v| v.as_ref())
    }

    /// Set the value at schema slot `slot` (grows the row if needed).
    pub fn set(&mut self, slot: usize, value: AttrValue) {
        if slot >= self.values.len() {
            self.values.resize(slot + 1, None);
        }
        self.values[slot] = Some(value);
    }

    /// Number of attributes that are present (non-missing).
    pub fn present_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_missing() {
        let i = ObjectInstance::new("x", 3);
        assert_eq!(i.values.len(), 3);
        assert_eq!(i.present_count(), 0);
        assert!(i.value(0).is_none());
        assert!(i.value(9).is_none());
    }

    #[test]
    fn set_and_get() {
        let mut i = ObjectInstance::new("x", 2);
        i.set(1, AttrValue::Year(2001));
        assert_eq!(i.value(1), Some(&AttrValue::Year(2001)));
        assert_eq!(i.present_count(), 1);
    }

    #[test]
    fn set_grows_row() {
        let mut i = ObjectInstance::new("x", 1);
        i.set(4, AttrValue::Int(9));
        assert_eq!(i.values.len(), 5);
        assert_eq!(i.value(4), Some(&AttrValue::Int(9)));
    }

    #[test]
    fn with_values() {
        let i =
            ObjectInstance::with_values("p1", vec![Some(AttrValue::Text("Title".into())), None]);
        assert_eq!(i.id, "p1");
        assert_eq!(i.present_count(), 1);
    }
}
