//! # moma-datagen — synthetic bibliographic world for the MOMA evaluation
//!
//! The paper evaluates MOMA on database publications 1994–2003 from VLDB,
//! SIGMOD, TODS, VLDB Journal and SIGMOD Record, drawn from three real
//! sources — DBLP, ACM Digital Library, Google Scholar — plus manually
//! confirmed perfect mappings (Section 5.1). Those sources cannot be
//! downloaded today (ACM DL and GS never could), so this crate builds the
//! closest synthetic equivalent:
//!
//! 1. A **world** of real entities: persons, venues (conferences and
//!    journal issues), publications with author lists, pages, years and
//!    citation counts — sized like Table 1 (≈130 venues, ≈2.6k
//!    publications, ≈3.3k authors).
//! 2. Three **source views** with per-source corruption profiles:
//!    * `DBLP` — clean and complete, but with injected duplicate author
//!      pairs (name variants sharing co-authors, Table 9),
//!    * `ACM` — missing VLDB 2002/2003, long-form venue names, light
//!      title noise, occasionally abbreviated author names (splitting
//!      author identities, which is why ACM lists *more* authors than
//!      DBLP in Table 1),
//!    * `GS` — duplicate entry clusters per publication, extraction-noised
//!      titles, always-abbreviated and sometimes truncated author lists,
//!      missing years, low-recall native links to ACM, and a large tail
//!      of noise entries matching nothing.
//! 3. **Gold standards**: because the world knows entity identity, the
//!    perfect same-mappings fall out by construction.
//!
//! Everything is deterministic in the configured seed.

pub mod config;
pub mod corrupt;
pub mod evolve;
pub mod gold;
pub mod names;
pub mod scenario;
pub mod world;

pub use config::WorldConfig;
pub use evolve::{DeltaStream, EvolveConfig};
pub use gold::GoldStandard;
pub use scenario::{Scenario, ScenarioIds};
pub use world::{Series, World};
