//! The "evolving world": seeded delta streams over existing scenarios.
//!
//! Web sources are not static snapshots — DBLP gains papers daily,
//! Google Scholar re-crawls and re-extracts, records get corrected. A
//! [`DeltaStream`] turns any generated [`Scenario`](crate::Scenario)
//! source into such an evolving source: each call to
//! [`DeltaStream::next_delta`] emits a [`SourceDelta`] batch of
//!
//! * **adds** — clone-and-corrupt copies of random live instances (new
//!   ids, typo'd text attributes), so new records look like the source's
//!   own corruption profile,
//! * **removes** — random live instances, and
//! * **updates** — a text attribute of a live instance gets extraction
//!   noise, occasionally cleared entirely.
//!
//! The stream is configurable in **churn rate** (fraction of live
//! instances touched per step), **update skew** (how strongly updates
//! concentrate on a hot subset — web sources re-crawl popular entries
//! far more often), and **burstiness** (steps that batch many times the
//! usual churn, modelling a re-crawl). A configurable fraction of junk
//! ops (duplicate removals, no-op updates) exercises delta-consumer
//! robustness. Everything is deterministic in the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moma_model::{AttrKind, AttrValue, DeltaOp, LdsId, SourceDelta, SourceRegistry};

use crate::corrupt::typo;

/// Configuration of a delta stream.
#[derive(Debug, Clone)]
pub struct EvolveConfig {
    /// RNG seed; the stream is deterministic in it.
    pub seed: u64,
    /// Fraction of *live* instances touched per step (at least one op is
    /// always emitted).
    pub churn: f64,
    /// Relative weight of add operations.
    pub add_weight: f64,
    /// Relative weight of remove operations.
    pub remove_weight: f64,
    /// Relative weight of update operations.
    pub update_weight: f64,
    /// Update skew `k ≥ 1`: update targets are drawn as `u^k` over the
    /// live population, concentrating repeat updates on a hot head.
    /// `1.0` = uniform.
    pub update_skew: f64,
    /// Probability a step is a burst.
    pub burst_prob: f64,
    /// Burst steps touch `burst_factor ×` the usual churn.
    pub burst_factor: f64,
    /// Probability of appending a junk op (duplicate removal or no-op
    /// update) after a regular op.
    pub junk_prob: f64,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            churn: 0.01,
            add_weight: 1.0,
            remove_weight: 1.0,
            update_weight: 2.0,
            update_skew: 2.0,
            burst_prob: 0.05,
            burst_factor: 8.0,
            junk_prob: 0.05,
        }
    }
}

impl EvolveConfig {
    /// Default stream at a given churn rate.
    pub fn with_churn(churn: f64) -> Self {
        Self {
            churn,
            ..Self::default()
        }
    }
}

/// A seeded, source-agnostic generator of [`SourceDelta`] batches.
#[derive(Debug, Clone)]
pub struct DeltaStream {
    cfg: EvolveConfig,
    lds: LdsId,
    rng: StdRng,
    /// Counter for fresh instance ids.
    next_id: u64,
    /// Ids removed so far (junk ops replay them as duplicate removals).
    graveyard: Vec<String>,
}

impl DeltaStream {
    /// New stream of deltas against `lds`.
    pub fn new(cfg: EvolveConfig, lds: LdsId) -> Self {
        let rng = StdRng::seed_from_u64(
            cfg.seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(lds.0 as u64),
        );
        Self {
            cfg,
            lds,
            rng,
            next_id: 0,
            graveyard: Vec::new(),
        }
    }

    /// Emit the next delta batch against the registry's *current* state.
    /// The delta is not applied here — hand it to
    /// [`SourceRegistry::apply_delta`].
    pub fn next_delta(&mut self, registry: &SourceRegistry) -> SourceDelta {
        let lds = registry.lds(self.lds);
        // Snapshot of live instances: (id, skew rank). Arena order is
        // deterministic, so the snapshot is too.
        let live: Vec<&str> = lds.iter().map(|(_, inst)| inst.id.as_str()).collect();
        let mut ops: Vec<DeltaOp> = Vec::new();
        let mut batch = ((live.len() as f64) * self.cfg.churn).round().max(1.0) as usize;
        if self.rng.gen_bool(self.cfg.burst_prob.clamp(0.0, 1.0)) {
            batch = ((batch as f64) * self.cfg.burst_factor).round().max(1.0) as usize;
        }
        // Removals within one batch must not collide; track locally.
        let mut removed_in_batch: Vec<usize> = Vec::new();
        let total_w = self.cfg.add_weight + self.cfg.remove_weight + self.cfg.update_weight;
        for _ in 0..batch {
            let roll: f64 = self.rng.gen::<f64>() * total_w.max(f64::MIN_POSITIVE);
            if roll < self.cfg.add_weight || live.is_empty() {
                ops.push(self.gen_add(registry, &live));
            } else if roll < self.cfg.add_weight + self.cfg.remove_weight {
                // Uniform removal among not-yet-removed snapshot entries.
                if removed_in_batch.len() >= live.len() {
                    ops.push(self.gen_add(registry, &live));
                    continue;
                }
                let pos = loop {
                    let p = self.rng.gen_range(0..live.len());
                    if !removed_in_batch.contains(&p) {
                        break p;
                    }
                };
                removed_in_batch.push(pos);
                self.graveyard.push(live[pos].to_owned());
                ops.push(DeltaOp::Remove {
                    id: live[pos].to_owned(),
                });
            } else {
                // Skewed update target: u^k concentrates on low ranks.
                let u: f64 = self.rng.gen();
                let pos = ((u.powf(self.cfg.update_skew.max(1.0)) * live.len() as f64) as usize)
                    .min(live.len() - 1);
                ops.push(self.gen_update(registry, live[pos]));
            }
            if self.rng.gen_bool(self.cfg.junk_prob.clamp(0.0, 1.0)) {
                ops.push(self.gen_junk(registry, &live));
            }
        }
        SourceDelta { lds: self.lds, ops }
    }

    /// Clone-and-corrupt a random live donor into a new instance.
    fn gen_add(&mut self, registry: &SourceRegistry, live: &[&str]) -> DeltaOp {
        let lds = registry.lds(self.lds);
        let id = format!("evo-{}-{}", self.lds.0, self.next_id);
        self.next_id += 1;
        let mut fields: Vec<(String, AttrValue)> = Vec::new();
        if !live.is_empty() {
            let donor = live[self.rng.gen_range(0..live.len())];
            let donor = lds.by_id(donor).expect("live id resolves");
            for (slot, def) in lds.schema.iter().enumerate() {
                let Some(value) = donor.value(slot) else {
                    continue;
                };
                let value = match (def.kind, value) {
                    (AttrKind::Text, AttrValue::Text(s)) => AttrValue::Text(typo(&mut self.rng, s)),
                    _ => value.clone(),
                };
                fields.push((def.name.clone(), value));
            }
        }
        DeltaOp::Add { id, fields }
    }

    /// Corrupt (or occasionally clear) one text attribute of `id`.
    fn gen_update(&mut self, registry: &SourceRegistry, id: &str) -> DeltaOp {
        let lds = registry.lds(self.lds);
        let text_attrs: Vec<&str> = lds
            .schema
            .iter()
            .filter(|d| d.kind == AttrKind::Text)
            .map(|d| d.name.as_str())
            .collect();
        let Some(attr) = text_attrs
            .get(self.rng.gen_range(0..text_attrs.len().max(1)))
            .copied()
        else {
            // No text attribute to corrupt: emit a no-op update of the
            // first attribute with its current value.
            return self.noop_update(registry, id);
        };
        let current = lds
            .by_id(id)
            .and_then(|inst| lds.attr_slot(attr).ok().and_then(|s| inst.value(s)))
            .and_then(|v| v.as_text().map(str::to_owned));
        let value = match current {
            Some(s) if !self.rng.gen_bool(0.05) => Some(AttrValue::Text(typo(&mut self.rng, &s))),
            Some(_) => None, // rare: the attribute disappears entirely
            None => Some(AttrValue::Text("recovered value".into())),
        };
        DeltaOp::Update {
            id: id.to_owned(),
            attr: attr.to_owned(),
            value,
        }
    }

    /// A deliberately redundant op: duplicate removal of a dead id, or a
    /// no-op update writing an attribute's current value back.
    fn gen_junk(&mut self, registry: &SourceRegistry, live: &[&str]) -> DeltaOp {
        if !self.graveyard.is_empty() && self.rng.gen_bool(0.5) {
            let id = self.graveyard[self.rng.gen_range(0..self.graveyard.len())].clone();
            return DeltaOp::Remove { id };
        }
        if live.is_empty() {
            return DeltaOp::Remove {
                id: "evo-ghost".into(),
            };
        }
        let id = live[self.rng.gen_range(0..live.len())];
        self.noop_update(registry, id)
    }

    /// Update writing the current value (or `None` if absent) back.
    fn noop_update(&mut self, registry: &SourceRegistry, id: &str) -> DeltaOp {
        let lds = registry.lds(self.lds);
        let attr = lds
            .schema
            .first()
            .map(|d| d.name.clone())
            .unwrap_or_else(|| "title".into());
        let value = lds
            .by_id(id)
            .and_then(|inst| lds.attr_slot(&attr).ok().and_then(|s| inst.value(s)))
            .cloned();
        DeltaOp::Update {
            id: id.to_owned(),
            attr,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use moma_model::DeltaOp;

    fn scenario() -> crate::Scenario {
        Scenario::small()
    }

    #[test]
    fn stream_is_deterministic() {
        let s = scenario();
        let mk = || {
            let mut ds = DeltaStream::new(EvolveConfig::with_churn(0.02), s.ids.pub_gs);
            let mut reg = s.registry.clone();
            let mut all = Vec::new();
            for _ in 0..5 {
                let d = ds.next_delta(&reg);
                reg.apply_delta(&d).unwrap();
                all.push(d);
            }
            all
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn churn_scales_batch_size() {
        let s = scenario();
        let live = s.registry.lds(s.ids.pub_gs).live_len() as f64;
        for churn in [0.01, 0.1] {
            let mut cfg = EvolveConfig::with_churn(churn);
            cfg.burst_prob = 0.0;
            cfg.junk_prob = 0.0;
            let mut ds = DeltaStream::new(cfg, s.ids.pub_gs);
            let d = ds.next_delta(&s.registry);
            let expect = (live * churn).round().max(1.0) as usize;
            assert_eq!(d.len(), expect, "churn={churn}");
        }
    }

    #[test]
    fn bursts_multiply_churn() {
        let s = scenario();
        let mut cfg = EvolveConfig::with_churn(0.01);
        cfg.burst_prob = 1.0;
        cfg.burst_factor = 8.0;
        cfg.junk_prob = 0.0;
        let mut ds = DeltaStream::new(cfg, s.ids.pub_gs);
        let d = ds.next_delta(&s.registry);
        let live = s.registry.lds(s.ids.pub_gs).live_len() as f64;
        let base = (live * 0.01).round().max(1.0);
        assert_eq!(d.len(), (base * 8.0).round() as usize);
    }

    #[test]
    fn deltas_apply_cleanly_over_many_steps() {
        let s = scenario();
        let mut reg = s.registry.clone();
        let mut cfg = EvolveConfig::with_churn(0.05);
        cfg.junk_prob = 0.3; // plenty of duplicate/no-op ops
        let mut ds = DeltaStream::new(cfg, s.ids.pub_gs);
        let mut adds = 0usize;
        let mut removes = 0usize;
        let mut updates = 0usize;
        for _ in 0..10 {
            let d = ds.next_delta(&reg);
            for op in &d.ops {
                match op {
                    DeltaOp::Add { .. } => adds += 1,
                    DeltaOp::Remove { .. } => removes += 1,
                    DeltaOp::Update { .. } => updates += 1,
                }
            }
            // Junk ops are tolerated: apply never errors.
            reg.apply_delta(&d).unwrap();
        }
        assert!(adds > 0 && removes > 0 && updates > 0);
        let lds = reg.lds(s.ids.pub_gs);
        assert!(lds.len() >= lds.live_len());
        // Arena grew by exactly the adds.
        assert_eq!(lds.len(), s.registry.lds(s.ids.pub_gs).len() + adds);
    }

    #[test]
    fn update_skew_concentrates_on_head() {
        let s = scenario();
        let mut cfg = EvolveConfig::with_churn(0.5);
        cfg.add_weight = 0.0;
        cfg.remove_weight = 0.0;
        cfg.update_skew = 4.0;
        cfg.junk_prob = 0.0;
        cfg.burst_prob = 0.0;
        let mut ds = DeltaStream::new(cfg, s.ids.pub_gs);
        let d = ds.next_delta(&s.registry);
        let lds = s.registry.lds(s.ids.pub_gs);
        let n = lds.live_len();
        let head: Vec<&str> = lds
            .iter()
            .take(n / 4)
            .map(|(_, inst)| inst.id.as_str())
            .collect();
        let in_head = d
            .ops
            .iter()
            .filter(|op| match op {
                DeltaOp::Update { id, .. } => head.contains(&id.as_str()),
                _ => false,
            })
            .count();
        // With skew 4, P(head quarter) = 0.25^(1/4)… actually u^4 < 0.25
        // ⇔ u < 0.707: the head quarter gets ~70% of updates.
        assert!(
            in_head * 2 > d.len(),
            "skew did not concentrate: {in_head}/{}",
            d.len()
        );
    }
}
