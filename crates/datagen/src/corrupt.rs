//! Corruption primitives simulating source-specific dirt.

use rand::rngs::StdRng;
use rand::Rng;

/// Apply one random character typo (substitute / delete / insert /
/// transpose) to `s`. Returns the original if it is too short.
pub fn typo(rng: &mut StdRng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 4 {
        return s.to_owned();
    }
    // Pick a position on a letter (avoid mangling separators).
    let letter_positions: Vec<usize> = (0..chars.len())
        .filter(|&i| chars[i].is_alphanumeric())
        .collect();
    if letter_positions.is_empty() {
        return s.to_owned();
    }
    let pos = letter_positions[rng.gen_range(0..letter_positions.len())];
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            // Substitute with a neighboring letter.
            let c = out[pos];
            let sub = if c.is_ascii_lowercase() {
                (((c as u8 - b'a' + 1 + rng.gen_range(0..25u8)) % 26) + b'a') as char
            } else if c.is_ascii_uppercase() {
                (((c as u8 - b'A' + 1 + rng.gen_range(0..25u8)) % 26) + b'A') as char
            } else {
                'x'
            };
            out[pos] = sub;
        }
        1 => {
            out.remove(pos);
        }
        2 => {
            let c = out[pos];
            out.insert(pos, c);
        }
        _ => {
            if pos + 1 < out.len() && out[pos + 1].is_alphanumeric() {
                out.swap(pos, pos + 1);
            } else if pos > 0 && out[pos - 1].is_alphanumeric() {
                out.swap(pos - 1, pos);
            }
        }
    }
    out.into_iter().collect()
}

/// Apply `n` independent typos.
pub fn typos(rng: &mut StdRng, s: &str, n: usize) -> String {
    let mut cur = s.to_owned();
    for _ in 0..n {
        cur = typo(rng, &cur);
    }
    cur
}

/// Truncate to roughly `keep_ratio` of the words (at least two words).
pub fn truncate_words(rng: &mut StdRng, s: &str, keep_ratio: f64) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.len() <= 2 {
        return s.to_owned();
    }
    let base = ((words.len() as f64) * keep_ratio).round() as usize;
    let jitter = rng.gen_range(0..2usize);
    let keep = base.saturating_sub(jitter).clamp(2, words.len());
    words[..keep].join(" ")
}

/// Abbreviate a full person name to initial form: `John Smith` →
/// `J. Smith`; middle names are kept as initials too.
pub fn abbreviate_name(name: &str) -> String {
    let parts: Vec<&str> = name.split_whitespace().collect();
    match parts.split_last() {
        Some((last, given)) if !given.is_empty() => {
            let initials: Vec<String> = given
                .iter()
                .filter_map(|g| g.chars().next().map(|c| format!("{c}.")))
                .collect();
            format!("{} {last}", initials.join(" "))
        }
        _ => name.to_owned(),
    }
}

/// Drop trailing items of a list with probability `p` each (front-to-back
/// survivors keep their order; the first item always stays).
pub fn drop_tail(rng: &mut StdRng, items: &[String], p: f64) -> Vec<String> {
    if items.is_empty() {
        return Vec::new();
    }
    let mut out = vec![items[0].clone()];
    for item in &items[1..] {
        if !rng.gen_bool(p) {
            out.push(item.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn typo_changes_string() {
        let mut r = rng();
        let s = "Generic Schema Matching with Cupid";
        let mut changed = 0;
        for _ in 0..20 {
            if typo(&mut r, s) != s {
                changed += 1;
            }
        }
        assert!(
            changed >= 15,
            "typos rarely changed anything ({changed}/20)"
        );
    }

    #[test]
    fn typo_short_strings_untouched() {
        let mut r = rng();
        assert_eq!(typo(&mut r, "ab"), "ab");
        assert_eq!(typo(&mut r, ""), "");
    }

    #[test]
    fn typos_compound() {
        let mut r = rng();
        let s = "A formal perspective on the view selection problem";
        let noisy = typos(&mut r, s, 3);
        assert_ne!(noisy, s);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let mut r = rng();
        let s = "one two three four five six seven eight";
        let t = truncate_words(&mut r, s, 0.5);
        assert!(s.starts_with(&t));
        assert!(t.split_whitespace().count() >= 2);
        assert!(t.split_whitespace().count() < 8);
    }

    #[test]
    fn truncate_short_untouched() {
        let mut r = rng();
        assert_eq!(truncate_words(&mut r, "two words", 0.5), "two words");
    }

    #[test]
    fn abbreviation() {
        assert_eq!(abbreviate_name("John Smith"), "J. Smith");
        assert_eq!(abbreviate_name("Amir M. Zarkesh"), "A. M. Zarkesh");
        assert_eq!(abbreviate_name("Plato"), "Plato");
        assert_eq!(abbreviate_name(""), "");
    }

    #[test]
    fn drop_tail_keeps_first() {
        let mut r = rng();
        let items: Vec<String> = (0..10).map(|i| format!("a{i}")).collect();
        for _ in 0..10 {
            let kept = drop_tail(&mut r, &items, 0.5);
            assert_eq!(kept[0], "a0");
            assert!(!kept.is_empty());
        }
        // p = 0 keeps everything.
        assert_eq!(drop_tail(&mut r, &items, 0.0).len(), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = rng();
        let mut r2 = rng();
        assert_eq!(typo(&mut r1, "hello world"), typo(&mut r2, "hello world"));
    }
}
