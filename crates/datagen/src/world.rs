//! The ground-truth world of persons, venues and publications.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moma_table::FxHashSet;

use crate::config::WorldConfig;
use crate::names::{
    FIRST_NAMES, LAST_NAMES, RECURRING_TITLES, TITLE_CONTEXTS, TITLE_OPENERS, TITLE_TECHNIQUES,
};

/// Publication series of the evaluation (paper Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Series {
    /// VLDB conference.
    Vldb,
    /// SIGMOD conference.
    Sigmod,
    /// ACM TODS journal.
    Tods,
    /// VLDB Journal.
    VldbJ,
    /// SIGMOD Record newsletter.
    Record,
}

impl Series {
    /// Whether this is a conference (vs. journal/newsletter).
    pub fn is_conference(self) -> bool {
        matches!(self, Series::Vldb | Series::Sigmod)
    }

    /// DBLP-style short key.
    pub fn key(self) -> &'static str {
        match self {
            Series::Vldb => "vldb",
            Series::Sigmod => "sigmod",
            Series::Tods => "tods",
            Series::VldbJ => "vldbj",
            Series::Record => "record",
        }
    }

    /// DBLP-style display name, e.g. `VLDB 2001` or `SIGMOD Record 35(2) 2002`.
    pub fn dblp_name(self, year: u16, issue: u8) -> String {
        match self {
            Series::Vldb => format!("VLDB {year}"),
            Series::Sigmod => format!("SIGMOD Conference {year}"),
            Series::Tods => format!("TODS {}({issue}) {year}", year - 1974),
            Series::VldbJ => format!("VLDB J. {}({issue}) {year}", year - 1991),
            Series::Record => format!("SIGMOD Record {}({issue}) {year}", year - 1971),
        }
    }

    /// ACM-DL-style long display name — deliberately dissimilar from the
    /// DBLP form ("VLDB2002" vs "28th International Conference on Very
    /// Large Data Bases", paper Section 5.4.1).
    pub fn acm_name(self, year: u16, issue: u8) -> String {
        match self {
            Series::Vldb => format!(
                "Proceedings of the {} International Conference on Very Large Data Bases",
                ordinal((year - 1975 + 1) as u32)
            ),
            Series::Sigmod => format!(
                "Proceedings of the {year} ACM SIGMOD International Conference on Management of Data"
            ),
            Series::Tods => format!(
                "ACM Transactions on Database Systems Volume {} Issue {issue}",
                year - 1974
            ),
            Series::VldbJ => {
                format!("The VLDB Journal Volume {} Issue {issue}", year - 1991)
            }
            Series::Record => {
                format!("ACM SIGMOD Record Volume {} Issue {issue}", year - 1971)
            }
        }
    }
}

fn ordinal(n: u32) -> String {
    let suffix = match (n % 10, n % 100) {
        (1, 11) | (2, 12) | (3, 13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    };
    format!("{n}{suffix}")
}

/// A real person.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Person {
    /// Given name.
    pub first: String,
    /// Family name.
    pub last: String,
}

impl Person {
    /// Canonical full name.
    pub fn full_name(&self) -> String {
        format!("{} {}", self.first, self.last)
    }
}

/// A real venue: a conference edition or a journal issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VenueEntity {
    /// Series.
    pub series: Series,
    /// Year.
    pub year: u16,
    /// Issue number (0 for conferences).
    pub issue: u8,
}

/// A real publication.
#[derive(Debug, Clone)]
pub struct Publication {
    /// Title.
    pub title: String,
    /// Venue index into [`World::venues`].
    pub venue: usize,
    /// Publication year.
    pub year: u16,
    /// Page range.
    pub pages: (u16, u16),
    /// Author person indexes, in credit order.
    pub authors: Vec<usize>,
    /// Ground-truth citation count.
    pub citations: u32,
    /// Whether the title is a recurring newsletter title.
    pub recurring: bool,
    /// If this journal paper is the extended version of a conference
    /// paper with the same title, the conference paper's index.
    pub twin_of: Option<usize>,
}

/// An injected DBLP duplicate: a person additionally credited under a
/// variant name on a subset of their publications (Table 9).
#[derive(Debug, Clone)]
pub struct DuplicateAuthor {
    /// The person.
    pub person: usize,
    /// The variant name string.
    pub variant: String,
    /// Publications credited to the variant instead of the primary name.
    pub variant_pubs: FxHashSet<usize>,
}

/// The generated ground-truth world.
#[derive(Debug, Clone)]
pub struct World {
    /// Persons (potential authors).
    pub persons: Vec<Person>,
    /// Venues.
    pub venues: Vec<VenueEntity>,
    /// Publications.
    pub pubs: Vec<Publication>,
    /// Injected DBLP duplicate-author variants.
    pub duplicates: Vec<DuplicateAuthor>,
    /// The configuration the world was generated from.
    pub config: WorldConfig,
}

impl World {
    /// Generate a world from a configuration (deterministic in
    /// `config.seed`).
    pub fn generate(config: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let persons = gen_persons(&mut rng, config.person_pool);
        let venues = gen_venues(&config);
        let mut pubs = gen_publications(&mut rng, &config, &venues, persons.len());
        add_journal_twins(&mut rng, &config, &venues, &mut pubs);
        let duplicates = inject_duplicates(&mut rng, &config, &persons, &pubs);
        World {
            persons,
            venues,
            pubs,
            duplicates,
            config,
        }
    }

    /// Publications of a venue (indexes).
    pub fn pubs_of_venue(&self, venue: usize) -> Vec<usize> {
        self.pubs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.venue == venue)
            .map(|(i, _)| i)
            .collect()
    }

    /// Distinct persons that authored at least one publication.
    pub fn credited_persons(&self) -> FxHashSet<usize> {
        self.pubs
            .iter()
            .flat_map(|p| p.authors.iter().copied())
            .collect()
    }
}

fn gen_persons(rng: &mut StdRng, pool: usize) -> Vec<Person> {
    let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
    let mut out = Vec::with_capacity(pool);
    while out.len() < pool {
        let f = rng.gen_range(0..FIRST_NAMES.len());
        let l = rng.gen_range(0..LAST_NAMES.len());
        if seen.insert((f, l)) {
            out.push(Person {
                first: FIRST_NAMES[f].to_owned(),
                last: LAST_NAMES[l].to_owned(),
            });
        }
    }
    out
}

fn gen_venues(config: &WorldConfig) -> Vec<VenueEntity> {
    let mut venues = Vec::new();
    for year in config.start_year..=config.end_year {
        venues.push(VenueEntity {
            series: Series::Vldb,
            year,
            issue: 0,
        });
        venues.push(VenueEntity {
            series: Series::Sigmod,
            year,
            issue: 0,
        });
        for issue in 1..=config.tods.0 as u8 {
            venues.push(VenueEntity {
                series: Series::Tods,
                year,
                issue,
            });
        }
        for issue in 1..=config.vldbj.0 as u8 {
            venues.push(VenueEntity {
                series: Series::VldbJ,
                year,
                issue,
            });
        }
        for issue in 1..=config.record.0 as u8 {
            venues.push(VenueEntity {
                series: Series::Record,
                year,
                issue,
            });
        }
    }
    venues
}

/// Synthetic system name, e.g. `Zorkel` (26³ ≈ 17k combinations).
pub(crate) fn gen_system_name(rng: &mut StdRng) -> String {
    use crate::names::SYSTEM_SYLLABLES;
    let n = 2 + rng.gen_range(0..2usize);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SYSTEM_SYLLABLES[rng.gen_range(0..SYSTEM_SYLLABLES.len())]);
    }
    let mut cs = s.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
        None => s,
    }
}

/// Generate a fresh publication title.
///
/// Titles must be *diverse*: real paper titles rarely collide above a
/// 0.8 trigram similarity unless they genuinely refer to the same work.
/// Diversity comes from large word pools, eight structural templates,
/// two independent technique slots, and high-entropy system names — the
/// only same-title pairs left are the deliberately injected
/// conference/journal twins and recurring newsletter titles.
fn gen_title(rng: &mut StdRng, seen: &mut FxHashSet<String>) -> String {
    loop {
        let opener = TITLE_OPENERS[rng.gen_range(0..TITLE_OPENERS.len())];
        let tech = TITLE_TECHNIQUES[rng.gen_range(0..TITLE_TECHNIQUES.len())];
        let tech2 = TITLE_TECHNIQUES[rng.gen_range(0..TITLE_TECHNIQUES.len())];
        let ctx = TITLE_CONTEXTS[rng.gen_range(0..TITLE_CONTEXTS.len())];
        let sys = gen_system_name(rng);
        let title = match rng.gen_range(0..8u8) {
            0 => format!("{opener} {tech} for {ctx}"),
            1 => format!("{sys}: {opener} {tech} in {ctx}"),
            2 => format!("{tech} for {ctx}: A {opener} Approach"),
            3 => format!("On {opener} {tech} over {ctx}"),
            4 => format!("{opener} {tech} and {tech2} in {ctx}"),
            5 => format!("{tech} Meets {tech2}: {opener} Techniques for {ctx}"),
            6 => format!("The {sys} System for {opener} {tech}"),
            _ => format!("{opener} {tech} in {ctx} with {sys}"),
        };
        if seen.insert(title.clone()) {
            return title;
        }
    }
}

/// Team size distribution: 1..=6 authors, mean ≈ 3 (paper Section 5.4.3:
/// "about 3 authors per paper on average, variations from 1 author to
/// 27"; we cap lower but keep the skew).
fn team_size(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..100u8) {
        0..=9 => 1,
        10..=34 => 2,
        35..=69 => 3,
        70..=89 => 4,
        90..=96 => 5,
        _ => 6,
    }
}

fn gen_publications(
    rng: &mut StdRng,
    config: &WorldConfig,
    venues: &[VenueEntity],
    person_count: usize,
) -> Vec<Publication> {
    let communities: Vec<std::ops::Range<usize>> = {
        let size = config.community_size;
        (0..person_count / size)
            .map(|c| c * size..((c + 1) * size).min(person_count))
            .collect()
    };
    // Stable lab teams per community, reused across papers (verbatim
    // identical author lists drive Table 2's low author-match precision).
    let mut teams_of: Vec<Vec<Vec<usize>>> = vec![Vec::new(); communities.len()];
    let mut titles: FxHashSet<String> = FxHashSet::default();
    let mut pubs = Vec::new();
    for (vi, venue) in venues.iter().enumerate() {
        let (lo, hi) = match venue.series {
            Series::Vldb => config.vldb_papers,
            Series::Sigmod => config.sigmod_papers,
            Series::Tods => config.tods.1,
            Series::VldbJ => config.vldbj.1,
            Series::Record => config.record.1,
        };
        let count = rng.gen_range(lo..=hi);
        let mut page = 1u16;
        for _ in 0..count {
            let recurring =
                venue.series == Series::Record && rng.gen_bool(config.recurring_title_prob);
            let title = if recurring {
                RECURRING_TITLES[rng.gen_range(0..RECURRING_TITLES.len())].to_owned()
            } else {
                gen_title(rng, &mut titles)
            };
            // Pick an author team from one community, frequently reusing
            // an established team verbatim.
            let com_idx = rng.gen_range(0..communities.len());
            let com = &communities[com_idx];
            let team: Vec<usize> =
                if !teams_of[com_idx].is_empty() && rng.gen_bool(config.team_reuse_prob) {
                    let t = &teams_of[com_idx];
                    t[rng.gen_range(0..t.len())].clone()
                } else {
                    let size = team_size(rng).min(com.len());
                    let mut team: Vec<usize> = Vec::with_capacity(size);
                    while team.len() < size {
                        let p = rng.gen_range(com.clone());
                        if !team.contains(&p) {
                            team.push(p);
                        }
                    }
                    teams_of[com_idx].push(team.clone());
                    team
                };
            let length: u16 = if recurring {
                rng.gen_range(1..4)
            } else {
                rng.gen_range(8..28)
            };
            // Skewed citation counts (most papers few, some many).
            let r: f64 = rng.gen();
            let citations = (r * r * r * 300.0) as u32;
            pubs.push(Publication {
                title,
                venue: vi,
                year: venue.year,
                pages: (page, page + length),
                authors: team,
                citations,
                recurring,
                twin_of: None,
            });
            page += length + 1;
        }
    }
    pubs
}

/// Replace some journal papers with extended versions of earlier
/// conference papers: same title, same authors, later year (Fig. 7).
fn add_journal_twins(
    rng: &mut StdRng,
    config: &WorldConfig,
    venues: &[VenueEntity],
    pubs: &mut [Publication],
) {
    let conf_pubs: Vec<usize> = pubs
        .iter()
        .enumerate()
        .filter(|(_, p)| venues[p.venue].series.is_conference())
        .map(|(i, _)| i)
        .collect();
    if conf_pubs.is_empty() {
        return;
    }
    for i in 0..pubs.len() {
        let series = venues[pubs[i].venue].series;
        let is_journal = matches!(series, Series::Tods | Series::VldbJ);
        if !is_journal || !rng.gen_bool(config.journal_version_prob) {
            continue;
        }
        // Find a conference paper from an earlier-or-equal year.
        for _ in 0..8 {
            let cand = conf_pubs[rng.gen_range(0..conf_pubs.len())];
            if pubs[cand].year <= pubs[i].year && pubs[cand].twin_of.is_none() && cand != i {
                pubs[i].title = pubs[cand].title.clone();
                pubs[i].authors = pubs[cand].authors.clone();
                pubs[i].twin_of = Some(cand);
                break;
            }
        }
    }
}

/// Pick persons with several publications and give them a second name
/// variant used on part of their papers.
fn inject_duplicates(
    rng: &mut StdRng,
    config: &WorldConfig,
    persons: &[Person],
    pubs: &[Publication],
) -> Vec<DuplicateAuthor> {
    // Publications per person.
    let mut pubs_of: Vec<Vec<usize>> = vec![Vec::new(); persons.len()];
    for (i, p) in pubs.iter().enumerate() {
        for &a in &p.authors {
            pubs_of[a].push(i);
        }
    }
    let candidates: Vec<usize> = (0..persons.len())
        .filter(|&p| pubs_of[p].len() >= 3)
        .collect();
    let mut out = Vec::new();
    let mut used: FxHashSet<usize> = FxHashSet::default();
    let mut attempts = 0;
    while out.len() < config.dblp_duplicate_authors && attempts < 1000 && !candidates.is_empty() {
        attempts += 1;
        let person = candidates[rng.gen_range(0..candidates.len())];
        if !used.insert(person) {
            continue;
        }
        let p = &persons[person];
        let variant = match rng.gen_range(0..3u8) {
            // Nickname: suffix of the first name ("Agathoniki" -> "Niki").
            0 if p.first.len() > 5 => {
                let cut = p.first.len() - 4;
                let nick: String = p.first.chars().skip(cut).collect();
                let nick = uppercase_first(&nick);
                format!("{nick} {}", p.last)
            }
            // Middle initial ("Amir Zarkesh" -> "Amir M. Zarkesh").
            1 => {
                let mid = (b'A' + rng.gen_range(0..26u8)) as char;
                format!("{} {mid}. {}", p.first, p.last)
            }
            // Surname last-letter change ("Barczyk" -> "Barczyc").
            _ => {
                let mut last: Vec<char> = p.last.chars().collect();
                let final_pos = last.len() - 1;
                let replacement = if last[final_pos] == 'c' { 'k' } else { 'c' };
                last[final_pos] = replacement;
                format!("{} {}", p.first, last.iter().collect::<String>())
            }
        };
        // Split publications: at least one on each identity.
        let my_pubs = &pubs_of[person];
        let variant_count = rng.gen_range(1..my_pubs.len());
        let mut variant_pubs: FxHashSet<usize> = FxHashSet::default();
        while variant_pubs.len() < variant_count {
            variant_pubs.insert(my_pubs[rng.gen_range(0..my_pubs.len())]);
        }
        out.push(DuplicateAuthor {
            person,
            variant,
            variant_pubs,
        });
    }
    out
}

fn uppercase_first(s: &str) -> String {
    let mut cs = s.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::small())
    }

    #[test]
    fn deterministic_in_seed() {
        let a = World::generate(WorldConfig::small());
        let b = World::generate(WorldConfig::small());
        assert_eq!(a.pubs.len(), b.pubs.len());
        assert_eq!(a.pubs[0].title, b.pubs[0].title);
        assert_eq!(a.persons[10], b.persons[10]);
        let mut cfg = WorldConfig::small();
        cfg.seed = 43;
        let c = World::generate(cfg);
        assert_ne!(
            a.pubs.iter().map(|p| &p.title).collect::<Vec<_>>(),
            c.pubs.iter().map(|p| &p.title).collect::<Vec<_>>()
        );
    }

    #[test]
    fn venue_structure() {
        let w = world();
        let years = (w.config.end_year - w.config.start_year + 1) as usize;
        let per_year = 2 + w.config.tods.0 + w.config.vldbj.0 + w.config.record.0;
        assert_eq!(w.venues.len(), years * per_year);
        assert!(w
            .venues
            .iter()
            .any(|v| v.series == Series::Vldb && v.year == 2001));
    }

    #[test]
    fn conference_neighborhoods_larger_than_journals() {
        let w = world();
        let conf_sizes: Vec<usize> = w
            .venues
            .iter()
            .enumerate()
            .filter(|(_, v)| v.series.is_conference())
            .map(|(i, _)| w.pubs_of_venue(i).len())
            .collect();
        let journal_sizes: Vec<usize> = w
            .venues
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.series.is_conference())
            .map(|(i, _)| w.pubs_of_venue(i).len())
            .collect();
        let conf_avg = conf_sizes.iter().sum::<usize>() as f64 / conf_sizes.len() as f64;
        let journal_avg = journal_sizes.iter().sum::<usize>() as f64 / journal_sizes.len() as f64;
        assert!(
            conf_avg > 2.0 * journal_avg,
            "conf {conf_avg} vs journal {journal_avg}"
        );
    }

    #[test]
    fn twins_share_title_and_authors() {
        let w = world();
        let twins: Vec<&Publication> = w.pubs.iter().filter(|p| p.twin_of.is_some()).collect();
        assert!(!twins.is_empty(), "expected some conf/journal twins");
        for t in twins {
            let orig = &w.pubs[t.twin_of.unwrap()];
            assert_eq!(t.title, orig.title);
            assert_eq!(t.authors, orig.authors);
            assert!(w.venues[orig.venue].series.is_conference());
            assert!(orig.year <= t.year);
        }
    }

    #[test]
    fn recurring_titles_repeat() {
        let w = world();
        let recurring: Vec<&Publication> = w.pubs.iter().filter(|p| p.recurring).collect();
        assert!(!recurring.is_empty());
        // At least one recurring title appears in more than one venue.
        let mut by_title: std::collections::HashMap<&str, FxHashSet<usize>> = Default::default();
        for p in &recurring {
            by_title
                .entry(p.title.as_str())
                .or_default()
                .insert(p.venue);
        }
        assert!(by_title.values().any(|venues| venues.len() > 1));
    }

    #[test]
    fn duplicates_have_pub_splits() {
        let w = world();
        assert_eq!(w.duplicates.len(), w.config.dblp_duplicate_authors);
        for d in &w.duplicates {
            assert!(!d.variant_pubs.is_empty());
            assert_ne!(d.variant, w.persons[d.person].full_name());
            // The person keeps at least one publication under the primary
            // name.
            let total: usize = w
                .pubs
                .iter()
                .enumerate()
                .filter(|(i, p)| p.authors.contains(&d.person) && !d.variant_pubs.contains(i))
                .count();
            assert!(total >= 1, "variant absorbed every publication");
        }
    }

    #[test]
    fn author_teams_within_bounds() {
        let w = world();
        for p in &w.pubs {
            assert!(!p.authors.is_empty() && p.authors.len() <= 6);
            let distinct: FxHashSet<usize> = p.authors.iter().copied().collect();
            assert_eq!(distinct.len(), p.authors.len());
        }
    }

    #[test]
    fn venue_names_differ_between_sources() {
        let v = VenueEntity {
            series: Series::Vldb,
            year: 2002,
            issue: 0,
        };
        let dblp = v.series.dblp_name(v.year, v.issue);
        let acm = v.series.acm_name(v.year, v.issue);
        assert_eq!(dblp, "VLDB 2002");
        assert_eq!(
            acm,
            "Proceedings of the 28th International Conference on Very Large Data Bases"
        );
        // The Section 5.4.1 point: string matching cannot align these.
        let sim = moma_simstring_trigram_stub(&dblp, &acm);
        assert!(sim < 0.3, "venue names too similar: {sim}");
    }

    // Tiny local trigram to avoid a dev-dependency cycle.
    fn moma_simstring_trigram_stub(a: &str, b: &str) -> f64 {
        let grams = |s: &str| -> FxHashSet<String> {
            let padded = format!("##{}##", s.to_lowercase());
            let cs: Vec<char> = padded.chars().collect();
            cs.windows(3).map(|w| w.iter().collect()).collect()
        };
        let (ga, gb) = (grams(a), grams(b));
        let inter = ga.intersection(&gb).count();
        2.0 * inter as f64 / (ga.len() + gb.len()) as f64
    }

    #[test]
    fn ordinal_formatting() {
        assert_eq!(ordinal(1), "1st");
        assert_eq!(ordinal(2), "2nd");
        assert_eq!(ordinal(3), "3rd");
        assert_eq!(ordinal(4), "4th");
        assert_eq!(ordinal(11), "11th");
        assert_eq!(ordinal(12), "12th");
        assert_eq!(ordinal(13), "13th");
        assert_eq!(ordinal(21), "21st");
        assert_eq!(ordinal(28), "28th");
    }

    #[test]
    fn paper_scale_counts_near_table1() {
        let w = World::generate(WorldConfig::paper_scale());
        assert_eq!(w.venues.len(), 130, "DBLP venue count (Table 1: 130)");
        let pubs = w.pubs.len();
        assert!(
            (2300..=2950).contains(&pubs),
            "publication count {pubs} too far from Table 1's 2616"
        );
        let credited = w.credited_persons().len();
        assert!(
            (2800..=3600).contains(&credited),
            "credited persons {credited} too far from Table 1's ~3.3k"
        );
    }
}
