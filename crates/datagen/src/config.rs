//! Generation configuration.

/// Configuration of the synthetic world and the source corruption
/// profiles. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// First publication year (paper: 1994).
    pub start_year: u16,
    /// Last publication year (paper: 2003).
    pub end_year: u16,
    /// Size of the person pool from which authors are drawn.
    pub person_pool: usize,
    /// Research-community size (papers draw their author team from one
    /// community; small communities ⇒ recurring author teams, which is
    /// what drives the low precision of author-list matching in Table 2).
    pub community_size: usize,
    /// Probability a paper reuses a previously-formed author team of its
    /// community verbatim. Stable lab teams publish many papers with the
    /// identical author list — the direct cause of the author matcher's
    /// 38% precision in Table 2.
    pub team_reuse_prob: f64,
    /// VLDB papers per year (min, max).
    pub vldb_papers: (usize, usize),
    /// SIGMOD papers per year (min, max).
    pub sigmod_papers: (usize, usize),
    /// TODS issues per year and papers per issue (min, max).
    pub tods: (usize, (usize, usize)),
    /// VLDB Journal issues per year and papers per issue (min, max).
    pub vldbj: (usize, (usize, usize)),
    /// SIGMOD Record issues per year and papers per issue (min, max).
    pub record: (usize, (usize, usize)),
    /// Probability that a journal paper is an extended version of a
    /// conference paper *with the same title* (the Fig. 7 conf/journal
    /// ambiguity that costs the title matcher precision).
    pub journal_version_prob: f64,
    /// Probability that a SIGMOD Record item is a recurring-title
    /// newsletter piece (editorials, interview columns, …) — Table 5's
    /// journal-precision killer.
    pub recurring_title_prob: f64,
    /// Number of injected duplicate-author variant pairs in DBLP
    /// (Table 9).
    pub dblp_duplicate_authors: usize,

    // --- ACM profile ---
    /// Probability an ACM title carries a light typo.
    pub acm_typo_prob: f64,
    /// Probability a typo'd ACM title is heavily corrupted (3–4 edits),
    /// dropping it below the 0.8 trigram threshold (Table 2's imperfect
    /// title recall).
    pub acm_heavy_typo_prob: f64,
    /// Probability the ACM record carries an off-by-one publication year
    /// (print vs. proceedings date) — the cause of Table 2's merge recall
    /// dipping below the title matcher's.
    pub acm_year_offset_prob: f64,
    /// Probability a non-VLDB-2002/03 publication is missing from ACM.
    pub acm_missing_prob: f64,
    /// Probability an ACM author name is abbreviated to an initial
    /// (splitting author identities).
    pub acm_abbrev_prob: f64,

    // --- GS profile ---
    /// Probability a world publication appears in GS at all.
    pub gs_coverage: f64,
    /// Maximum duplicate entries per publication (actual count 1..=max,
    /// skewed toward 1).
    pub gs_max_dups: usize,
    /// Probability a GS title carries extraction noise (typos).
    pub gs_typo_prob: f64,
    /// Probability a GS title is truncated.
    pub gs_truncate_prob: f64,
    /// Probability the venue string is glued onto a GS title.
    pub gs_venue_glue_prob: f64,
    /// Probability the GS year is missing.
    pub gs_missing_year_prob: f64,
    /// Probability each trailing author is dropped from a GS author list.
    pub gs_author_drop_prob: f64,
    /// Probability a GS entry of an ACM-covered publication carries a
    /// native link to ACM (the paper measured 21.6% recall for these
    /// links).
    pub gs_acm_link_prob: f64,
    /// Probability a native GS→ACM link points at the *wrong* ACM record.
    pub gs_acm_link_wrong_prob: f64,
    /// Probability GS fails to cluster a duplicate entry with its peers.
    pub gs_cluster_miss_prob: f64,
    /// Number of noise entries (crawled papers from other fields that
    /// match nothing); the paper's GS dataset holds 64k entries total.
    pub gs_noise_entries: usize,
}

impl WorldConfig {
    /// Paper-scale configuration: counts near Table 1.
    pub fn paper_scale() -> Self {
        Self {
            seed: 7,
            start_year: 1994,
            end_year: 2003,
            person_pool: 5000,
            community_size: 9,
            team_reuse_prob: 0.5,
            vldb_papers: (80, 110),
            sigmod_papers: (58, 85),
            tods: (4, (3, 7)),
            vldbj: (3, (3, 8)),
            record: (4, (4, 20)),
            journal_version_prob: 0.18,
            recurring_title_prob: 0.10,
            dblp_duplicate_authors: 12,
            acm_typo_prob: 0.10,
            acm_heavy_typo_prob: 0.35,
            acm_year_offset_prob: 0.05,
            acm_missing_prob: 0.04,
            acm_abbrev_prob: 0.15,
            gs_coverage: 0.97,
            gs_max_dups: 6,
            gs_typo_prob: 0.3,
            gs_truncate_prob: 0.12,
            gs_venue_glue_prob: 0.08,
            gs_missing_year_prob: 0.30,
            gs_author_drop_prob: 0.15,
            gs_acm_link_prob: 0.24,
            gs_acm_link_wrong_prob: 0.04,
            gs_cluster_miss_prob: 0.08,
            gs_noise_entries: 20_000,
        }
    }

    /// Small configuration for unit/integration tests: same structure,
    /// two orders of magnitude fewer instances.
    pub fn small() -> Self {
        Self {
            seed: 42,
            start_year: 2000,
            end_year: 2003,
            person_pool: 260,
            community_size: 8,
            team_reuse_prob: 0.5,
            vldb_papers: (10, 14),
            sigmod_papers: (8, 12),
            tods: (2, (2, 4)),
            vldbj: (2, (2, 4)),
            record: (2, (3, 8)),
            journal_version_prob: 0.2,
            recurring_title_prob: 0.30,
            dblp_duplicate_authors: 4,
            acm_typo_prob: 0.10,
            acm_heavy_typo_prob: 0.35,
            acm_year_offset_prob: 0.05,
            acm_missing_prob: 0.04,
            acm_abbrev_prob: 0.15,
            gs_coverage: 0.97,
            gs_max_dups: 4,
            gs_typo_prob: 0.3,
            gs_truncate_prob: 0.12,
            gs_venue_glue_prob: 0.08,
            gs_missing_year_prob: 0.3,
            gs_author_drop_prob: 0.15,
            gs_acm_link_prob: 0.24,
            gs_acm_link_wrong_prob: 0.04,
            gs_cluster_miss_prob: 0.08,
            gs_noise_entries: 300,
        }
    }

    /// Number of years covered.
    pub fn years(&self) -> impl Iterator<Item = u16> + '_ {
        self.start_year..=self.end_year
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for cfg in [WorldConfig::paper_scale(), WorldConfig::small()] {
            assert!(cfg.start_year < cfg.end_year);
            assert!(cfg.person_pool > cfg.community_size);
            assert!(cfg.vldb_papers.0 <= cfg.vldb_papers.1);
            for p in [
                cfg.journal_version_prob,
                cfg.acm_typo_prob,
                cfg.gs_coverage,
                cfg.gs_acm_link_prob,
            ] {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn paper_scale_year_range_matches_paper() {
        let cfg = WorldConfig::paper_scale();
        assert_eq!(cfg.years().count(), 10);
        assert_eq!(cfg.start_year, 1994);
        assert_eq!(cfg.end_year, 2003);
    }

    #[test]
    fn paper_scale_venue_count_is_130() {
        // 10 VLDB + 10 SIGMOD + 10*(4 TODS + 3 VLDBJ + 4 Record) = 130,
        // matching Table 1 for DBLP.
        let cfg = WorldConfig::paper_scale();
        let venues = cfg.years().count() * (2 + cfg.tods.0 + cfg.vldbj.0 + cfg.record.0);
        assert_eq!(venues, 130);
    }
}
