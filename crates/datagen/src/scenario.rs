//! Derivation of the three source views (DBLP / ACM / GS), their
//! association mappings, and the gold-standard same-mappings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moma_core::{Mapping, MappingRepository};
use moma_model::{
    AttrDef, AttrValue, LdsId, LogicalSource, ObjectType, PhysicalSource, SourceRegistry,
};
use moma_table::{FxHashMap, FxHashSet, MappingTable};

use crate::config::WorldConfig;
use crate::corrupt::{abbreviate_name, drop_tail, truncate_words, typo, typos};
use crate::gold::GoldStandard;
use crate::names::{TITLE_CONTEXTS, TITLE_OPENERS, TITLE_TECHNIQUES};
use crate::world::{Series, World};

/// Handles for the eight logical sources of the scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioIds {
    /// `Publication@DBLP`
    pub pub_dblp: LdsId,
    /// `Author@DBLP`
    pub author_dblp: LdsId,
    /// `Venue@DBLP`
    pub venue_dblp: LdsId,
    /// `Publication@ACM`
    pub pub_acm: LdsId,
    /// `Author@ACM`
    pub author_acm: LdsId,
    /// `Venue@ACM`
    pub venue_acm: LdsId,
    /// `Publication@GS`
    pub pub_gs: LdsId,
    /// `Author@GS`
    pub author_gs: LdsId,
}

/// All gold standards of the evaluation setting.
#[derive(Debug, Clone, Default)]
pub struct Gold {
    /// Publications DBLP ↔ ACM.
    pub pub_dblp_acm: GoldStandard,
    /// Publications DBLP ↔ GS (every duplicate GS entry must match —
    /// the paper's "restrictive" evaluation, Section 5.6).
    pub pub_dblp_gs: GoldStandard,
    /// Publications GS ↔ ACM.
    pub pub_gs_acm: GoldStandard,
    /// Venues DBLP ↔ ACM.
    pub venue_dblp_acm: GoldStandard,
    /// Authors DBLP ↔ ACM.
    pub author_dblp_acm: GoldStandard,
    /// Authors DBLP ↔ GS.
    pub author_dblp_gs: GoldStandard,
    /// Authors GS ↔ ACM.
    pub author_gs_acm: GoldStandard,
    /// Duplicate author identities within DBLP (both directions).
    pub author_dup_dblp: GoldStandard,
}

/// The full evaluation scenario.
pub struct Scenario {
    /// The ground-truth world.
    pub world: World,
    /// Registry holding all eight logical sources.
    pub registry: SourceRegistry,
    /// Repository holding association mappings, native GS→ACM links,
    /// the GS cluster self-mapping and the DBLP author identity mapping.
    pub repository: MappingRepository,
    /// Source handles.
    pub ids: ScenarioIds,
    /// Gold standards.
    pub gold: Gold,
    /// Per DBLP publication row: is it a conference paper?
    pub dblp_pub_is_conf: Vec<bool>,
    /// Per DBLP venue row: is it a conference?
    pub dblp_venue_is_conf: Vec<bool>,
    /// Per GS entry row: the world publication it represents (None for
    /// noise entries).
    pub gs_entry_pub: Vec<Option<usize>>,
}

impl Scenario {
    /// Generate a scenario from a configuration.
    pub fn generate(config: WorldConfig) -> Scenario {
        let world = World::generate(config);
        Self::from_world(world)
    }

    /// The standard paper-scale scenario.
    pub fn paper_scale() -> Scenario {
        Self::generate(WorldConfig::paper_scale())
    }

    /// A small scenario for tests.
    pub fn small() -> Scenario {
        Self::generate(WorldConfig::small())
    }

    /// Build the scenario views from an existing world.
    pub fn from_world(world: World) -> Scenario {
        Builder::new(world).build()
    }
}

/// DBLP author identity: a person, optionally under a duplicate variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Identity {
    person: usize,
    /// Index into `world.duplicates` when this is a variant identity.
    variant: Option<usize>,
}

struct Builder {
    world: World,
    rng: StdRng,
    registry: SourceRegistry,
    repository: MappingRepository,
}

impl Builder {
    fn new(world: World) -> Self {
        // Derive the corruption RNG from the world seed (offset so it does
        // not replay the world generator's stream).
        let rng = StdRng::seed_from_u64(world.config.seed.wrapping_add(0x5EED));
        Self {
            world,
            rng,
            registry: SourceRegistry::new(),
            repository: MappingRepository::new(),
        }
    }

    fn build(mut self) -> Scenario {
        self.registry
            .smm
            .add_physical(PhysicalSource::downloadable("DBLP"));
        self.registry
            .smm
            .add_physical(PhysicalSource::query_only("ACM"));
        self.registry
            .smm
            .add_physical(PhysicalSource::query_only("GS"));

        let pub_schema = vec![
            AttrDef::text("title"),
            AttrDef::text_list("authors"),
            AttrDef::year("year"),
            AttrDef::text("pages"),
            AttrDef::int("citations"),
        ];
        let mut pub_dblp =
            LogicalSource::new("DBLP", ObjectType::new("Publication"), pub_schema.clone());
        let mut author_dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Author"),
            vec![AttrDef::text("name")],
        );
        let mut venue_dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Venue"),
            vec![AttrDef::text("name")],
        );
        let mut pub_acm =
            LogicalSource::new("ACM", ObjectType::new("Publication"), pub_schema.clone());
        let mut author_acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Author"),
            vec![AttrDef::text("name")],
        );
        let mut venue_acm =
            LogicalSource::new("ACM", ObjectType::new("Venue"), vec![AttrDef::text("name")]);
        let mut pub_gs =
            LogicalSource::new("GS", ObjectType::new("Publication"), pub_schema.clone());
        let mut author_gs =
            LogicalSource::new("GS", ObjectType::new("Author"), vec![AttrDef::text("name")]);

        // ---------- DBLP ----------
        // Identity of (publication, author position).
        let identity_of = |world: &World, pub_idx: usize, person: usize| -> Identity {
            for (di, d) in world.duplicates.iter().enumerate() {
                if d.person == person && d.variant_pubs.contains(&pub_idx) {
                    return Identity {
                        person,
                        variant: Some(di),
                    };
                }
            }
            Identity {
                person,
                variant: None,
            }
        };

        let mut identity_rows: FxHashMap<Identity, u32> = FxHashMap::default();
        let identity_name = |world: &World, id: Identity| -> String {
            match id.variant {
                Some(di) => world.duplicates[di].variant.clone(),
                None => world.persons[id.person].full_name(),
            }
        };

        let mut dblp_pub_authors: Vec<Vec<u32>> = Vec::with_capacity(self.world.pubs.len());
        let mut dblp_pub_is_conf = Vec::with_capacity(self.world.pubs.len());
        let mut pub_counter_per_series: FxHashMap<&'static str, usize> = FxHashMap::default();

        for (pi, p) in self.world.pubs.iter().enumerate() {
            let venue = &self.world.venues[p.venue];
            let series = venue.series;
            let counter = pub_counter_per_series.entry(series.key()).or_insert(0);
            *counter += 1;
            let kind = if series.is_conference() {
                "conf"
            } else {
                "journals"
            };
            let id = format!("{kind}/{}/{}{:04}", series.key(), series.key(), *counter);
            let mut author_rows: Vec<u32> = Vec::with_capacity(p.authors.len());
            let mut author_names: Vec<String> = Vec::with_capacity(p.authors.len());
            for &person in &p.authors {
                let ident = identity_of(&self.world, pi, person);
                let name = identity_name(&self.world, ident);
                let row = match identity_rows.get(&ident) {
                    Some(&r) => r,
                    None => {
                        let r = author_dblp
                            .insert_record(
                                format!("dblp-author-{}", identity_rows.len()),
                                vec![("name", name.clone().into())],
                            )
                            .expect("unique dblp author id");
                        identity_rows.insert(ident, r);
                        r
                    }
                };
                author_rows.push(row);
                author_names.push(name);
            }
            pub_dblp
                .insert_record(
                    id,
                    vec![
                        ("title", p.title.clone().into()),
                        ("authors", author_names.into()),
                        ("year", p.year.into()),
                        ("pages", format!("{}-{}", p.pages.0, p.pages.1).into()),
                        ("citations", (p.citations as i64).into()),
                    ],
                )
                .expect("unique dblp pub id");
            dblp_pub_authors.push(author_rows);
            dblp_pub_is_conf.push(series.is_conference());
        }

        let mut dblp_venue_is_conf = Vec::with_capacity(self.world.venues.len());
        for v in &self.world.venues {
            venue_dblp
                .insert_record(
                    format!("dblp-venue-{}-{}-{}", v.series.key(), v.year, v.issue),
                    vec![("name", v.series.dblp_name(v.year, v.issue).into())],
                )
                .expect("unique dblp venue id");
            dblp_venue_is_conf.push(v.series.is_conference());
        }

        // ---------- ACM ----------
        let cfg = self.world.config.clone();
        let dropped_venue = |v: &crate::world::VenueEntity| {
            v.series == Series::Vldb && (v.year == 2002 || v.year == 2003)
        };
        // World venue -> ACM venue row.
        let mut acm_venue_row: Vec<Option<u32>> = Vec::with_capacity(self.world.venues.len());
        for v in &self.world.venues {
            if dropped_venue(v) {
                acm_venue_row.push(None);
                continue;
            }
            let row = venue_acm
                .insert_record(
                    format!("V-{}", 640_000 + acm_venue_row.len()),
                    vec![("name", v.series.acm_name(v.year, v.issue).into())],
                )
                .expect("unique acm venue id");
            acm_venue_row.push(Some(row));
        }

        // World pub -> ACM pub row; ACM author entities are name strings.
        let mut acm_pub_row: Vec<Option<u32>> = vec![None; self.world.pubs.len()];
        let mut acm_author_rows: FxHashMap<String, u32> = FxHashMap::default();
        let mut acm_pub_authors: Vec<Vec<u32>> = Vec::new();
        // (acm author row -> persons that produced the string)
        let mut acm_author_persons: FxHashMap<u32, FxHashSet<usize>> = FxHashMap::default();
        let mut acm_pub_world: Vec<usize> = Vec::new();
        for (pi, p) in self.world.pubs.iter().enumerate() {
            let venue = &self.world.venues[p.venue];
            if dropped_venue(venue) || self.rng.gen_bool(cfg.acm_missing_prob) {
                continue;
            }
            let title = if self.rng.gen_bool(cfg.acm_typo_prob) {
                if self.rng.gen_bool(cfg.acm_heavy_typo_prob) {
                    let n = 5 + self.rng.gen_range(0..3usize);
                    typos(&mut self.rng, &p.title, n)
                } else {
                    typo(&mut self.rng, &p.title)
                }
            } else {
                p.title.clone()
            };
            let mut author_names: Vec<String> = Vec::with_capacity(p.authors.len());
            let mut author_rows: Vec<u32> = Vec::with_capacity(p.authors.len());
            for &person in &p.authors {
                let full = self.world.persons[person].full_name();
                let name = if self.rng.gen_bool(cfg.acm_abbrev_prob) {
                    abbreviate_name(&full)
                } else {
                    full
                };
                let row = match acm_author_rows.get(&name) {
                    Some(&r) => r,
                    None => {
                        let r = author_acm
                            .insert_record(
                                format!("acm-author-{}", acm_author_rows.len()),
                                vec![("name", name.clone().into())],
                            )
                            .expect("unique acm author id");
                        acm_author_rows.insert(name.clone(), r);
                        r
                    }
                };
                acm_author_persons.entry(row).or_default().insert(person);
                author_rows.push(row);
                author_names.push(name);
            }
            let year = if self.rng.gen_bool(cfg.acm_year_offset_prob) {
                p.year + 1
            } else {
                p.year
            };
            let citations = (p.citations as i64 + self.rng.gen_range(-3i64..=3)).max(0);
            let row = pub_acm
                .insert_record(
                    format!("P-{}", 600_000 + acm_pub_world.len()),
                    vec![
                        ("title", title.into()),
                        ("authors", author_names.into()),
                        ("year", year.into()),
                        ("pages", format!("{}-{}", p.pages.0, p.pages.1).into()),
                        ("citations", citations.into()),
                    ],
                )
                .expect("unique acm pub id");
            acm_pub_row[pi] = Some(row);
            acm_pub_authors.push(author_rows);
            acm_pub_world.push(pi);
        }

        // ---------- GS ----------
        let mut gs_entry_pub: Vec<Option<usize>> = Vec::new();
        let mut gs_author_rows: FxHashMap<String, u32> = FxHashMap::default();
        let mut gs_author_persons: FxHashMap<u32, FxHashSet<usize>> = FxHashMap::default();
        let mut gs_pub_authors: Vec<Vec<u32>> = Vec::new();
        let mut gs_links_acm: Vec<(u32, u32)> = Vec::new();
        let mut gs_clusters: Vec<Vec<u32>> = Vec::new();

        let intern_gs_author = |author_gs: &mut LogicalSource,
                                gs_author_rows: &mut FxHashMap<String, u32>,
                                name: String|
         -> u32 {
            match gs_author_rows.get(&name) {
                Some(&r) => r,
                None => {
                    let r = author_gs
                        .insert_record(
                            format!("gs-author-{}", gs_author_rows.len()),
                            vec![("name", name.clone().into())],
                        )
                        .expect("unique gs author id");
                    gs_author_rows.insert(name, r);
                    r
                }
            }
        };

        for (pi, p) in self.world.pubs.iter().enumerate() {
            if !self.rng.gen_bool(cfg.gs_coverage) {
                continue;
            }
            // Skewed duplicate-entry count.
            let r: f64 = self.rng.gen();
            let dups = 1 + ((r * r * r) * cfg.gs_max_dups as f64) as usize;
            let dups = dups.min(cfg.gs_max_dups);
            let mut cluster: Vec<u32> = Vec::with_capacity(dups);
            let venue = &self.world.venues[p.venue];
            for _ in 0..dups {
                let mut title = p.title.clone();
                if self.rng.gen_bool(cfg.gs_typo_prob) {
                    let n = match self.rng.gen_range(0..10u8) {
                        0..=4 => 1,
                        5..=7 => 2,
                        _ => 4,
                    };
                    title = typos(&mut self.rng, &title, n);
                }
                if self.rng.gen_bool(cfg.gs_truncate_prob) {
                    title = truncate_words(&mut self.rng, &title, 0.6);
                }
                if self.rng.gen_bool(cfg.gs_venue_glue_prob) {
                    title = format!(
                        "{title} - {}",
                        venue.series.dblp_name(venue.year, venue.issue)
                    );
                }
                // Author list: always abbreviated, tail sometimes dropped.
                let full_names: Vec<String> = p
                    .authors
                    .iter()
                    .map(|&a| self.world.persons[a].full_name())
                    .collect();
                let kept_persons: Vec<usize> = {
                    let kept_names = drop_tail(&mut self.rng, &full_names, cfg.gs_author_drop_prob);
                    // Recover person indexes for the kept prefix names.
                    kept_names
                        .iter()
                        .filter_map(|n| {
                            p.authors
                                .iter()
                                .find(|&&a| self.world.persons[a].full_name() == *n)
                                .copied()
                        })
                        .collect()
                };
                let mut names: Vec<String> = Vec::with_capacity(kept_persons.len());
                let mut rows: Vec<u32> = Vec::with_capacity(kept_persons.len());
                for &person in &kept_persons {
                    let name = abbreviate_name(&self.world.persons[person].full_name());
                    let row = intern_gs_author(&mut author_gs, &mut gs_author_rows, name.clone());
                    gs_author_persons.entry(row).or_default().insert(person);
                    rows.push(row);
                    names.push(name);
                }
                let mut fields: Vec<(&str, AttrValue)> = vec![
                    ("title", title.into()),
                    ("authors", names.into()),
                    (
                        "citations",
                        ((p.citations as i64 / dups as i64) + self.rng.gen_range(0..5i64)).into(),
                    ),
                ];
                if !self.rng.gen_bool(cfg.gs_missing_year_prob) {
                    fields.push(("year", p.year.into()));
                }
                let row = pub_gs
                    .insert_record(format!("gs{}", gs_entry_pub.len()), fields)
                    .expect("unique gs id");
                gs_entry_pub.push(Some(pi));
                gs_pub_authors.push(rows);
                cluster.push(row);
                // Native GS -> ACM link.
                if let Some(acm_row) = acm_pub_row[pi] {
                    if self.rng.gen_bool(cfg.gs_acm_link_prob) {
                        let target = if self.rng.gen_bool(cfg.gs_acm_link_wrong_prob) {
                            // Wrong link: a random other ACM publication.

                            self.rng.gen_range(0..acm_pub_world.len()) as u32
                        } else {
                            acm_row
                        };
                        gs_links_acm.push((row, target));
                    }
                }
            }
            // GS clustering with misses.
            if cluster.len() > 1 {
                let mut clustered: Vec<u32> = Vec::new();
                for &e in &cluster {
                    if self.rng.gen_bool(cfg.gs_cluster_miss_prob) {
                        gs_clusters.push(vec![e]);
                    } else {
                        clustered.push(e);
                    }
                }
                if !clustered.is_empty() {
                    gs_clusters.push(clustered);
                }
            } else {
                gs_clusters.push(cluster.clone());
            }
        }

        // Noise entries: real-looking papers outside the venue scope.
        for k in 0..cfg.gs_noise_entries {
            let opener = TITLE_OPENERS[self.rng.gen_range(0..TITLE_OPENERS.len())];
            let tech = TITLE_TECHNIQUES[self.rng.gen_range(0..TITLE_TECHNIQUES.len())];
            let tech2 = TITLE_TECHNIQUES[self.rng.gen_range(0..TITLE_TECHNIQUES.len())];
            let ctx = TITLE_CONTEXTS[self.rng.gen_range(0..TITLE_CONTEXTS.len())];
            let sys = crate::world::gen_system_name(&mut self.rng);
            let title = match self.rng.gen_range(0..5u8) {
                0 => format!("Towards {opener} {tech}"),
                1 => format!("{tech} and {tech2}: Experiences from {ctx}"),
                2 => format!("A Survey of {tech} in {ctx}"),
                3 => format!("{sys}: {tech2} Support for {ctx}"),
                _ => format!("Benchmarking {tech} on {sys}"),
            };
            let team = self.rng.gen_range(1..4usize);
            let mut names = Vec::with_capacity(team);
            let mut rows = Vec::with_capacity(team);
            for _ in 0..team {
                let person = self.rng.gen_range(0..self.world.persons.len());
                let name = abbreviate_name(&self.world.persons[person].full_name());
                let row = intern_gs_author(&mut author_gs, &mut gs_author_rows, name.clone());
                gs_author_persons.entry(row).or_default().insert(person);
                rows.push(row);
                names.push(name);
            }
            let mut fields: Vec<(&str, AttrValue)> = vec![
                ("title", title.into()),
                ("authors", names.into()),
                ("citations", self.rng.gen_range(0..40i64).into()),
            ];
            if self.rng.gen_bool(0.7) {
                fields.push(("year", self.rng.gen_range(1990..2006u16).into()));
            }
            let _ = pub_gs
                .insert_record(format!("gs{}", gs_entry_pub.len() + k - k), fields)
                .inspect(|&row| {
                    gs_entry_pub.push(None);
                    gs_pub_authors.push(rows);
                    gs_clusters.push(vec![row]);
                })
                .expect("unique gs noise id");
        }

        // ---------- register sources ----------
        let ids = ScenarioIds {
            pub_dblp: self.registry.register(pub_dblp).expect("register"),
            author_dblp: self.registry.register(author_dblp).expect("register"),
            venue_dblp: self.registry.register(venue_dblp).expect("register"),
            pub_acm: self.registry.register(pub_acm).expect("register"),
            author_acm: self.registry.register(author_acm).expect("register"),
            venue_acm: self.registry.register(venue_acm).expect("register"),
            pub_gs: self.registry.register(pub_gs).expect("register"),
            author_gs: self.registry.register(author_gs).expect("register"),
        };

        // ---------- association mappings ----------
        let store_assoc = |name: &str, ty: &str, d: LdsId, r: LdsId, pairs: Vec<(u32, u32)>| {
            let table = MappingTable::from_triples(pairs.into_iter().map(|(a, b)| (a, b, 1.0)));
            self.repository
                .store_as(name, Mapping::association(name, ty, d, r, table));
        };

        // DBLP venue/pub associations (world indexes == row indexes).
        let venue_pub_pairs: Vec<(u32, u32)> = self
            .world
            .pubs
            .iter()
            .enumerate()
            .map(|(pi, p)| (p.venue as u32, pi as u32))
            .collect();
        store_assoc(
            "DBLP.VenuePub",
            "publications of venue",
            ids.venue_dblp,
            ids.pub_dblp,
            venue_pub_pairs.clone(),
        );
        store_assoc(
            "DBLP.PubVenue",
            "venue of publication",
            ids.pub_dblp,
            ids.venue_dblp,
            venue_pub_pairs.iter().map(|&(v, p)| (p, v)).collect(),
        );
        let pub_author_pairs: Vec<(u32, u32)> = dblp_pub_authors
            .iter()
            .enumerate()
            .flat_map(|(pi, rows)| rows.iter().map(move |&r| (pi as u32, r)))
            .collect();
        store_assoc(
            "DBLP.PubAuthor",
            "authors of publication",
            ids.pub_dblp,
            ids.author_dblp,
            pub_author_pairs.clone(),
        );
        store_assoc(
            "DBLP.AuthorPub",
            "publications of author",
            ids.author_dblp,
            ids.pub_dblp,
            pub_author_pairs.iter().map(|&(p, a)| (a, p)).collect(),
        );
        // Co-author mapping (symmetric, no self pairs).
        let mut coauthor: Vec<(u32, u32)> = Vec::new();
        for rows in &dblp_pub_authors {
            for (i, &a) in rows.iter().enumerate() {
                for &b in &rows[i + 1..] {
                    if a != b {
                        coauthor.push((a, b));
                        coauthor.push((b, a));
                    }
                }
            }
        }
        store_assoc(
            "DBLP.CoAuthor",
            "co-authors",
            ids.author_dblp,
            ids.author_dblp,
            coauthor,
        );
        // Identity mapping over DBLP authors (Section 4.3's trivial
        // same-mapping for within-source neighborhood matching).
        let dblp_author_count = self.registry.lds(ids.author_dblp).len() as u32;
        self.repository.store_as(
            "DBLP.AuthorAuthor",
            Mapping::identity(ids.author_dblp, dblp_author_count),
        );

        // ACM associations.
        let acm_venue_pub: Vec<(u32, u32)> = acm_pub_world
            .iter()
            .enumerate()
            .filter_map(|(row, &pi)| {
                acm_venue_row[self.world.pubs[pi].venue].map(|v| (v, row as u32))
            })
            .collect();
        store_assoc(
            "ACM.VenuePub",
            "publications of venue",
            ids.venue_acm,
            ids.pub_acm,
            acm_venue_pub.clone(),
        );
        store_assoc(
            "ACM.PubVenue",
            "venue of publication",
            ids.pub_acm,
            ids.venue_acm,
            acm_venue_pub.iter().map(|&(v, p)| (p, v)).collect(),
        );
        let acm_pub_author: Vec<(u32, u32)> = acm_pub_authors
            .iter()
            .enumerate()
            .flat_map(|(row, authors)| authors.iter().map(move |&a| (row as u32, a)))
            .collect();
        store_assoc(
            "ACM.PubAuthor",
            "authors of publication",
            ids.pub_acm,
            ids.author_acm,
            acm_pub_author.clone(),
        );
        store_assoc(
            "ACM.AuthorPub",
            "publications of author",
            ids.author_acm,
            ids.pub_acm,
            acm_pub_author.iter().map(|&(p, a)| (a, p)).collect(),
        );

        // GS associations.
        let gs_pub_author: Vec<(u32, u32)> = gs_pub_authors
            .iter()
            .enumerate()
            .flat_map(|(row, authors)| authors.iter().map(move |&a| (row as u32, a)))
            .collect();
        store_assoc(
            "GS.PubAuthor",
            "authors of publication",
            ids.pub_gs,
            ids.author_gs,
            gs_pub_author.clone(),
        );
        store_assoc(
            "GS.AuthorPub",
            "publications of author",
            ids.author_gs,
            ids.pub_gs,
            gs_pub_author.iter().map(|&(p, a)| (a, p)).collect(),
        );
        // Native GS -> ACM links (same-mapping, imperfect).
        self.repository.store_as(
            "GS.LinksACM",
            Mapping::same(
                "GS.LinksACM",
                ids.pub_gs,
                ids.pub_acm,
                MappingTable::from_triples(gs_links_acm.iter().map(|&(g, a)| (g, a, 1.0))),
            ),
        );
        // GS cluster self-mapping (pairwise within clusters).
        let mut cluster_pairs: Vec<(u32, u32, f64)> = Vec::new();
        for cluster in &gs_clusters {
            for (i, &a) in cluster.iter().enumerate() {
                for &b in &cluster[i + 1..] {
                    cluster_pairs.push((a, b, 1.0));
                    cluster_pairs.push((b, a, 1.0));
                }
            }
        }
        self.repository.store_as(
            "GS.Clusters",
            Mapping::same(
                "GS.Clusters",
                ids.pub_gs,
                ids.pub_gs,
                MappingTable::from_triples(cluster_pairs),
            ),
        );

        // ---------- gold standards ----------
        let mut gold = Gold::default();
        for (pi, acm_row) in acm_pub_row.iter().enumerate() {
            if let Some(acm_row) = acm_row {
                gold.pub_dblp_acm.insert(pi as u32, *acm_row);
            }
        }
        for (gs_row, wp) in gs_entry_pub.iter().enumerate() {
            if let Some(pi) = wp {
                gold.pub_dblp_gs.insert(*pi as u32, gs_row as u32);
                if let Some(acm_row) = acm_pub_row[*pi] {
                    gold.pub_gs_acm.insert(gs_row as u32, acm_row);
                }
            }
        }
        for (vi, acm_row) in acm_venue_row.iter().enumerate() {
            if let Some(acm_row) = acm_row {
                gold.venue_dblp_acm.insert(vi as u32, *acm_row);
            }
        }
        // Author golds: identity person sets vs name-string person sets.
        let identity_person: FxHashMap<u32, usize> = identity_rows
            .iter()
            .map(|(ident, &row)| (row, ident.person))
            .collect();
        for (&dblp_row, &person) in &identity_person {
            for (&acm_row, persons) in &acm_author_persons {
                if persons.contains(&person) {
                    gold.author_dblp_acm.insert(dblp_row, acm_row);
                }
            }
            for (&gs_row, persons) in &gs_author_persons {
                if persons.contains(&person) {
                    gold.author_dblp_gs.insert(dblp_row, gs_row);
                }
            }
        }
        for (&gs_row, g_persons) in &gs_author_persons {
            for (&acm_row, a_persons) in &acm_author_persons {
                if g_persons.intersection(a_persons).next().is_some() {
                    gold.author_gs_acm.insert(gs_row, acm_row);
                }
            }
        }
        // DBLP duplicate identities (both directions).
        let mut rows_of_person: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
        for (ident, &row) in &identity_rows {
            rows_of_person.entry(ident.person).or_default().push(row);
        }
        for rows in rows_of_person.values() {
            if rows.len() > 1 {
                for (i, &a) in rows.iter().enumerate() {
                    for &b in &rows[i + 1..] {
                        gold.author_dup_dblp.insert(a, b);
                        gold.author_dup_dblp.insert(b, a);
                    }
                }
            }
        }

        Scenario {
            world: self.world,
            registry: self.registry,
            repository: self.repository,
            ids,
            gold,
            dblp_pub_is_conf,
            dblp_venue_is_conf,
            gs_entry_pub,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::small()
    }

    #[test]
    fn eight_sources_registered() {
        let s = scenario();
        assert_eq!(s.registry.len(), 8);
        assert!(s.registry.resolve("Publication@DBLP").is_ok());
        assert!(s.registry.resolve("Author@GS").is_ok());
        assert!(s.registry.resolve("Venue@ACM").is_ok());
    }

    #[test]
    fn dblp_is_complete() {
        let s = scenario();
        assert_eq!(s.registry.lds(s.ids.pub_dblp).len(), s.world.pubs.len());
        assert_eq!(s.registry.lds(s.ids.venue_dblp).len(), s.world.venues.len());
    }

    #[test]
    fn acm_misses_vldb_2002_2003() {
        let s = scenario();
        // Small config covers 2000-2003, so 2 venues are dropped.
        let dropped = s
            .world
            .venues
            .iter()
            .filter(|v| v.series == Series::Vldb && (v.year == 2002 || v.year == 2003))
            .count();
        assert_eq!(dropped, 2);
        assert_eq!(
            s.registry.lds(s.ids.venue_acm).len(),
            s.world.venues.len() - dropped
        );
        // ACM has fewer publications than DBLP.
        assert!(s.registry.lds(s.ids.pub_acm).len() < s.registry.lds(s.ids.pub_dblp).len());
        // No ACM publication belongs to a dropped venue.
        for (pi, p) in s.world.pubs.iter().enumerate() {
            let v = &s.world.venues[p.venue];
            if v.series == Series::Vldb && (v.year == 2002 || v.year == 2003) {
                assert!(!s.gold.pub_dblp_acm.iter().any(|(d, _)| d == pi as u32));
            }
        }
    }

    #[test]
    fn acm_has_more_author_entities_than_dblp() {
        // Abbreviation splits identities (Table 1: ACM 3,547 > DBLP 3,319).
        let s = scenario();
        let dblp = s.registry.lds(s.ids.author_dblp).len();
        let acm = s.registry.lds(s.ids.author_acm).len();
        assert!(acm > dblp, "ACM {acm} <= DBLP {dblp}");
    }

    #[test]
    fn gs_has_duplicates_and_noise() {
        let s = scenario();
        let gs_len = s.registry.lds(s.ids.pub_gs).len();
        assert_eq!(gs_len, s.gs_entry_pub.len());
        let matched = s.gs_entry_pub.iter().flatten().count();
        let noise = gs_len - matched;
        assert_eq!(noise, s.world.config.gs_noise_entries);
        // Duplicates exist: more matched entries than distinct pubs.
        let distinct: FxHashSet<usize> = s.gs_entry_pub.iter().flatten().copied().collect();
        assert!(matched > distinct.len());
    }

    #[test]
    fn gs_authors_are_abbreviated() {
        let s = scenario();
        let lds = s.registry.lds(s.ids.author_gs);
        let with_initial = lds
            .iter()
            .filter(|(_, inst)| {
                inst.value(0)
                    .and_then(|v| v.as_text())
                    .map(|n| n.contains(". "))
                    .unwrap_or(false)
            })
            .count();
        assert!(with_initial as f64 > 0.9 * lds.len() as f64);
    }

    #[test]
    fn association_mappings_stored() {
        let s = scenario();
        for name in [
            "DBLP.VenuePub",
            "DBLP.PubVenue",
            "DBLP.PubAuthor",
            "DBLP.AuthorPub",
            "DBLP.CoAuthor",
            "DBLP.AuthorAuthor",
            "ACM.VenuePub",
            "ACM.PubVenue",
            "ACM.PubAuthor",
            "ACM.AuthorPub",
            "GS.PubAuthor",
            "GS.AuthorPub",
            "GS.LinksACM",
            "GS.Clusters",
        ] {
            assert!(s.repository.contains(name), "missing {name}");
        }
        // VenuePub and PubVenue are mutual inverses.
        let vp = s.repository.get("DBLP.VenuePub").unwrap();
        let pv = s.repository.get("DBLP.PubVenue").unwrap();
        assert_eq!(vp.table.pair_set(), pv.table.inverted().pair_set());
    }

    #[test]
    fn native_links_have_low_recall_but_decent_precision() {
        let s = scenario();
        let links = s.repository.get("GS.LinksACM").unwrap();
        let gold = &s.gold.pub_gs_acm;
        let correct = links
            .table
            .iter()
            .filter(|c| gold.contains(c.domain, c.range))
            .count();
        let recall = correct as f64 / gold.len() as f64;
        let precision = correct as f64 / links.len() as f64;
        assert!(recall < 0.45, "link recall {recall} too high");
        assert!(recall > 0.05, "link recall {recall} too low");
        assert!(precision > 0.8, "link precision {precision} too low");
    }

    #[test]
    fn gold_standards_populated() {
        let s = scenario();
        assert!(!s.gold.pub_dblp_acm.is_empty());
        assert!(!s.gold.pub_dblp_gs.is_empty());
        assert!(!s.gold.pub_gs_acm.is_empty());
        assert!(!s.gold.venue_dblp_acm.is_empty());
        assert!(!s.gold.author_dblp_acm.is_empty());
        assert!(!s.gold.author_dblp_gs.is_empty());
        assert!(!s.gold.author_dup_dblp.is_empty());
    }

    #[test]
    fn dup_gold_matches_world_duplicates() {
        let s = scenario();
        // Every injected duplicate produces at least one gold dup pair
        // (both identities must have surfaced in DBLP).
        assert!(s.gold.author_dup_dblp.len() >= 2 * s.world.duplicates.len());
    }

    #[test]
    fn deterministic() {
        let a = Scenario::small();
        let b = Scenario::small();
        assert_eq!(
            a.registry.lds(a.ids.pub_gs).len(),
            b.registry.lds(b.ids.pub_gs).len()
        );
        assert_eq!(a.gold.pub_dblp_acm.len(), b.gold.pub_dblp_acm.len());
        let ta = a.repository.get("GS.LinksACM").unwrap();
        let tb = b.repository.get("GS.LinksACM").unwrap();
        assert_eq!(ta.table, tb.table);
    }

    #[test]
    fn conference_flags_align() {
        let s = scenario();
        assert_eq!(s.dblp_pub_is_conf.len(), s.world.pubs.len());
        assert_eq!(s.dblp_venue_is_conf.len(), s.world.venues.len());
        for (pi, p) in s.world.pubs.iter().enumerate() {
            assert_eq!(
                s.dblp_pub_is_conf[pi],
                s.world.venues[p.venue].series.is_conference()
            );
        }
    }
}
