//! Name and title-word pools for the synthetic world.

/// First-name pool.
pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas",
    "Sarah", "Charles", "Karen", "Christopher", "Nancy", "Daniel", "Lisa", "Matthew", "Betty",
    "Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Dorothy", "Kevin", "Carol",
    "Brian", "Amanda", "George", "Melissa", "Edward", "Deborah", "Ronald", "Stephanie",
    "Timothy", "Rebecca", "Jason", "Sharon", "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob",
    "Kathleen", "Gary", "Amy", "Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Anna",
    "Stephen", "Brenda", "Larry", "Pamela", "Justin", "Emma", "Scott", "Nicole", "Brandon",
    "Helen", "Benjamin", "Samantha", "Samuel", "Katherine", "Gregory", "Christine", "Frank",
    "Debra", "Alexander", "Rachel", "Raymond", "Carolyn", "Patrick", "Janet", "Jack", "Virginia",
    "Dennis", "Maria", "Jerry", "Heather", "Tyler", "Diane", "Aaron", "Julie", "Jose", "Joyce",
    "Adam", "Victoria", "Nathan", "Olivia", "Henry", "Kelly", "Douglas", "Christina", "Zachary",
    "Joan", "Peter", "Evelyn", "Kyle", "Lauren", "Walter", "Judith", "Ethan", "Megan", "Jeremy",
    "Andrea", "Harold", "Cheryl", "Keith", "Hannah", "Christian", "Jacqueline", "Roger",
    "Martha", "Noah", "Gloria", "Gerald", "Teresa", "Carl", "Ann", "Terry", "Sara", "Sean",
    "Madison", "Austin", "Frances", "Arthur", "Kathryn", "Lawrence", "Janice", "Jesse", "Jean",
    "Dylan", "Abigail", "Bryan", "Alice", "Joe", "Julia", "Jordan", "Judy", "Billy", "Sophia",
    "Bruce", "Grace", "Albert", "Denise", "Willie", "Amber", "Gabriel", "Doris", "Logan",
    "Marilyn", "Alan", "Danielle", "Juan", "Beverly", "Wayne", "Isabella", "Roy", "Theresa",
    "Ralph", "Diana", "Randy", "Natalie", "Eugene", "Brittany", "Vincent", "Charlotte",
    "Russell", "Marie", "Elijah", "Kayla", "Louis", "Alexis", "Bobby", "Lori", "Philip",
    "Erhard", "Andreas", "Hong", "Wei", "Xin", "Surajit", "Rakesh", "Hector", "Jiawei",
    "Divesh", "Raghu", "Jeff", "Serge", "Gerhard", "Alfons", "Donghui", "Kaushik", "Sunita",
    "Volker", "Guido", "Renee", "Mitch", "Alon", "Phil", "Divy", "Umesh", "Meichun", "Laks",
];

/// Last-name pool.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker", "Hall",
    "Rivera", "Campbell", "Mitchell", "Carter", "Roberts", "Gomez", "Phillips", "Evans",
    "Turner", "Diaz", "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper", "Peterson",
    "Bailey", "Reed", "Kelly", "Howard", "Ramos", "Kim", "Cox", "Ward", "Richardson", "Watson",
    "Brooks", "Chavez", "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long", "Ross", "Foster",
    "Jimenez", "Powell", "Jenkins", "Perry", "Russell", "Sullivan", "Bell", "Coleman", "Butler",
    "Henderson", "Barnes", "Gonzales", "Fisher", "Vasquez", "Simmons", "Romero", "Jordan",
    "Patterson", "Alexander", "Hamilton", "Graham", "Reynolds", "Griffin", "Wallace", "Moreno",
    "West", "Cole", "Hayes", "Bryant", "Herrera", "Gibson", "Ellis", "Tran", "Medina", "Aguilar",
    "Stevens", "Murray", "Ford", "Castro", "Marshall", "Owens", "Harrison", "Fernandez",
    "McDonald", "Woods", "Washington", "Kennedy", "Wells", "Vargas", "Henry", "Chen", "Freeman",
    "Webb", "Tucker", "Guzman", "Burns", "Crawford", "Olson", "Simpson", "Porter", "Hunter",
    "Gordon", "Mendez", "Silva", "Shaw", "Snyder", "Mason", "Dixon", "Munoz", "Hunt", "Hicks",
    "Holmes", "Palmer", "Wagner", "Black", "Robertson", "Boyd", "Rose", "Stone", "Salazar",
    "Fox", "Warren", "Mills", "Meyer", "Rice", "Schmidt", "Daniels", "Ferguson", "Nichols",
    "Stephens", "Soto", "Weaver", "Ryan", "Gardner", "Payne", "Grant", "Dunn", "Kelley",
    "Spencer", "Hawkins", "Arnold", "Pierce", "Vazquez", "Hansen", "Peters", "Santos", "Hart",
    "Bradley", "Knight", "Elliott", "Cunningham", "Duncan", "Armstrong", "Hudson", "Carroll",
    "Lane", "Riley", "Andrews", "Alvarado", "Ray", "Delgado", "Berry", "Perkins", "Hoffman",
    "Johnston", "Matthews", "Pena", "Richards", "Contreras", "Willis", "Carpenter", "Lawrence",
    "Sandoval", "Guerrero", "George", "Chapman", "Rios", "Estrada", "Ortega", "Watkins",
    "Greene", "Nunez", "Wheeler", "Valdez", "Harper", "Burke", "Larson", "Santiago", "Maldonado",
    "Morrison", "Franklin", "Carlson", "Austin", "Dominguez", "Carr", "Lawson", "Jacobs",
    "Obrien", "Lynch", "Singh", "Vega", "Bishop", "Montgomery", "Oliver", "Jensen", "Harvey",
    "Williamson", "Gilbert", "Dean", "Sims", "Espinoza", "Howell", "Li", "Wong", "Reid",
    "Hanson", "Le", "McCoy", "Garrett", "Burton", "Fuller", "Wang", "Weber", "Welch", "Rojas",
    "Lucas", "Marquez", "Fields", "Park", "Yang", "Little", "Banks", "Padilla", "Day", "Walsh",
    "Bowman", "Schultz", "Luna", "Fowler", "Mejia", "Rahm", "Thor", "Chaudhuri", "Agrawal",
    "Halevy", "Widom", "Naughton", "Ioannidis", "Kossmann", "Kemper", "Gehrke", "Ganti",
];

/// Adjectives/openers for titles.
pub const TITLE_OPENERS: &[&str] = &[
    "Efficient", "Scalable", "Adaptive", "Robust", "Incremental", "Approximate", "Optimal",
    "Dynamic", "Distributed", "Parallel", "Generic", "Flexible", "Online", "Declarative",
    "Probabilistic", "Cost-based", "Index-based", "Cache-conscious", "Semantic", "Automated",
    "Self-tuning", "Lazy", "Eager", "Speculative", "Workload-aware", "Progressive",
    "Interactive", "Hierarchical", "Versioned", "Secure", "Privacy-preserving", "Hybrid",
    "Partition-based", "Sampling-based", "Hash-based", "Lattice-based", "Rule-driven",
    "Statistics-driven", "Disk-aware", "Pipelined",
];

/// Core techniques for titles.
pub const TITLE_TECHNIQUES: &[&str] = &[
    "Query Processing", "Query Optimization", "Join Processing", "View Maintenance",
    "Schema Matching", "Data Integration", "Data Cleaning", "Duplicate Detection",
    "Index Structures", "Similarity Search", "Selectivity Estimation", "Query Rewriting",
    "Transaction Management", "Concurrency Control", "Data Mining", "Clustering",
    "Stream Processing", "Aggregation", "Materialized Views", "Access Methods", "Load Shedding",
    "Skyline Computation", "Top-k Retrieval", "Nearest Neighbor Search", "Cardinality Estimation",
    "Buffer Management", "Recovery", "Replication", "Partitioning", "Compression",
    "Version Management", "Schema Evolution", "Integrity Checking", "Provenance Tracking",
    "Workflow Execution", "Trigger Processing", "Constraint Enforcement", "Cube Computation",
    "Histogram Construction", "Sketch Maintenance", "Bitmap Indexing", "Bulk Loading",
    "Garbage Collection", "Log Shipping", "Snapshot Isolation", "Lock Management",
    "Predicate Evaluation", "Path Indexing", "Keyword Search", "Range Querying",
    "Outlier Detection", "Pattern Discovery", "Association Mining", "Sequence Analysis",
    "Change Detection", "Sampling", "Summarization", "Deduplication", "Entity Ranking",
    "Graph Traversal", "Reachability Testing", "Subgraph Matching", "Tree Embedding",
];

/// Contexts for titles.
pub const TITLE_CONTEXTS: &[&str] = &[
    "Relational Databases", "Data Warehouses", "Semistructured Data", "XML Data",
    "Heterogeneous Sources", "Sensor Networks", "Peer-to-Peer Systems", "the Web",
    "Spatial Databases", "Temporal Databases", "OLAP Workloads", "Decision Support",
    "Main-Memory Systems", "Parallel Systems", "Federated Systems", "Digital Libraries",
    "Scientific Data", "Moving Objects", "Text Collections", "Multidimensional Data",
    "Mobile Clients", "Embedded Devices", "Cluster Architectures", "Shared-Nothing Systems",
    "Wide-Area Networks", "Object-Oriented Databases", "Deductive Databases",
    "Multimedia Repositories", "Genomic Archives", "Time-Series Stores", "Message Brokers",
    "Publish-Subscribe Systems", "Continuous Queries", "Approximate Answers",
    "Secondary Storage", "Tertiary Storage", "Flash Memory", "Column Stores",
    "Semantic Caches", "Mediator Systems",
];

/// Syllables for synthetic system/prototype names ("the Zorbak approach"),
/// giving titles a high-entropy distinguishing token.
pub const SYSTEM_SYLLABLES: &[&str] = &[
    "zor", "mak", "vel", "tis", "qua", "ron", "bel", "dax", "fen", "gor", "hyl", "jin", "kel",
    "lum", "mir", "nox", "pya", "rup", "sil", "tor", "ugo", "vex", "wim", "xan", "yel", "zim",
];

/// Recurring SIGMOD-Record-style newsletter titles. These repeat across
/// issues ("editorials, reminiscences on influential papers or
/// interviews", paper Section 5.4.2) and defeat pure title matching.
pub const RECURRING_TITLES: &[&str] = &[
    "Editor's Notes",
    "Chair's Message",
    "Reminiscences on Influential Papers",
    "Report on the Database Research Workshop",
    "Interview with a Database Pioneer",
    "Treasurer's Message",
    "Calls for Papers",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_large_enough() {
        assert!(FIRST_NAMES.len() >= 150);
        assert!(LAST_NAMES.len() >= 280);
        // Enough combinations for the paper-scale person pool.
        assert!(FIRST_NAMES.len() * LAST_NAMES.len() >= 10 * 3600);
        assert!(TITLE_OPENERS.len() * TITLE_TECHNIQUES.len() * TITLE_CONTEXTS.len() >= 10_000);
    }

    #[test]
    fn no_duplicate_names_in_pools() {
        let mut f: Vec<&str> = FIRST_NAMES.to_vec();
        f.sort_unstable();
        f.dedup();
        assert_eq!(f.len(), FIRST_NAMES.len());
        let mut l: Vec<&str> = LAST_NAMES.to_vec();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), LAST_NAMES.len());
    }

    #[test]
    fn recurring_titles_present() {
        assert!(RECURRING_TITLES.len() >= 5);
    }
}
