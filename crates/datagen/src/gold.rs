//! Gold-standard ("perfect") mappings.

use moma_table::FxHashSet;

use moma_core::Mapping;

/// A perfect mapping: the set of correct correspondences between two
/// logical sources (as instance-index pairs).
#[derive(Debug, Clone, Default)]
pub struct GoldStandard {
    pairs: FxHashSet<(u32, u32)>,
}

impl GoldStandard {
    /// Empty gold standard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        Self {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// Add one correct pair.
    pub fn insert(&mut self, domain: u32, range: u32) {
        self.pairs.insert((domain, range));
    }

    /// Whether a pair is correct.
    pub fn contains(&self, domain: u32, range: u32) -> bool {
        self.pairs.contains(&(domain, range))
    }

    /// Number of correct pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the gold standard is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate the correct pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.pairs.iter().copied()
    }

    /// The inverse gold standard (swapped sides).
    pub fn inverted(&self) -> GoldStandard {
        Self::from_pairs(self.pairs.iter().map(|&(a, b)| (b, a)))
    }

    /// Restrict to pairs whose domain satisfies a predicate — used for
    /// the conference/journal breakdowns of Tables 4 and 5.
    pub fn filter_domain(&self, mut pred: impl FnMut(u32) -> bool) -> GoldStandard {
        Self::from_pairs(self.pairs.iter().copied().filter(|&(d, _)| pred(d)))
    }

    /// The perfect mapping as a [`Mapping`]-compatible set (for seeding
    /// workflows with ground truth, e.g. training the self-tuner).
    pub fn to_mapping(
        &self,
        name: &str,
        domain: moma_model::LdsId,
        range: moma_model::LdsId,
    ) -> Mapping {
        Mapping::same(
            name,
            domain,
            range,
            moma_table::MappingTable::from_triples(self.iter().map(|(a, b)| (a, b, 1.0))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::LdsId;

    #[test]
    fn basics() {
        let mut g = GoldStandard::new();
        assert!(g.is_empty());
        g.insert(0, 1);
        g.insert(0, 1);
        g.insert(2, 3);
        assert_eq!(g.len(), 2);
        assert!(g.contains(0, 1));
        assert!(!g.contains(1, 0));
    }

    #[test]
    fn inversion() {
        let g = GoldStandard::from_pairs([(0, 1), (2, 3)]);
        let inv = g.inverted();
        assert!(inv.contains(1, 0));
        assert!(inv.contains(3, 2));
        assert_eq!(inv.len(), 2);
    }

    #[test]
    fn domain_filter() {
        let g = GoldStandard::from_pairs([(0, 1), (2, 3), (4, 5)]);
        let even = g.filter_domain(|d| d < 3);
        assert_eq!(even.len(), 2);
        assert!(!even.contains(4, 5));
    }

    #[test]
    fn to_mapping() {
        let g = GoldStandard::from_pairs([(0, 1)]);
        let m = g.to_mapping("gold", LdsId(0), LdsId(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.table.sim_of(0, 1), Some(1.0));
        assert!(m.kind.is_same());
    }
}
