//! Precision / recall / F-measure against gold standards.
//!
//! "We measure the quality of different match workflows with the standard
//! metrics precision, recall and F-measure with respect to manually
//! determined 'perfect' mappings" (paper Section 5.1).

use moma_core::Mapping;
use moma_datagen::GoldStandard;

/// Confusion counts and derived quality metrics of one mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// Correspondences that are in the gold standard.
    pub tp: usize,
    /// Correspondences that are not.
    pub fp: usize,
    /// Gold pairs the mapping missed.
    pub fn_: usize,
}

impl MatchQuality {
    /// Evaluate a mapping against a gold standard.
    pub fn evaluate(mapping: &Mapping, gold: &GoldStandard) -> Self {
        let mut tp = 0usize;
        for c in mapping.table.iter() {
            if gold.contains(c.domain, c.range) {
                tp += 1;
            }
        }
        let fp = mapping.len() - tp;
        let fn_ = gold.len() - tp;
        Self { tp, fp, fn_ }
    }

    /// Evaluate only pairs whose *domain* object satisfies `pred`
    /// (conference vs. journal breakdowns): both the mapping and the gold
    /// standard are restricted.
    pub fn evaluate_domain_subset(
        mapping: &Mapping,
        gold: &GoldStandard,
        mut pred: impl FnMut(u32) -> bool,
    ) -> Self {
        let sub_gold = gold.filter_domain(&mut pred);
        let mut tp = 0usize;
        let mut considered = 0usize;
        for c in mapping.table.iter() {
            if !pred(c.domain) {
                continue;
            }
            considered += 1;
            if sub_gold.contains(c.domain, c.range) {
                tp += 1;
            }
        }
        Self {
            tp,
            fp: considered - tp,
            fn_: sub_gold.len() - tp,
        }
    }

    /// Precision `tp / (tp + fp)`; 1.0 for an empty mapping over an empty
    /// gold standard, 0.0 for an empty mapping otherwise.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            if self.fn_ == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Balanced F-measure.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// `(precision, recall, f1)` as percentages.
    pub fn as_percentages(&self) -> (f64, f64, f64) {
        (
            self.precision() * 100.0,
            self.recall() * 100.0,
            self.f1() * 100.0,
        )
    }
}

impl std::fmt::Display for MatchQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.1}% R={:.1}% F={:.1}%",
            self.precision() * 100.0,
            self.recall() * 100.0,
            self.f1() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::LdsId;
    use moma_table::MappingTable;

    fn gold() -> GoldStandard {
        GoldStandard::from_pairs([(0, 0), (1, 1), (2, 2), (3, 3)])
    }

    fn mapping(pairs: &[(u32, u32)]) -> Mapping {
        Mapping::same(
            "m",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples(pairs.iter().map(|&(a, b)| (a, b, 1.0))),
        )
    }

    #[test]
    fn perfect_mapping() {
        let q = MatchQuality::evaluate(&mapping(&[(0, 0), (1, 1), (2, 2), (3, 3)]), &gold());
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn partial_mapping() {
        // 2 TP, 1 FP, 2 FN.
        let q = MatchQuality::evaluate(&mapping(&[(0, 0), (1, 1), (9, 9)]), &gold());
        assert_eq!(q.tp, 2);
        assert_eq!(q.fp, 1);
        assert_eq!(q.fn_, 2);
        assert!((q.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.recall(), 0.5);
        let f = q.f1();
        assert!((f - (2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5))).abs() < 1e-12);
    }

    #[test]
    fn empty_mapping() {
        let q = MatchQuality::evaluate(&mapping(&[]), &gold());
        assert_eq!(q.precision(), 0.0);
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.f1(), 0.0);
        // Empty against empty is perfect.
        let q = MatchQuality::evaluate(&mapping(&[]), &GoldStandard::new());
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
    }

    #[test]
    fn empty_gold_standard_with_predictions() {
        // Nothing to find, but the mapping asserts pairs anyway: every
        // prediction is a false positive, recall is vacuously perfect,
        // and F1 collapses to 0 (pinned — callers comparing workflows on
        // scenario subsets hit this when a subset has no gold pairs).
        let q = MatchQuality::evaluate(&mapping(&[(0, 0), (1, 1)]), &GoldStandard::new());
        assert_eq!((q.tp, q.fp, q.fn_), (0, 2, 0));
        assert_eq!(q.precision(), 0.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 0.0);
    }

    #[test]
    fn duplicate_correspondences_count_per_row() {
        // Mapping operators dedup `(a, b)` pairs, but `evaluate` itself
        // counts *rows*: a table holding duplicates (built with raw
        // `push`, bypassing `dedup_max`) counts each duplicate as its
        // own TP/FP. Pinned so nobody starts depending on implicit
        // dedup inside the metric.
        let mut table = MappingTable::new();
        table.push(0, 0, 1.0); // gold pair…
        table.push(0, 0, 0.9); // …duplicated
        table.push(9, 9, 1.0); // non-gold pair…
        table.push(9, 9, 1.0); // …duplicated
        let m = Mapping::same("dup", LdsId(0), LdsId(1), table);
        let q = MatchQuality::evaluate(&m, &gold());
        assert_eq!((q.tp, q.fp, q.fn_), (2, 2, 2));
        assert_eq!(q.precision(), 0.5);
        // Duplicate TPs even push recall above what distinct pairs give:
        // 2 / (2 + 2) vs the distinct-pair 1 / 4.
        assert_eq!(q.recall(), 0.5);
    }

    #[test]
    fn perfect_match_f1_is_exactly_one() {
        // Bit-exact 1.0, not merely within epsilon: 2·1·1/(1+1) has an
        // exact binary representation end to end.
        let q = MatchQuality::evaluate(&mapping(&[(0, 0), (1, 1), (2, 2), (3, 3)]), &gold());
        assert_eq!(q.precision().to_bits(), 1.0f64.to_bits());
        assert_eq!(q.recall().to_bits(), 1.0f64.to_bits());
        assert_eq!(q.f1().to_bits(), 1.0f64.to_bits());
        let (p, r, f) = q.as_percentages();
        assert_eq!((p, r, f), (100.0, 100.0, 100.0));
    }

    #[test]
    fn empty_mapping_and_empty_gold_corner_cases() {
        // Empty vs non-empty gold: all misses.
        let q = MatchQuality::evaluate(&mapping(&[]), &gold());
        assert_eq!((q.tp, q.fp, q.fn_), (0, 0, 4));
        assert_eq!(q.precision(), 0.0);
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.f1(), 0.0);
        // Empty vs empty: vacuously perfect, F1 included.
        let q = MatchQuality::evaluate(&mapping(&[]), &GoldStandard::new());
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
        // Domain-subset evaluation inherits all of the above.
        let q = MatchQuality::evaluate_domain_subset(&mapping(&[]), &GoldStandard::new(), |_| true);
        assert_eq!(q.f1(), 1.0);
        let q = MatchQuality::evaluate_domain_subset(&mapping(&[(0, 0)]), &gold(), |_| false);
        assert_eq!((q.tp, q.fp, q.fn_), (0, 0, 0));
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn domain_subset_breakdown() {
        // Domains < 2 are "conferences".
        let m = mapping(&[(0, 0), (1, 9), (2, 2), (3, 9)]);
        let conf = MatchQuality::evaluate_domain_subset(&m, &gold(), |d| d < 2);
        assert_eq!(conf.tp, 1);
        assert_eq!(conf.fp, 1);
        assert_eq!(conf.fn_, 1);
        let journal = MatchQuality::evaluate_domain_subset(&m, &gold(), |d| d >= 2);
        assert_eq!(journal.tp, 1);
        assert_eq!(journal.fp, 1);
        assert_eq!(journal.fn_, 1);
    }

    #[test]
    fn display_and_percentages() {
        let q = MatchQuality {
            tp: 1,
            fp: 1,
            fn_: 0,
        };
        let (p, r, f) = q.as_percentages();
        assert_eq!(p, 50.0);
        assert_eq!(r, 100.0);
        assert!((f - 200.0 / 3.0).abs() < 1e-9);
        assert!(q.to_string().contains("P=50.0%"));
    }
}
