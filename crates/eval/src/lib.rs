//! # moma-eval — reproduction harness for the MOMA evaluation
//!
//! One module per table and figure of the paper (Thor & Rahm, CIDR 2007,
//! Section 5). Each experiment takes an [`EvalContext`] (a generated
//! scenario plus cached intermediate mappings) and returns a [`Report`]
//! that prints the same rows the paper reports; EXPERIMENTS.md records
//! paper-vs-measured values.
//!
//! Run everything via the `repro` binary in `moma-bench`:
//!
//! ```text
//! cargo run --release -p moma-bench --bin repro -- all
//! cargo run --release -p moma-bench --bin repro -- table4
//! cargo run --release -p moma-bench --bin repro -- fig6
//! ```

pub mod experiments;
pub mod figures;
pub mod metrics;
pub mod report;
pub mod setup;

pub use metrics::MatchQuality;
pub use report::Report;
pub use setup::EvalContext;
