//! Table 2: matching DBLP-ACM publications with attribute matchers.
//!
//! Paper values (P/R/F): Title 86.7/97.7/91.9, Author 38.0/87.9/53.1,
//! Year 0.4/100/0.8, Merge 97.3/93.9/95.5. The shape to reproduce: the
//! title matcher dominates but is imperfect (conference/journal twins,
//! recurring newsletter titles); year matching alone is hopeless
//! (precision ≈ 0 at perfect recall); merging with Avg and an 80%
//! threshold lifts precision above the title matcher at a small recall
//! cost.

use std::sync::Arc;

use moma_core::ops::merge::{merge, MergeFn, MissingPolicy};
use moma_core::ops::select::{select, Selection};
use moma_core::Mapping;

use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// The Table 2 merged mapping: Avg with missing-as-zero over permissive
/// title / author / year matchers, then an 80% threshold.
pub fn merged_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table2.merge", || {
        let title = ctx.pub_title_low_dblp_acm();
        let author = ctx.pub_author_low_dblp_acm();
        let year = ctx.pub_year_dblp_acm();
        let merged =
            merge(&[&title, &author, &year], MergeFn::Avg, MissingPolicy::Zero).expect("merge");
        select(&merged, &Selection::Threshold(0.8))
    })
}

/// Run the Table 2 experiment.
pub fn run(ctx: &EvalContext) -> Report {
    let gold = &ctx.scenario.gold.pub_dblp_acm;
    let title = MatchQuality::evaluate(&ctx.pub_title_dblp_acm(), gold);
    let author = MatchQuality::evaluate(&ctx.pub_author_dblp_acm(), gold);
    let year = MatchQuality::evaluate(&ctx.pub_year_dblp_acm(), gold);
    let merged = MatchQuality::evaluate(&merged_mapping(ctx), gold);

    let mut r = Report::new(
        "Table 2. Matching DBLP-ACM publications using attribute matchers",
        vec!["Metric", "Title", "Author", "Year", "Merge"],
    );
    for (label, pick) in [("Precision", 0usize), ("Recall", 1), ("F-Measure", 2)] {
        let cell = |q: &MatchQuality| {
            let (p, rc, f) = q.as_percentages();
            Report::pct([p, rc, f][pick])
        };
        r.row(
            label,
            vec![cell(&title), cell(&author), cell(&year), cell(&merged)],
        );
    }
    r.note("paper: Title 86.7/97.7/91.9, Author 38.0/87.9/53.1, Year 0.4/100/0.8, Merge 97.3/93.9/95.5");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let f = |col: &str| r.cell_pct("F-Measure", col).unwrap();
        let p = |col: &str| r.cell_pct("Precision", col).unwrap();
        let rec = |col: &str| r.cell_pct("Recall", col).unwrap();
        // Title dominates author and year.
        assert!(
            f("Title") > f("Author"),
            "title {} vs author {}",
            f("Title"),
            f("Author")
        );
        assert!(f("Title") > f("Year"));
        // Year: near-perfect recall (a few ACM records carry off-by-one
        // print years), near-zero precision.
        assert!(rec("Year") > 88.0);
        assert!(p("Year") < 15.0);
        // Merge improves precision over the title matcher.
        assert!(
            p("Merge") > p("Title"),
            "merge P {} vs title P {}",
            p("Merge"),
            p("Title")
        );
        // Merge F at least on par with title.
        assert!(f("Merge") + 2.0 >= f("Title"));
    }
}
