//! Table 4: matching DBLP-ACM venues with the 1:n neighborhood matcher.
//!
//! Reconstructed paper values (columns: Threshold 80% / 50% / Best-1):
//!
//! | Group       |      | 80%   | 50%   | Best-1 |
//! |-------------|------|-------|-------|--------|
//! | Conferences | P    | 100   | 100   | 94.7   |
//! |             | R    | 100   | 100   | 100    |
//! |             | F    | 100   | 100   | 97.3   |
//! | Journals    | P    | 100   | 99.0  | 98.2   |
//! |             | R    | 62.7  | 86.4  | 100    |
//! |             | F    | 77.1  | 92.2  | 99.1   |
//! | Overall     | F    | 80.9  | 93.4  | 98.8   |
//!
//! Shape: conferences (large neighborhoods) are matched perfectly by
//! thresholds but Best-1 pays for the missing VLDB 2002/2003 in ACM;
//! journals (small neighborhoods, 2–26 papers) lose recall at strict
//! thresholds and need the permissive Best-1.

use moma_core::ops::select::{select, Selection};

use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// Run the Table 4 experiment.
pub fn run(ctx: &EvalContext) -> Report {
    let nh = ctx.venue_nh_dblp_acm();
    let gold = &ctx.scenario.gold.venue_dblp_acm;
    let is_conf = &ctx.scenario.dblp_venue_is_conf;

    let selections = [
        ("80%", Selection::Threshold(0.8)),
        ("50%", Selection::Threshold(0.5)),
        ("Best-1", Selection::best1()),
    ];

    let mut results: Vec<(MatchQuality, MatchQuality, MatchQuality)> = Vec::new();
    for (_, sel) in &selections {
        let mapping = select(&nh, sel);
        let conf = MatchQuality::evaluate_domain_subset(&mapping, gold, |d| is_conf[d as usize]);
        let journal =
            MatchQuality::evaluate_domain_subset(&mapping, gold, |d| !is_conf[d as usize]);
        let overall = MatchQuality::evaluate(&mapping, gold);
        results.push((conf, journal, overall));
    }

    let mut r = Report::new(
        "Table 4. Matching DBLP-ACM venues using neighborhood matcher (1:n)",
        vec!["Selection", "80%", "50%", "Best-1"],
    );
    let cells = |pick: fn(&MatchQuality) -> f64, which: usize| -> Vec<String> {
        results
            .iter()
            .map(|(c, j, o)| Report::pct(pick([c, j, o][which]) * 100.0))
            .collect()
    };
    r.row("Conferences P", cells(MatchQuality::precision, 0));
    r.row("Conferences R", cells(MatchQuality::recall, 0));
    r.row("Conferences F", cells(MatchQuality::f1, 0));
    r.row("Journals P", cells(MatchQuality::precision, 1));
    r.row("Journals R", cells(MatchQuality::recall, 1));
    r.row("Journals F", cells(MatchQuality::f1, 1));
    r.row("Overall F", cells(MatchQuality::f1, 2));
    r.note("paper: Conf F 100/100/97.3, Journal F 77.1/92.2/99.1, Overall F 80.9/93.4/98.8");
    r.note("Best-1 pays precision for the VLDB 2002/2003 venues missing in ACM");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let cell = |row: &str, col: &str| r.cell_pct(row, col).unwrap();
        // Conferences match perfectly at the strict threshold.
        assert_eq!(cell("Conferences F", "80%"), 100.0);
        assert_eq!(cell("Conferences R", "Best-1"), 100.0);
        // Best-1 never beats the strict threshold on conference
        // precision: the VLDB 2002/2003 venues missing from ACM can only
        // contribute false positives under forced selection (at paper
        // scale they do — Best-1 conference precision 94.7% in Table 4).
        assert!(cell("Conferences P", "Best-1") <= cell("Conferences P", "80%"));
        // Journals: recall grows monotonically toward Best-1.
        assert!(cell("Journals R", "80%") <= cell("Journals R", "50%"));
        assert!(cell("Journals R", "50%") <= cell("Journals R", "Best-1"));
        // Conference precision never improves with permissiveness: the
        // dropped VLDB venues can only add false positives.
        assert!(cell("Conferences P", "50%") <= cell("Conferences P", "80%"));
        // Every selection keeps overall quality high; at paper scale the
        // progression is 77.5 -> 82.0 -> 99.2 (paper: 80.9/93.4/98.8).
        assert!(cell("Overall F", "Best-1") > 90.0);
    }
}
