//! Table 3: matching publications via different compose paths.
//!
//! Paper values (F-measure):
//!
//! | Matcher  | DBLP-GS (via ACM) | DBLP-ACM (via GS) | GS-ACM (via DBLP) |
//! |----------|-------------------|-------------------|-------------------|
//! | Direct   | 81.3              | 91.9              | 35.3              |
//! | Compose  | 33.9              | 63.7              | 83.9              |
//! | Merge    | 81.3              | 91.6              | 83.7              |
//!
//! Shape: the native GS→ACM links are poor (recall 21.6% in the paper);
//! composing via the clean hub DBLP beats them decisively; composing
//! through GS or the GS-ACM links degrades; merging direct and composed
//! retains the better alternative per pair.

use std::sync::Arc;

use moma_core::ops::compose::{compose, PathAgg, PathCombine};
use moma_core::ops::merge::{merge, MergeFn, MissingPolicy};
use moma_core::Mapping;

use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// Direct, composed and merged mappings for the three source pairs.
pub struct Table3Mappings {
    /// Direct DBLP→GS (title matcher).
    pub direct_dg: Arc<Mapping>,
    /// Direct DBLP→ACM (title matcher).
    pub direct_da: Arc<Mapping>,
    /// Direct GS→ACM (the native GS links).
    pub direct_ga: Arc<Mapping>,
    /// DBLP→GS composed via ACM.
    pub compose_dg: Mapping,
    /// DBLP→ACM composed via GS.
    pub compose_da: Mapping,
    /// GS→ACM composed via DBLP.
    pub compose_ga: Mapping,
    /// Merged (direct ∪ composed, Max).
    pub merge_dg: Mapping,
    /// Merged DBLP→ACM.
    pub merge_da: Mapping,
    /// Merged GS→ACM.
    pub merge_ga: Mapping,
}

/// Build all nine mappings.
pub fn mappings(ctx: &EvalContext) -> Table3Mappings {
    let direct_dg = ctx.pub_title_dblp_gs();
    let direct_da = ctx.pub_title_dblp_acm();
    let direct_ga = ctx.scenario.repository.get("GS.LinksACM").expect("links");

    let (f, g) = (PathCombine::Min, PathAgg::Max);
    // DBLP -> ACM -> GS (inverse of the native links).
    let compose_dg = compose(&direct_da, &direct_ga.inverse(), f, g).expect("compose dg");
    // DBLP -> GS -> ACM.
    let compose_da = compose(&direct_dg, &direct_ga, f, g).expect("compose da");
    // GS -> DBLP -> ACM via the hub.
    let compose_ga = compose(&direct_dg.inverse(), &direct_da, f, g).expect("compose ga");

    let m = |a: &Mapping, b: &Mapping| {
        merge(&[a, b], MergeFn::Max, MissingPolicy::Ignore).expect("merge")
    };
    let merge_dg = m(&direct_dg, &compose_dg);
    let merge_da = m(&direct_da, &compose_da);
    let merge_ga = m(&direct_ga, &compose_ga);
    Table3Mappings {
        direct_dg,
        direct_da,
        direct_ga,
        compose_dg,
        compose_da,
        compose_ga,
        merge_dg,
        merge_da,
        merge_ga,
    }
}

/// Run the Table 3 experiment.
pub fn run(ctx: &EvalContext) -> Report {
    let m = mappings(ctx);
    let gold = &ctx.scenario.gold;
    let f = |mapping: &Mapping, gold: &moma_datagen::GoldStandard| {
        Report::pct(MatchQuality::evaluate(mapping, gold).f1() * 100.0)
    };
    let mut r = Report::new(
        "Table 3. Matching publications via different compose paths (F-Measure)",
        vec![
            "Matcher",
            "DBLP-GS (via ACM)",
            "DBLP-ACM (via GS)",
            "GS-ACM (via DBLP)",
        ],
    );
    r.row(
        "Direct",
        vec![
            f(&m.direct_dg, &gold.pub_dblp_gs),
            f(&m.direct_da, &gold.pub_dblp_acm),
            f(&m.direct_ga, &gold.pub_gs_acm),
        ],
    );
    r.row(
        "Compose",
        vec![
            f(&m.compose_dg, &gold.pub_dblp_gs),
            f(&m.compose_da, &gold.pub_dblp_acm),
            f(&m.compose_ga, &gold.pub_gs_acm),
        ],
    );
    r.row(
        "Merge",
        vec![
            f(&m.merge_dg, &gold.pub_dblp_gs),
            f(&m.merge_da, &gold.pub_dblp_acm),
            f(&m.merge_ga, &gold.pub_gs_acm),
        ],
    );
    let links_q = MatchQuality::evaluate(&m.direct_ga, &gold.pub_gs_acm);
    r.note(format!(
        "native GS-ACM links: recall {:.1}% (paper: 21.6%)",
        links_q.recall() * 100.0
    ));
    r.note("paper F: Direct 81.3/91.9/35.3, Compose 33.9/63.7/83.9, Merge 81.3/91.6/83.7");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let cell = |row: &str, col: &str| r.cell_pct(row, col).unwrap();
        // Native GS-ACM links are poor; composing via DBLP is far better.
        assert!(
            cell("Compose", "GS-ACM (via DBLP)") > cell("Direct", "GS-ACM (via DBLP)") + 15.0,
            "compose {} direct {}",
            cell("Compose", "GS-ACM (via DBLP)"),
            cell("Direct", "GS-ACM (via DBLP)")
        );
        // Composing through the poor GS-ACM mapping degrades vs direct.
        assert!(cell("Compose", "DBLP-ACM (via GS)") < cell("Direct", "DBLP-ACM (via GS)"));
        assert!(cell("Compose", "DBLP-GS (via ACM)") < cell("Direct", "DBLP-GS (via ACM)"));
        // Merge roughly retains the best alternative per pair.
        for col in [
            "DBLP-GS (via ACM)",
            "DBLP-ACM (via GS)",
            "GS-ACM (via DBLP)",
        ] {
            let best = cell("Direct", col).max(cell("Compose", col));
            assert!(
                cell("Merge", col) >= best - 6.0,
                "{col}: merge {} vs best {best}",
                cell("Merge", col)
            );
        }
    }
}
