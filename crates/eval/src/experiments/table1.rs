//! Table 1: number of instances for the considered data sources.
//!
//! Paper values: DBLP 130 venues / 2,616 publications / 3,319 authors;
//! ACM DL 128 / 2,294 / 3,547; Google Scholar — / 64,263 / (81,296).

use crate::report::Report;
use crate::setup::EvalContext;

/// Count instances per source and object type.
pub fn run(ctx: &EvalContext) -> Report {
    let reg = &ctx.scenario.registry;
    let ids = ctx.scenario.ids;
    let mut r = Report::new(
        "Table 1. Number of instances for the considered data sources",
        vec!["Source", "Venues", "Publications", "Authors"],
    );
    r.row(
        "DBLP",
        vec![
            reg.lds(ids.venue_dblp).len().to_string(),
            reg.lds(ids.pub_dblp).len().to_string(),
            reg.lds(ids.author_dblp).len().to_string(),
        ],
    );
    r.row(
        "ACM DL",
        vec![
            reg.lds(ids.venue_acm).len().to_string(),
            reg.lds(ids.pub_acm).len().to_string(),
            reg.lds(ids.author_acm).len().to_string(),
        ],
    );
    r.row(
        "Google Scholar",
        vec![
            "-".into(),
            reg.lds(ids.pub_gs).len().to_string(),
            format!("({})", reg.lds(ids.author_gs).len()),
        ],
    );
    r.note("paper: DBLP 130/2616/3319, ACM 128/2294/3547, GS -/64263/(81296)");
    r.note("GS authors parenthesized: author *name strings*, not resolved entities");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        assert_eq!(r.rows.len(), 3);
        let dblp_venues: usize = r.cell("DBLP", "Venues").unwrap().parse().unwrap();
        let acm_venues: usize = r.cell("ACM DL", "Venues").unwrap().parse().unwrap();
        // ACM misses VLDB 2002/2003.
        assert_eq!(acm_venues, dblp_venues - 2);
        let dblp_pubs: usize = r.cell("DBLP", "Publications").unwrap().parse().unwrap();
        let acm_pubs: usize = r.cell("ACM DL", "Publications").unwrap().parse().unwrap();
        let gs_pubs: usize = r
            .cell("Google Scholar", "Publications")
            .unwrap()
            .parse()
            .unwrap();
        assert!(acm_pubs < dblp_pubs);
        assert!(
            gs_pubs > dblp_pubs,
            "GS must dwarf DBLP (duplicates + noise)"
        );
        // ACM splits author identities: more authors despite fewer pubs.
        let dblp_auth: usize = r.cell("DBLP", "Authors").unwrap().parse().unwrap();
        let acm_auth: usize = r.cell("ACM DL", "Authors").unwrap().parse().unwrap();
        assert!(acm_auth > dblp_auth);
    }
}
