//! Table 8: matching GS-ACM publications with the n:m author
//! neighborhood matcher.
//!
//! Paper values (P/R/F): Attribute(Title) 86.7/81.7/84.1,
//! Neighborhood(Author) 16.2/75.6/26.7, Merge 84.6/92.1/88.2.
//! Same mechanism as Table 7 for the second dirty pair.

use std::sync::Arc;

use moma_core::matchers::neighborhood::nh_match;
use moma_core::ops::compose::PathAgg;
use moma_core::ops::select::{select, Selection};
use moma_core::ops::setops::{intersection, union};
use moma_core::Mapping;

use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// Raw author-neighborhood mapping GS→ACM (`g = RelativeLeft`: the GS
/// side's truncated author lists sit on the left here).
pub fn nh_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table8.nh", || {
        let repo = &ctx.scenario.repository;
        let asso1 = repo.get("GS.PubAuthor").expect("assoc");
        let asso2 = repo.get("ACM.AuthorPub").expect("assoc");
        let author_same = ctx.author_same_gs_acm();
        nh_match(&asso1, &author_same, &asso2, PathAgg::RelativeLeft).expect("nh")
    })
}

/// The Table 8 merged mapping (same recipe as Table 7).
pub fn merged_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table8.merge", || {
        let title = ctx.pub_title_gs_acm();
        let title_low = ctx.pub_title_low_gs_acm();
        let nh = select(&nh_mapping(ctx), &Selection::Threshold(0.4));
        let confirmed = intersection(&title_low, &nh).expect("intersection");
        union(&title, &confirmed).expect("union")
    })
}

/// Run the Table 8 experiment.
pub fn run(ctx: &EvalContext) -> Report {
    let gold = &ctx.scenario.gold.pub_gs_acm;
    let attr = MatchQuality::evaluate(&ctx.pub_title_gs_acm(), gold);
    let nh_alone = select(&nh_mapping(ctx), &Selection::Threshold(0.35));
    let nh = MatchQuality::evaluate(&nh_alone, gold);
    let merged = MatchQuality::evaluate(&merged_mapping(ctx), gold);

    let mut r = Report::new(
        "Table 8. Matching GS-ACM publications using neighborhood matcher (n:m author)",
        vec![
            "Metric",
            "Attribute (Title)",
            "Neighborhood (Author)",
            "Merge",
        ],
    );
    for (label, pick) in [("Precision", 0usize), ("Recall", 1), ("F-Measure", 2)] {
        let cell = |q: &MatchQuality| {
            let v = q.as_percentages();
            Report::pct([v.0, v.1, v.2][pick])
        };
        r.row(label, vec![cell(&attr), cell(&nh), cell(&merged)]);
    }
    r.note("paper: Attr 86.7/81.7/84.1, NH 16.2/75.6/26.7, Merge 84.6/92.1/88.2 (P/R/F)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_shape() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let cell = |row: &str, col: &str| r.cell_pct(row, col).unwrap();
        assert!(cell("F-Measure", "Attribute (Title)") < 97.0);
        assert!(
            cell("Recall", "Merge") > cell("Recall", "Attribute (Title)") + 2.0,
            "merge R {} vs attr R {}",
            cell("Recall", "Merge"),
            cell("Recall", "Attribute (Title)")
        );
        assert!(cell("Precision", "Merge") + 10.0 >= cell("Precision", "Attribute (Title)"));
        assert!(cell("F-Measure", "Merge") > cell("F-Measure", "Attribute (Title)"));
        assert!(cell("F-Measure", "Merge") > cell("F-Measure", "Neighborhood (Author)"));
    }
}
