//! Table 7: matching DBLP-GS publications with the n:m author
//! neighborhood matcher.
//!
//! Paper values (P/R/F): Attribute(Title) 81.1/81.6/81.3,
//! Neighborhood(Author) 15.2/76.0/25.4, Merge 85.1/92.9/88.9.
//!
//! Shape: Google Scholar's extraction-noisy titles cap plain title
//! matching around 81%; the author neighborhood (with RelativeLeft,
//! because GS author lists are truncated) recovers noisy-title entries,
//! lifting recall substantially while precision holds.

use std::sync::Arc;

use moma_core::matchers::neighborhood::nh_match;
use moma_core::ops::compose::PathAgg;
use moma_core::ops::select::{select, Selection};
use moma_core::ops::setops::{intersection, union};
use moma_core::Mapping;

use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// Raw author-neighborhood mapping DBLP→GS with `g = RelativeLeft`
/// (robust against missing GS authors, paper Section 5.4.3).
pub fn nh_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table7.nh", || {
        let repo = &ctx.scenario.repository;
        let asso1 = repo.get("DBLP.PubAuthor").expect("assoc");
        let asso2 = repo.get("GS.AuthorPub").expect("assoc");
        let author_same = ctx.author_same_dblp_gs();
        nh_match(&asso1, &author_same, &asso2, PathAgg::RelativeLeft).expect("nh")
    })
}

/// The Table 7 merged mapping: the strict title mapping united with
/// permissive-title pairs that the author neighborhood confirms.
pub fn merged_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table7.merge", || {
        let title = ctx.pub_title_dblp_gs();
        let title_low = ctx.pub_title_low_dblp_gs();
        let nh = select(&nh_mapping(ctx), &Selection::Threshold(0.4));
        let confirmed = intersection(&title_low, &nh).expect("intersection");
        union(&title, &confirmed).expect("union")
    })
}

/// Run the Table 7 experiment.
pub fn run(ctx: &EvalContext) -> Report {
    let gold = &ctx.scenario.gold.pub_dblp_gs;
    let attr = MatchQuality::evaluate(&ctx.pub_title_dblp_gs(), gold);
    let nh_alone = select(&nh_mapping(ctx), &Selection::Threshold(0.35));
    let nh = MatchQuality::evaluate(&nh_alone, gold);
    let merged = MatchQuality::evaluate(&merged_mapping(ctx), gold);

    let mut r = Report::new(
        "Table 7. Matching DBLP-GS publications using neighborhood matcher (n:m author)",
        vec![
            "Metric",
            "Attribute (Title)",
            "Neighborhood (Author)",
            "Merge",
        ],
    );
    for (label, pick) in [("Precision", 0usize), ("Recall", 1), ("F-Measure", 2)] {
        let cell = |q: &MatchQuality| {
            let v = q.as_percentages();
            Report::pct([v.0, v.1, v.2][pick])
        };
        r.row(label, vec![cell(&attr), cell(&nh), cell(&merged)]);
    }
    r.note("paper: Attr 81.1/81.6/81.3, NH 15.2/76.0/25.4, Merge 85.1/92.9/88.9 (P/R/F)");
    r.note("RelativeLeft used because GS author lists are incomplete");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_shape() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let cell = |row: &str, col: &str| r.cell_pct(row, col).unwrap();
        // Dirty GS titles keep attribute-only matching well below the
        // DBLP-ACM level.
        assert!(cell("F-Measure", "Attribute (Title)") < 97.0);
        // Neighborhood alone is weak on F (precision-poor).
        assert!(
            cell("Precision", "Neighborhood (Author)") < cell("Precision", "Attribute (Title)")
        );
        // Merge: the paper's signature — recall rises markedly...
        assert!(
            cell("Recall", "Merge") > cell("Recall", "Attribute (Title)") + 3.0,
            "merge R {} vs attr R {}",
            cell("Recall", "Merge"),
            cell("Recall", "Attribute (Title)")
        );
        // ...while precision stays in the same region.
        assert!(cell("Precision", "Merge") + 8.0 >= cell("Precision", "Attribute (Title)"));
        assert!(cell("F-Measure", "Merge") > cell("F-Measure", "Attribute (Title)"));
    }
}
