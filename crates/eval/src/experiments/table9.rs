//! Table 9: top duplicate-author candidates within DBLP.
//!
//! The paper ranks candidate pairs by the Avg-merge of (a) the co-author
//! neighborhood similarity and (b) trigram name similarity, using the
//! Section 4.3 script. We execute that very script through the iFuice
//! interpreter and report the top candidates with their component
//! similarities and shared co-author counts, checking them against the
//! injected gold duplicates.

use moma_core::Mapping;
use moma_ifuice::script::run_script;
use moma_table::{Adjacency, FxHashSet};

use crate::report::Report;
use crate::setup::EvalContext;

/// The Section 4.3 duplicate-detection script, verbatim in structure
/// (with `Zero` missing-handling so that a candidate needs support from
/// *both* evidence sources to rank highly, and `store` calls exposing the
/// component mappings for the report's Name / Co-Author columns).
pub const SCRIPT: &str = r#"
$CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);
$NameSim = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]");
store($CoAuthSim, "table9.coauth");
store($NameSim, "table9.name");
$Merged = merge($CoAuthSim, $NameSim, Average, Zero);
$Result = select($Merged, "[domain.id]<>[range.id]");
RETURN $Result;
"#;

/// One ranked duplicate candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// First author name.
    pub author_a: String,
    /// Second author name.
    pub author_b: String,
    /// Trigram name similarity.
    pub name_sim: f64,
    /// Co-author neighborhood similarity.
    pub coauthor_sim: f64,
    /// Number of shared co-authors (compose paths).
    pub shared_coauthors: usize,
    /// Merged similarity (ranking key).
    pub merged: f64,
    /// Whether the pair is a true injected duplicate.
    pub is_true_duplicate: bool,
}

/// Run the script and rank the top `k` candidates.
pub fn top_candidates(ctx: &EvalContext, k: usize) -> Vec<Candidate> {
    let result =
        run_script(SCRIPT, &ctx.scenario.registry, &ctx.scenario.repository).expect("script runs");
    let merged: &Mapping = result.as_mapping().expect("mapping result");
    let coauth_sim = ctx
        .scenario
        .repository
        .get("table9.coauth")
        .expect("stored");
    let name_sim_map = ctx.scenario.repository.get("table9.name").expect("stored");

    let coauthor = ctx.scenario.repository.get("DBLP.CoAuthor").expect("assoc");
    let adj = Adjacency::over_domain(&coauthor.table);
    let lds = ctx.scenario.registry.lds(ctx.scenario.ids.author_dblp);
    let gold = &ctx.scenario.gold.author_dup_dblp;

    let name_of = |i: u32| -> String {
        lds.get(i)
            .and_then(|inst| inst.value(0))
            .map(|v| v.to_match_string())
            .unwrap_or_default()
    };

    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut rows: Vec<(f64, u32, u32)> = Vec::new();
    for c in merged.table.iter() {
        let key = (c.domain.min(c.range), c.domain.max(c.range));
        if seen.insert(key) {
            rows.push((c.sim, key.0, key.1));
        }
    }
    rows.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then((a.1, a.2).cmp(&(b.1, b.2)))
    });

    rows.into_iter()
        .take(k)
        .map(|(merged_sim, a, b)| {
            let shared: usize = {
                let na: FxHashSet<u32> = adj.neighbors(a).iter().map(|(o, _)| *o).collect();
                adj.neighbors(b)
                    .iter()
                    .filter(|(o, _)| na.contains(o))
                    .count()
            };
            let name_sim = name_sim_map
                .table
                .sim_of(a, b)
                .unwrap_or_else(|| moma_simstring::ngram::trigram(&name_of(a), &name_of(b)));
            let coauthor_sim = coauth_sim.table.sim_of(a, b).unwrap_or(0.0);
            Candidate {
                author_a: name_of(a),
                author_b: name_of(b),
                name_sim,
                coauthor_sim,
                shared_coauthors: shared,
                merged: merged_sim,
                is_true_duplicate: gold.contains(a, b),
            }
        })
        .collect()
}

/// Run the Table 9 experiment.
pub fn run(ctx: &EvalContext) -> Report {
    let k = 5;
    let candidates = top_candidates(ctx, k);
    let mut r = Report::new(
        "Table 9. Top-5 author duplicate candidates within DBLP",
        vec![
            "Author / Author",
            "Name",
            "Co-Author (paths)",
            "Merge",
            "True dup?",
        ],
    );
    let mut hits = 0usize;
    for c in &candidates {
        if c.is_true_duplicate {
            hits += 1;
        }
        r.row(
            format!("{} / {}", c.author_a, c.author_b),
            vec![
                Report::pct(c.name_sim * 100.0),
                format!(
                    "{} ({})",
                    Report::pct(c.coauthor_sim * 100.0),
                    c.shared_coauthors
                ),
                Report::pct(c.merged * 100.0),
                if c.is_true_duplicate {
                    "yes".into()
                } else {
                    "no".into()
                },
            ],
        );
    }
    r.note(format!(
        "{hits}/{k} top candidates are injected gold duplicates"
    ));
    r.note("paper top-5: Fan/Wei 64/100/82, Zarkesh 84/75/79, Barczyk 75/73/74, Trigoni 75/67/71, Yuen 62/67/65");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_surfaces_true_duplicates() {
        let ctx = EvalContext::small();
        let candidates = top_candidates(&ctx, 5);
        assert_eq!(candidates.len(), 5);
        let hits = candidates.iter().filter(|c| c.is_true_duplicate).count();
        assert!(
            hits >= 3,
            "only {hits}/5 top candidates are true duplicates"
        );
        // Ranking is by merged similarity, descending.
        for w in candidates.windows(2) {
            assert!(w[0].merged >= w[1].merged);
        }
        // Components are sane.
        for c in &candidates {
            assert!((0.0..=1.0).contains(&c.name_sim));
            assert!((0.0..=1.0).contains(&c.coauthor_sim));
            assert_ne!(c.author_a, c.author_b);
        }
    }

    #[test]
    fn report_renders() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        assert_eq!(r.rows.len(), 5);
        assert!(r.render().contains("Co-Author"));
    }
}
