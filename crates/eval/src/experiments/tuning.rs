//! Self-tuning ablation (paper Section 2.2).
//!
//! Compares, on the DBLP-ACM publication task:
//! 1. the hand-picked paper configuration (title trigram ≥ 0.8),
//! 2. the grid-searched single-feature configuration,
//! 3. a CART decision tree over multi-feature similarity vectors.
//!
//! Training data comes from half of the gold standard; all three are
//! evaluated on the held-out half.

use moma_simstring::SimFn;
use moma_tune::{
    build_dataset, candidate_pairs, train_test_split, DecisionTree, FeatureSpec, GridSearch,
    TreeConfig,
};

use crate::report::Report;
use crate::setup::EvalContext;

/// Feature space offered to the tuner.
fn specs() -> Vec<FeatureSpec> {
    vec![
        FeatureSpec::new("title", "title", SimFn::Trigram),
        FeatureSpec::new("title", "title", SimFn::TokenJaccard),
        FeatureSpec::new("authors", "authors", SimFn::Trigram),
        FeatureSpec::new("year", "year", SimFn::Year(0)),
    ]
}

/// Human-readable feature names aligned with the tuner feature space.
pub const FEATURE_NAMES: [&str; 4] = ["title:trigram", "title:jaccard", "authors:trigram", "year"];

/// Run the tuning ablation.
pub fn run(ctx: &EvalContext) -> Report {
    let scenario = &ctx.scenario;
    let (d, r) = (scenario.ids.pub_dblp, scenario.ids.pub_acm);
    let gold = &scenario.gold.pub_dblp_acm;

    let mut candidates = candidate_pairs(&scenario.registry, d, r, "title", gold);
    // The permissive blocking floor yields millions of candidates at
    // paper scale; training needs a sample, not the population. Keep all
    // gold positives plus a deterministic stride of negatives (~40k).
    const MAX_NEGATIVES: usize = 40_000;
    let negatives = candidates
        .iter()
        .filter(|&&(a, b)| !gold.contains(a, b))
        .count();
    if negatives > MAX_NEGATIVES {
        let stride = negatives.div_ceil(MAX_NEGATIVES);
        let mut kept = Vec::with_capacity(MAX_NEGATIVES + gold.len());
        let mut i = 0usize;
        for &(a, b) in &candidates {
            if gold.contains(a, b) {
                kept.push((a, b));
            } else {
                if i.is_multiple_of(stride) {
                    kept.push((a, b));
                }
                i += 1;
            }
        }
        candidates = kept;
    }
    let data = build_dataset(&scenario.registry, d, r, &specs(), &candidates, gold);
    let (train, test) = train_test_split(data, 0.5, scenario.world.config.seed);

    // 1. Paper default: title trigram >= 0.8 (feature 0).
    let default_f1 = moma_tune::dataset::f1_of(&test, |p| p.features[0] >= 0.8);
    // 2. Grid search.
    let grid = GridSearch::default().search(&train, &test).expect("data");
    // 3. Decision tree.
    let tree = DecisionTree::fit(&train, TreeConfig::default());
    let tree_f1 = moma_tune::dataset::f1_of(&test, |p| tree.classify(&p.features));

    let mut report = Report::new(
        "Self-tuning ablation: DBLP-ACM publications (held-out F-measure)",
        vec!["Configuration", "Test F", "Detail"],
    );
    report.row(
        "Hand-picked (paper)",
        vec![
            Report::pct(default_f1 * 100.0),
            "title:trigram >= 0.80".into(),
        ],
    );
    report.row(
        "Grid search",
        vec![
            Report::pct(grid.test_f1 * 100.0),
            format!("{} >= {:.2}", FEATURE_NAMES[grid.feature], grid.threshold),
        ],
    );
    report.row(
        "Decision tree",
        vec![
            Report::pct(tree_f1 * 100.0),
            format!("{} nodes, depth {}", tree.node_count(), tree.depth()),
        ],
    );
    report.note(format!(
        "training candidates: {} ({} positive)",
        train.len(),
        train.iter().filter(|p| p.label).count()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_never_loses_to_default() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let default = r.cell_pct("Hand-picked (paper)", "Test F").unwrap();
        let grid = r.cell_pct("Grid search", "Test F").unwrap();
        let tree = r.cell_pct("Decision tree", "Test F").unwrap();
        assert!(grid + 1e-9 >= default, "grid {grid} < default {default}");
        // The tree can combine features (title AND year) and should be at
        // least competitive.
        assert!(tree + 5.0 >= grid, "tree {tree} far below grid {grid}");
        assert!(tree > 50.0);
    }
}
