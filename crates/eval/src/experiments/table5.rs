//! Table 5: improving the DBLP-ACM publication same-mapping with the n:1
//! venue neighborhood matcher.
//!
//! Reconstructed paper values (columns Attribute(Title) /
//! Neighborhood(Venue) / Merge):
//!
//! | Group       |   | Attr  | NH    | Merge |
//! |-------------|---|-------|-------|-------|
//! | Journals    | P | 72.8  | 6.5   | 99.7  |
//! |             | R | 95.9  | 100   | 95.9  |
//! |             | F | 82.8  | 12.2  | 97.8  |
//! | Overall     | P | 96.7  | 1.2   | 99.2  |
//! |             | R | 99.8  | 100   | 98.8  |
//! |             | F | 91.9  | 3.36  | 98.6  |
//! | Conferences | F | 97.7  | 2.4   | 99.0  |
//!
//! Shape: the venue neighborhood alone has ~100% recall at a few percent
//! precision (it proposes all same-venue pairs); combining it with the
//! title matcher removes the recurring-title and conference/journal-twin
//! false positives, with the biggest gain on journals.

use std::sync::Arc;

use moma_core::matchers::neighborhood::nh_match;
use moma_core::ops::compose::PathAgg;
use moma_core::ops::setops::intersection;
use moma_core::Mapping;

use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// The raw n:1 venue neighborhood mapping over publications.
pub fn nh_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table5.nh", || {
        let repo = &ctx.scenario.repository;
        let asso1 = repo.get("DBLP.PubVenue").expect("assoc");
        let asso2 = repo.get("ACM.VenuePub").expect("assoc");
        let venue_same = ctx.venue_same_dblp_acm();
        nh_match(&asso1, &venue_same, &asso2, PathAgg::Relative).expect("nh")
    })
}

/// The Table 5 merged mapping: title matches restricted to pairs whose
/// venues match (a Min-style merge on the correspondence sets that keeps
/// the attribute similarities).
pub fn merged_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table5.merge", || {
        let title = ctx.pub_title_dblp_acm();
        let nh = nh_mapping(ctx);
        let mut result = intersection(&title, &nh).expect("intersection");
        // Intersection keeps min(sim) which is the tiny neighborhood
        // score; restore the informative attribute similarity.
        let rows: Vec<(u32, u32, f64)> = result
            .table
            .iter()
            .map(|c| {
                (
                    c.domain,
                    c.range,
                    title.table.sim_of(c.domain, c.range).unwrap_or(c.sim),
                )
            })
            .collect();
        result.table = moma_table::MappingTable::from_triples(rows);
        result
    })
}

/// Run the Table 5 experiment.
pub fn run(ctx: &EvalContext) -> Report {
    let gold = &ctx.scenario.gold.pub_dblp_acm;
    let is_conf = &ctx.scenario.dblp_pub_is_conf;
    let title = ctx.pub_title_dblp_acm();
    let nh = nh_mapping(ctx);
    let merged = merged_mapping(ctx);

    let eval3 = |m: &Mapping| {
        let conf = MatchQuality::evaluate_domain_subset(m, gold, |d| is_conf[d as usize]);
        let journal = MatchQuality::evaluate_domain_subset(m, gold, |d| !is_conf[d as usize]);
        let overall = MatchQuality::evaluate(m, gold);
        (conf, journal, overall)
    };
    let t = eval3(&title);
    let n = eval3(&nh);
    let m = eval3(&merged);

    let mut r = Report::new(
        "Table 5. Matching DBLP-ACM publications using neighborhood matcher (n:1 venue)",
        vec![
            "Metric",
            "Attribute (Title)",
            "Neighborhood (Venue)",
            "Merge",
        ],
    );
    let row = |label: &str, pick: fn(&MatchQuality) -> f64, which: usize| {
        (
            label.to_owned(),
            vec![
                Report::pct(pick([&t.0, &t.1, &t.2][which]) * 100.0),
                Report::pct(pick([&n.0, &n.1, &n.2][which]) * 100.0),
                Report::pct(pick([&m.0, &m.1, &m.2][which]) * 100.0),
            ],
        )
    };
    for (label, cells) in [
        row("Conference F", MatchQuality::f1, 0),
        row("Journal P", MatchQuality::precision, 1),
        row("Journal R", MatchQuality::recall, 1),
        row("Journal F", MatchQuality::f1, 1),
        row("Overall P", MatchQuality::precision, 2),
        row("Overall R", MatchQuality::recall, 2),
        row("Overall F", MatchQuality::f1, 2),
    ] {
        r.row(label, cells);
    }
    r.note("paper: Overall Attr 96.7/99.8/91.9*, NH 1.2/100/3.36, Merge 99.2/98.8/98.6 (P/R/F)");
    r.note("paper journal F: Attr 82.8 -> Merge 97.8; conference F: 97.7 -> 99.0");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let cell = |row: &str, col: &str| r.cell_pct(row, col).unwrap();
        // Neighborhood alone: ~full recall, tiny precision.
        assert!(cell("Overall R", "Neighborhood (Venue)") > 90.0);
        assert!(cell("Overall P", "Neighborhood (Venue)") < 30.0);
        // Merge beats the attribute matcher on precision.
        assert!(
            cell("Overall P", "Merge") > cell("Overall P", "Attribute (Title)"),
            "merge P {} vs attr P {}",
            cell("Overall P", "Merge"),
            cell("Overall P", "Attribute (Title)")
        );
        // ... at (almost) no recall cost.
        assert!(cell("Overall R", "Merge") + 4.0 >= cell("Overall R", "Attribute (Title)"));
        // Overall F improves.
        assert!(cell("Overall F", "Merge") >= cell("Overall F", "Attribute (Title)"));
        // Both groups improve; at paper scale the journal improvement
        // dominates (recurring newsletter titles live in journal issues).
        let j_gain = cell("Journal F", "Merge") - cell("Journal F", "Attribute (Title)");
        let c_gain = cell("Conference F", "Merge") - cell("Conference F", "Attribute (Title)");
        assert!(j_gain > 0.0, "journal gain {j_gain}");
        assert!(c_gain >= 0.0, "conference gain {c_gain}");
    }
}
