//! Table 10: summary of matching results (F-measure).
//!
//! Paper values: DBLP-ACM venues 98.8, publications 98.6, authors 96.9;
//! DBLP-GS publications 88.9; GS-ACM publications 88.2.

use crate::experiments::{table5, table6, table7, table8};
use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// Run the Table 10 summary (computes the best workflow per cell).
pub fn run(ctx: &EvalContext) -> Report {
    let gold = &ctx.scenario.gold;
    let venue_f = MatchQuality::evaluate(&ctx.venue_same_dblp_acm(), &gold.venue_dblp_acm).f1();
    let pub_da_f = MatchQuality::evaluate(&table5::merged_mapping(ctx), &gold.pub_dblp_acm).f1();
    let author_da_f =
        MatchQuality::evaluate(&table6::merged_mapping(ctx), &gold.author_dblp_acm).f1();
    let pub_dg_f = MatchQuality::evaluate(&table7::merged_mapping(ctx), &gold.pub_dblp_gs).f1();
    let pub_ga_f = MatchQuality::evaluate(&table8::merged_mapping(ctx), &gold.pub_gs_acm).f1();

    let mut r = Report::new(
        "Table 10. Summary of matching results (F-Measure)",
        vec!["Pair", "Venues", "Publications", "Authors"],
    );
    r.row(
        "DBLP - ACM",
        vec![
            Report::pct(venue_f * 100.0),
            Report::pct(pub_da_f * 100.0),
            Report::pct(author_da_f * 100.0),
        ],
    );
    r.row(
        "DBLP - GS",
        vec!["-".into(), Report::pct(pub_dg_f * 100.0), "-".into()],
    );
    r.row(
        "GS - ACM",
        vec!["-".into(), Report::pct(pub_ga_f * 100.0), "-".into()],
    );
    r.note("paper: DBLP-ACM 98.8/98.6/96.9, DBLP-GS -/88.9/-, GS-ACM -/88.2/-");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table10_shape() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let venues = r.cell_pct("DBLP - ACM", "Venues").unwrap();
        let pubs_da = r.cell_pct("DBLP - ACM", "Publications").unwrap();
        let authors = r.cell_pct("DBLP - ACM", "Authors").unwrap();
        let pubs_dg = r.cell_pct("DBLP - GS", "Publications").unwrap();
        let pubs_ga = r.cell_pct("GS - ACM", "Publications").unwrap();
        // DBLP-ACM results are excellent (paper: 96.9-98.8).
        assert!(venues > 90.0, "venues {venues}");
        assert!(pubs_da > 90.0, "pubs {pubs_da}");
        assert!(authors > 85.0, "authors {authors}");
        // GS pairs trail DBLP-ACM (paper: ~88 vs ~98).
        assert!(pubs_dg < pubs_da);
        assert!(pubs_ga < pubs_da);
        assert!(pubs_dg > 60.0, "DBLP-GS too weak: {pubs_dg}");
        assert!(pubs_ga > 60.0, "GS-ACM too weak: {pubs_ga}");
    }
}
