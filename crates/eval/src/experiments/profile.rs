//! Dataset profile: descriptive statistics of the generated scenario's
//! association mappings — the neighborhood-size facts the paper cites
//! ("about 60-120 publications" per conference, "2-26 per issue",
//! "about 3 authors per paper on average", Sections 5.4.1-5.4.3).

use moma_table::TableStats;

use crate::report::Report;
use crate::setup::EvalContext;

/// Profile the key association mappings.
pub fn run(ctx: &EvalContext) -> Report {
    let repo = &ctx.scenario.repository;
    let mut r = Report::new(
        "Dataset profile: association mapping statistics",
        vec!["Mapping", "Rows", "Domains", "Mean fanout", "Max fanout"],
    );
    for name in [
        "DBLP.VenuePub",
        "DBLP.PubAuthor",
        "DBLP.AuthorPub",
        "DBLP.CoAuthor",
        "ACM.VenuePub",
        "GS.PubAuthor",
        "GS.Clusters",
        "GS.LinksACM",
    ] {
        let Some(m) = repo.get(name) else { continue };
        let s = TableStats::of(&m.table);
        r.row(
            name,
            vec![
                s.rows.to_string(),
                s.distinct_domains.to_string(),
                format!("{:.1}", s.mean_domain_fanout),
                s.max_domain_fanout.to_string(),
            ],
        );
    }
    // Conference vs journal neighborhood sizes (the Table 4 mechanism).
    let venue_pub = repo.get("DBLP.VenuePub").expect("assoc");
    let degrees = venue_pub.table.domain_degrees();
    let is_conf = &ctx.scenario.dblp_venue_is_conf;
    let (mut conf, mut journal) = (Vec::new(), Vec::new());
    for (&v, &d) in degrees.iter() {
        if is_conf[v as usize] {
            conf.push(d);
        } else {
            journal.push(d);
        }
    }
    let avg = |v: &[u32]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u32>() as f64 / v.len() as f64
        }
    };
    r.note(format!(
        "mean publications per conference: {:.1} (paper: 60-120); per journal issue: {:.1} (paper: 2-26)",
        avg(&conf),
        avg(&journal)
    ));
    let pub_author = repo.get("DBLP.PubAuthor").expect("assoc");
    r.note(format!(
        "mean authors per publication: {:.1} (paper: ~3)",
        TableStats::of(&pub_author.table).mean_domain_fanout
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_paper_regime() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        assert!(r.rows.len() >= 7);
        // Authors per publication around 3.
        let note = r
            .notes
            .iter()
            .find(|n| n.contains("authors per publication"))
            .unwrap();
        let mean: f64 = note
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((2.0..=4.0).contains(&mean), "authors/pub {mean}");
        // Conferences dwarf journal issues.
        let sizes = r
            .notes
            .iter()
            .find(|n| n.contains("per conference"))
            .unwrap();
        assert!(sizes.contains("per journal issue"));
    }
}
