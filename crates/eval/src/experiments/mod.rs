//! One module per evaluation table (paper Section 5).

pub mod extension;
pub mod profile;
pub mod table1;
pub mod table10;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;
pub mod tuning;

use crate::report::Report;
use crate::setup::EvalContext;

/// Run every table experiment in order.
pub fn run_all(ctx: &EvalContext) -> Vec<Report> {
    vec![
        table1::run(ctx),
        table2::run(ctx),
        table3::run(ctx),
        table4::run(ctx),
        table5::run(ctx),
        table6::run(ctx),
        table7::run(ctx),
        table8::run(ctx),
        table9::run(ctx),
        table10::run(ctx),
        extension::run(ctx),
        tuning::run(ctx),
    ]
}
