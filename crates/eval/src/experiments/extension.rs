//! Extension experiment: GS duplicate pre-clustering (paper Section 5.6
//! outlook).
//!
//! "In future work we will therefore explore match workflows which first
//! determine the duplicates within dirty sources such as Google Scholar
//! and represent them as self-mappings (identifying clusters of duplicate
//! entries). These self-mappings can then be composed with same-mappings
//! between GS and other sources such as DBLP and ACM to find more
//! correspondences."
//!
//! We implement exactly that: take the GS cluster self-mapping, collapse
//! each cluster to a representative, match DBLP against representatives
//! only, then *expand* the result back over the clusters — every
//! duplicate entry inherits its representative's correspondences.

use std::sync::Arc;

use moma_core::cluster::{expand_domain, representatives};
use moma_core::Mapping;

use crate::experiments::table7;
use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// The cluster-expanded DBLP→GS mapping.
pub fn clustered_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("ext.clustered", || {
        let scenario = &ctx.scenario;
        let gs_count = scenario.registry.lds(scenario.ids.pub_gs).len() as u32;
        let clusters = scenario
            .repository
            .get("GS.Clusters")
            .expect("self-mapping");
        let reps = representatives(&clusters, gs_count).expect("representatives");

        // Start from the Table 7 merged mapping (title + author
        // neighborhood), inverted to GS→DBLP so the GS side is the domain
        // we collapse/expand over.
        let base = table7::merged_mapping(ctx).inverse();
        let collapsed = moma_core::cluster::collapse_domain(&base, &reps);
        let expanded = expand_domain(&collapsed, &reps);
        expanded.inverse().named("ext.clustered")
    })
}

/// Run the extension experiment: baseline (Table 7 merge) vs
/// cluster-expanded matching.
pub fn run(ctx: &EvalContext) -> Report {
    let gold = &ctx.scenario.gold.pub_dblp_gs;
    let baseline = MatchQuality::evaluate(&table7::merged_mapping(ctx), gold);
    let clustered = MatchQuality::evaluate(&clustered_mapping(ctx), gold);

    let mut r = Report::new(
        "Extension (paper 5.6 outlook): GS duplicate pre-clustering for DBLP-GS matching",
        vec!["Metric", "Table 7 merge", "With GS cluster expansion"],
    );
    for (label, pick) in [("Precision", 0usize), ("Recall", 1), ("F-Measure", 2)] {
        let cell = |q: &MatchQuality| {
            let v = q.as_percentages();
            Report::pct([v.0, v.1, v.2][pick])
        };
        r.row(label, vec![cell(&baseline), cell(&clustered)]);
    }
    r.note("GS clusters collapse to representatives before matching; results expand back over all duplicate entries");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_improves_recall() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let cell = |row: &str, col: &str| r.cell_pct(row, col).unwrap();
        // The paper's conjecture: self-mapping composition finds more
        // correspondences (recall up) at little precision cost.
        assert!(
            cell("Recall", "With GS cluster expansion") >= cell("Recall", "Table 7 merge"),
            "cluster expansion lost recall: {} vs {}",
            cell("Recall", "With GS cluster expansion"),
            cell("Recall", "Table 7 merge"),
        );
        assert!(
            cell("F-Measure", "With GS cluster expansion") + 3.0
                >= cell("F-Measure", "Table 7 merge")
        );
    }

    #[test]
    fn expanded_mapping_covers_baseline() {
        let ctx = EvalContext::small();
        let base = table7::merged_mapping(&ctx);
        let ext = clustered_mapping(&ctx);
        // Expansion only adds pairs (over clustered entries); it never
        // removes a baseline correspondence.
        let ext_pairs = ext.table.pair_set();
        for c in base.table.iter() {
            assert!(ext_pairs.contains(&(c.domain, c.range)));
        }
        assert!(ext.len() >= base.len());
    }
}
