//! Table 6: matching DBLP-ACM authors with the n:m publication
//! neighborhood matcher.
//!
//! Paper values (P/R/F): Attribute(Name) 99.3/81.3/89.4,
//! Neighborhood(Publication) 24.8/99.3/39.7, Merge 99.9/94.0/96.9.
//!
//! Shape: plain name matching is precise but misses abbreviated
//! identities (ACM's "J. Smith"); the publication neighborhood alone
//! over-matches co-author groups; the Min-merge of a permissive name
//! mapping with the neighborhood recovers abbreviated authors while
//! keeping precision.

use std::sync::Arc;

use moma_core::matchers::neighborhood::nh_match;
use moma_core::ops::compose::PathAgg;
use moma_core::ops::merge::{merge, MergeFn, MissingPolicy};
use moma_core::ops::select::{select, Selection};
use moma_core::Mapping;

use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// Raw n:m publication neighborhood mapping over authors.
pub fn nh_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table6.nh", || {
        let repo = &ctx.scenario.repository;
        let asso1 = repo.get("DBLP.AuthorPub").expect("assoc");
        let asso2 = repo.get("ACM.PubAuthor").expect("assoc");
        let pub_same = ctx.pub_title_dblp_acm();
        nh_match(&asso1, &pub_same, &asso2, PathAgg::Relative).expect("nh")
    })
}

/// The Table 6 merged mapping: Min-with-zero merge (intersection
/// semantics) of the permissive name mapping and the thresholded
/// neighborhood, followed by a 0.45 threshold on the combined value.
pub fn merged_mapping(ctx: &EvalContext) -> Arc<Mapping> {
    ctx.cached("table6.merge", || {
        let name_low = ctx.author_name_low_dblp_acm();
        let nh = select(&nh_mapping(ctx), &Selection::Threshold(0.25));
        let merged = merge(&[&name_low, &nh], MergeFn::Min, MissingPolicy::Zero).expect("merge");
        select(&merged, &Selection::Threshold(0.35))
    })
}

/// Run the Table 6 experiment.
pub fn run(ctx: &EvalContext) -> Report {
    let gold = &ctx.scenario.gold.author_dblp_acm;
    let attr = MatchQuality::evaluate(&ctx.author_name_dblp_acm(), gold);
    let nh_alone = select(&nh_mapping(ctx), &Selection::Threshold(0.25));
    let nh = MatchQuality::evaluate(&nh_alone, gold);
    let merged = MatchQuality::evaluate(&merged_mapping(ctx), gold);

    let mut r = Report::new(
        "Table 6. Matching DBLP-ACM authors using neighborhood matcher (n:m publication)",
        vec![
            "Metric",
            "Attribute (Name)",
            "Neighborhood (Publication)",
            "Merge",
        ],
    );
    for (label, pick) in [("Precision", 0usize), ("Recall", 1), ("F-Measure", 2)] {
        let cell = |q: &MatchQuality| {
            let v = q.as_percentages();
            Report::pct([v.0, v.1, v.2][pick])
        };
        r.row(label, vec![cell(&attr), cell(&nh), cell(&merged)]);
    }
    r.note("paper: Attr 99.3/81.3/89.4, NH 24.8/99.3/39.7, Merge 99.9/94.0/96.9 (P/R/F)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shape() {
        let ctx = EvalContext::small();
        let r = run(&ctx);
        let cell = |row: &str, col: &str| r.cell_pct(row, col).unwrap();
        // Name matching: high precision, limited recall (abbreviations).
        assert!(cell("Precision", "Attribute (Name)") > 85.0);
        assert!(cell("Recall", "Attribute (Name)") < 95.0);
        // Neighborhood alone: high recall, poor precision.
        assert!(cell("Recall", "Neighborhood (Publication)") > cell("Recall", "Attribute (Name)"));
        assert!(cell("Precision", "Neighborhood (Publication)") < 70.0);
        // Merge: recall above attribute-only at comparable precision.
        assert!(
            cell("Recall", "Merge") > cell("Recall", "Attribute (Name)"),
            "merge R {} vs attr R {}",
            cell("Recall", "Merge"),
            cell("Recall", "Attribute (Name)")
        );
        assert!(cell("Precision", "Merge") + 8.0 >= cell("Precision", "Attribute (Name)"));
        assert!(cell("F-Measure", "Merge") > cell("F-Measure", "Attribute (Name)"));
        assert!(cell("F-Measure", "Merge") > cell("F-Measure", "Neighborhood (Publication)"));
    }
}
