//! Shared evaluation context: the generated scenario plus cached
//! intermediate mappings reused across experiments — mirroring MOMA's own
//! mapping cache ("MOMA not only processes the input instances but also
//! utilizes the mappings of the repository and the cache", Section 2.2).

use std::sync::Arc;

use moma_core::blocking::Blocking;
use moma_core::matchers::neighborhood::nh_match;
use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma_core::ops::compose::PathAgg;
use moma_core::ops::select::{select, Selection};
use moma_core::{Mapping, MappingCache};
use moma_datagen::{Scenario, WorldConfig};
use moma_simstring::SimFn;

/// Scenario plus cached derived mappings.
pub struct EvalContext {
    /// The generated evaluation scenario.
    pub scenario: Scenario,
    cache: MappingCache,
}

impl EvalContext {
    /// Wrap a scenario.
    pub fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            cache: MappingCache::new(),
        }
    }

    /// Paper-scale context (Table 1 sized).
    pub fn paper_scale() -> Self {
        Self::new(Scenario::paper_scale())
    }

    /// Small context for tests.
    pub fn small() -> Self {
        Self::new(Scenario::small())
    }

    /// Context from a custom configuration.
    pub fn with_config(config: WorldConfig) -> Self {
        Self::new(Scenario::generate(config))
    }

    /// The match context for running matchers.
    pub fn match_ctx(&self) -> MatchContext<'_> {
        MatchContext::with_repository(&self.scenario.registry, &self.scenario.repository)
    }

    /// Fetch-or-compute a cached mapping.
    pub fn cached(&self, name: &str, build: impl FnOnce() -> Mapping) -> Arc<Mapping> {
        if let Some(m) = self.cache.get(name) {
            return m;
        }
        self.cache.store_as(name, build())
    }

    #[allow(clippy::too_many_arguments)]
    fn attr(
        &self,
        cache_key: &str,
        domain: moma_model::LdsId,
        range: moma_model::LdsId,
        domain_attr: &str,
        range_attr: &str,
        sim: SimFn,
        threshold: f64,
    ) -> Arc<Mapping> {
        self.cached(cache_key, || {
            AttributeMatcher::new(domain_attr, range_attr, sim, threshold)
                .with_blocking(Blocking::TrigramPrefix)
                .execute(&self.match_ctx(), domain, range)
                .expect("attribute matcher")
        })
    }

    // ---- publication title matchers ----

    /// DBLP→ACM title trigram at the paper's 0.8 threshold.
    pub fn pub_title_dblp_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "title(D,A)@0.8",
            ids.pub_dblp,
            ids.pub_acm,
            "title",
            "title",
            SimFn::Trigram,
            0.8,
        )
    }

    /// DBLP→ACM title trigram at a permissive 0.45 (merge input).
    pub fn pub_title_low_dblp_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "title(D,A)@0.45",
            ids.pub_dblp,
            ids.pub_acm,
            "title",
            "title",
            SimFn::Trigram,
            0.45,
        )
    }

    /// DBLP→GS title trigram at 0.75 (GS titles are extraction-noisy).
    pub fn pub_title_dblp_gs(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "title(D,G)@0.75",
            ids.pub_dblp,
            ids.pub_gs,
            "title",
            "title",
            SimFn::Trigram,
            0.75,
        )
    }

    /// DBLP→GS title trigram at 0.45.
    pub fn pub_title_low_dblp_gs(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "title(D,G)@0.45",
            ids.pub_dblp,
            ids.pub_gs,
            "title",
            "title",
            SimFn::Trigram,
            0.45,
        )
    }

    /// GS→ACM title trigram at 0.75.
    pub fn pub_title_gs_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "title(G,A)@0.75",
            ids.pub_gs,
            ids.pub_acm,
            "title",
            "title",
            SimFn::Trigram,
            0.75,
        )
    }

    /// GS→ACM title trigram at 0.45.
    pub fn pub_title_low_gs_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "title(G,A)@0.45",
            ids.pub_gs,
            ids.pub_acm,
            "title",
            "title",
            SimFn::Trigram,
            0.45,
        )
    }

    // ---- other publication matchers (Table 2) ----

    /// DBLP→ACM author-list trigram at 0.8.
    pub fn pub_author_dblp_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "authors(D,A)@0.8",
            ids.pub_dblp,
            ids.pub_acm,
            "authors",
            "authors",
            SimFn::Trigram,
            0.8,
        )
    }

    /// DBLP→ACM author-list trigram at 0.45.
    pub fn pub_author_low_dblp_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "authors(D,A)@0.45",
            ids.pub_dblp,
            ids.pub_acm,
            "authors",
            "authors",
            SimFn::Trigram,
            0.45,
        )
    }

    /// DBLP→ACM year-equality matcher.
    pub fn pub_year_dblp_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "year(D,A)",
            ids.pub_dblp,
            ids.pub_acm,
            "year",
            "year",
            SimFn::Year(0),
            1.0,
        )
    }

    // ---- author matchers ----

    /// DBLP→ACM author-name trigram at 0.8 (Table 6 attribute row).
    pub fn author_name_dblp_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "name(D,A)@0.8",
            ids.author_dblp,
            ids.author_acm,
            "name",
            "name",
            SimFn::Trigram,
            0.8,
        )
    }

    /// DBLP→ACM author-name trigram at 0.3 (merge input).
    pub fn author_name_low_dblp_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "name(D,A)@0.3",
            ids.author_dblp,
            ids.author_acm,
            "name",
            "name",
            SimFn::Trigram,
            0.3,
        )
    }

    /// DBLP→GS author same-mapping via the initials-aware person-name
    /// measure (GS abbreviates first names, Section 5.4.3).
    pub fn author_same_dblp_gs(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "name(D,G)@0.85",
            ids.author_dblp,
            ids.author_gs,
            "name",
            "name",
            SimFn::PersonName,
            0.85,
        )
    }

    /// GS→ACM author same-mapping.
    pub fn author_same_gs_acm(&self) -> Arc<Mapping> {
        let ids = self.scenario.ids;
        self.attr(
            "name(G,A)@0.85",
            ids.author_gs,
            ids.author_acm,
            "name",
            "name",
            SimFn::PersonName,
            0.85,
        )
    }

    // ---- derived same-mappings ----

    /// The venue same-mapping DBLP→ACM from the 1:n neighborhood matcher
    /// with Best-1 selection — the paper's Section 5.4.2 input
    /// ("determined with the 1:n neighborhood matching and best-1
    /// selection").
    pub fn venue_same_dblp_acm(&self) -> Arc<Mapping> {
        self.cached("venueSame(D,A)", || {
            let repo = &self.scenario.repository;
            let asso1 = repo.get("DBLP.VenuePub").expect("assoc");
            let asso2 = repo.get("ACM.PubVenue").expect("assoc");
            let same = self.pub_title_dblp_acm();
            let nh = nh_match(&asso1, &same, &asso2, PathAgg::Relative).expect("nh");
            select(&nh, &Selection::best1())
        })
    }

    /// Raw venue neighborhood mapping (no selection) for Table 4's
    /// selection-strategy comparison.
    pub fn venue_nh_dblp_acm(&self) -> Arc<Mapping> {
        self.cached("venueNh(D,A)", || {
            let repo = &self.scenario.repository;
            let asso1 = repo.get("DBLP.VenuePub").expect("assoc");
            let asso2 = repo.get("ACM.PubVenue").expect("assoc");
            let same = self.pub_title_dblp_acm();
            nh_match(&asso1, &same, &asso2, PathAgg::Relative).expect("nh")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_computes_once() {
        let ctx = EvalContext::small();
        let a = ctx.pub_title_dblp_acm();
        let b = ctx.pub_title_dblp_acm();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_empty());
    }

    #[test]
    fn low_threshold_is_superset() {
        let ctx = EvalContext::small();
        let high = ctx.pub_title_dblp_acm();
        let low = ctx.pub_title_low_dblp_acm();
        assert!(low.len() >= high.len());
        let low_pairs = low.table.pair_set();
        for c in high.table.iter() {
            assert!(low_pairs.contains(&(c.domain, c.range)));
        }
    }

    #[test]
    fn venue_same_mapping_mostly_correct() {
        let ctx = EvalContext::small();
        let venue = ctx.venue_same_dblp_acm();
        let gold = &ctx.scenario.gold.venue_dblp_acm;
        let correct = venue
            .table
            .iter()
            .filter(|c| gold.contains(c.domain, c.range))
            .count();
        assert!(
            correct as f64 >= 0.8 * gold.len() as f64,
            "venue matching too weak: {correct}/{}",
            gold.len()
        );
    }

    #[test]
    fn year_matcher_covers_everything() {
        let ctx = EvalContext::small();
        let year = ctx.pub_year_dblp_acm();
        // Year matching is essentially the cross product within years:
        // recall must be ~100%, precision tiny (the Table 2 shape).
        let q = crate::metrics::MatchQuality::evaluate(&year, &ctx.scenario.gold.pub_dblp_acm);
        assert!(q.recall() > 0.88, "year recall {}", q.recall());
        assert!(q.precision() < 0.2, "year precision {}", q.precision());
    }
}
