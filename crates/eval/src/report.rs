//! Experiment reports: named tables of labelled rows, rendered as ASCII.

use std::fmt;

/// One experiment's output table.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Title, e.g. `Table 2. Matching DBLP-ACM publications using attribute matchers`.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Rows: label + one cell per non-label column.
    pub rows: Vec<(String, Vec<String>)>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Report {
    /// New empty report.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            columns: columns.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) -> &mut Self {
        self.rows.push((label.into(), cells));
        self
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Format a percentage cell like the paper (`95.5%`).
    pub fn pct(v: f64) -> String {
        format!("{v:.1}%")
    }

    /// Look up a cell by row label and column name (for tests and the
    /// Table 10 summary).
    pub fn cell(&self, row: &str, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        if col == 0 {
            return None;
        }
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .and_then(|(_, cells)| cells.get(col - 1))
            .map(String::as_str)
    }

    /// Parse a percentage cell back to a number.
    pub fn cell_pct(&self, row: &str, column: &str) -> Option<f64> {
        self.cell(row, column)?.trim_end_matches('%').parse().ok()
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.len());
            for (i, cell) in cells.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        out.push_str(&sep);
        out.push('\n');
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("|"));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for (label, cells) in &self.rows {
            let mut line: Vec<String> = vec![format!(" {:<width$} ", label, width = widths[0])];
            for (i, cell) in cells.iter().enumerate() {
                if i + 1 < widths.len() {
                    line.push(format!(" {:>width$} ", cell, width = widths[i + 1]));
                }
            }
            out.push_str(&line.join("|"));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Table X. Demo", vec!["Matcher", "Precision", "Recall"]);
        r.row("Title", vec![Report::pct(86.7), Report::pct(97.7)]);
        r.row("Year", vec![Report::pct(0.4), Report::pct(100.0)]);
        r.note("threshold 0.8");
        r
    }

    #[test]
    fn cells_lookup() {
        let r = sample();
        assert_eq!(r.cell("Title", "Precision"), Some("86.7%"));
        assert_eq!(r.cell_pct("Year", "Recall"), Some(100.0));
        assert_eq!(r.cell("Title", "Matcher"), None);
        assert_eq!(r.cell("Nope", "Precision"), None);
        assert_eq!(r.cell("Title", "Nope"), None);
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Table X. Demo"));
        assert!(s.contains("Matcher"));
        assert!(s.contains("86.7%"));
        assert!(s.contains("note: threshold 0.8"));
        // Aligned: all data lines have same length.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        assert!(lines.len() >= 3);
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(Report::pct(95.55), "95.5%");
        assert_eq!(Report::pct(0.351), "0.4%");
        assert_eq!(Report::pct(100.0), "100.0%");
    }

    #[test]
    fn display_is_render() {
        let r = sample();
        assert_eq!(r.to_string(), r.render());
    }
}
