//! Figures 2 and 3: the source-mapping model and the MOMA architecture.

use moma_model::cardinality::Cardinality;
use moma_model::smm::{AssocTypeDef, PhysicalSource, SourceMappingModel};
use moma_model::LdsId;

use crate::report::Report;

/// Figure 2: the bibliographic source-mapping model, built and rendered.
pub fn fig2() -> Report {
    let mut smm = SourceMappingModel::new();
    smm.add_physical(PhysicalSource::downloadable("DBLP"));
    smm.add_physical(PhysicalSource::query_only("ACM"));
    smm.add_physical(PhysicalSource::query_only("GoogleScholar"));
    let names = [
        "Publication@DBLP",
        "Author@DBLP",
        "Venue@DBLP",
        "Publication@ACM",
        "Author@ACM",
        "Venue@ACM",
        "Publication@GoogleScholar",
    ];
    for (i, n) in names.iter().enumerate() {
        smm.add_logical(LdsId(i as u32), *n);
    }
    for (name, d, r, card, inv) in [
        (
            "AuthorPub@DBLP",
            1u32,
            0u32,
            Cardinality::ManyToMany,
            Some("PubAuthor@DBLP"),
        ),
        (
            "VenuePub@DBLP",
            2,
            0,
            Cardinality::OneToMany,
            Some("PubVenue@DBLP"),
        ),
        ("CoAuthor@DBLP", 1, 1, Cardinality::ManyToMany, None),
        (
            "AuthorPub@ACM",
            4,
            3,
            Cardinality::ManyToMany,
            Some("PubAuthor@ACM"),
        ),
        (
            "VenuePub@ACM",
            5,
            3,
            Cardinality::OneToMany,
            Some("PubVenue@ACM"),
        ),
    ] {
        smm.add_assoc_type(AssocTypeDef {
            name: name.into(),
            domain: LdsId(d),
            range: LdsId(r),
            cardinality: card,
            inverse: inv.map(str::to_owned),
        });
    }
    let rendered = smm.render_ascii();
    let mut r = Report::new(
        "Figure 2. Source-mapping model for the bibliographic domain",
        vec!["SMM"],
    );
    for line in rendered.lines() {
        r.row(line, vec![]);
    }
    r
}

/// Figure 3: the MOMA architecture — enumerated as components with the
/// role each plays in this implementation.
pub fn fig3() -> Report {
    let mut r = Report::new(
        "Figure 3. MOMA architecture components and their realization",
        vec!["Component", "Realization"],
    );
    for (component, realization) in [
        ("Mapping repository", "moma_core::repository::MappingRepository (TSV persistence)"),
        ("Mapping cache", "moma_core::repository::MappingCache (intermediate workflow results)"),
        ("Matcher library", "moma_core::workflow::MatcherLibrary (attribute / multi-attribute / neighborhood / workflows-as-matchers)"),
        ("Matcher implementation", "moma_core::matchers::AttributeMatcher (n-gram, TF/IDF, affix, ... via moma-simstring)"),
        ("Mapping combiner: operator", "moma_core::ops::{merge, compose}"),
        ("Mapping combiner: selection", "moma_core::ops::select (Threshold, Best-n, Best-1+Delta, constraints)"),
        ("Match workflow", "moma_core::workflow::Workflow (steps = matchers + combiner)"),
        ("Self-tuning", "moma_tune (grid search + decision tree over matcher configurations)"),
        ("Script facility (iFuice)", "moma_ifuice::script (lexer, parser, interpreter)"),
    ] {
        r.row(component, vec![realization.to_owned()]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_renders_model() {
        let r = fig2();
        let text = r.render();
        assert!(text.contains("PDS DBLP (downloadable)"));
        assert!(text.contains("PDS GoogleScholar (query-only)"));
        assert!(text.contains("CoAuthor@DBLP"));
        assert!(text.contains("[1:n]"));
    }

    #[test]
    fn fig3_lists_all_components() {
        let r = fig3();
        assert_eq!(r.rows.len(), 9);
        assert!(r.render().contains("Mapping repository"));
        assert!(r.render().contains("Self-tuning"));
    }
}
