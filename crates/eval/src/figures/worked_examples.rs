//! Figures with concrete numbers: re-executed and asserted.

use moma_core::matchers::neighborhood::nh_match;
use moma_core::ops::compose::{compose, PathAgg, PathCombine};
use moma_core::ops::merge::{merge, MergeFn, MissingPolicy};
use moma_core::Mapping;
use moma_model::LdsId;
use moma_simstring::ngram::trigram;
use moma_simstring::numeric::year_window;
use moma_table::MappingTable;

use crate::report::Report;

/// Figure 1: the DBLP/ACM publication instances and their same-mapping.
///
/// We rebuild the three DBLP and three ACM instances from the figure,
/// compute title+year similarities, and show that the resulting
/// same-mapping contains the figure's correspondences (two exact matches
/// with sim 1, the conference/journal cross pairs with reduced sim).
pub fn fig1() -> Report {
    let dblp = [
        (
            "conf/VLDB/MadhavanBR01",
            "Generic Schema Matching with Cupid",
            2001u16,
        ),
        (
            "conf/VLDB/ChirkovaHS01",
            "A formal perspective on the view selection problem",
            2001,
        ),
        (
            "journals/VLDB/ChirkovaHS02",
            "A formal perspective on the view selection problem",
            2002,
        ),
    ];
    let acm = [
        ("P-672191", "Generic Schema Matching with Cupid", 2001u16),
        (
            "P-672216",
            "A formal perspective on the view selection problem",
            2001,
        ),
        (
            "P-641272",
            "A formal perspective on the view selection problem",
            2002,
        ),
    ];
    let mut r = Report::new(
        "Figure 1. Publication instances and same-mapping (DBLP vs ACM)",
        vec!["DBLP key", "ACM id", "Sim"],
    );
    for (dk, dt, dy) in dblp {
        for (ak, at, ay) in acm {
            // Avg-merge of title trigram and windowed year similarity.
            let sim = (trigram(dt, at) + year_window(dy, ay, 1)) / 2.0;
            if sim >= 0.6 {
                r.row(dk, vec![ak.to_owned(), format!("{sim:.2}")]);
            }
        }
    }
    r.note(
        "paper mapping: MadhavanBR01~P-672191 (1), ChirkovaHS01~P-672216 (1), \
            ChirkovaHS02~P-641272 (1), cross pairs at 0.6",
    );
    r
}

/// Figure 4: the merge operator worked example — asserted against the
/// paper's four result tables.
pub fn fig4() -> Report {
    // a1=1, a2=2, a3=3; b1=11, b2=12, b3=13, b5=15.
    let map1 = Mapping::same(
        "map1",
        LdsId(0),
        LdsId(1),
        MappingTable::from_triples([(1, 11, 1.0), (2, 12, 0.8)]),
    );
    let map2 = Mapping::same(
        "map2",
        LdsId(0),
        LdsId(1),
        MappingTable::from_triples([(1, 11, 0.6), (1, 15, 1.0), (3, 13, 0.9)]),
    );
    let min0 = merge(&[&map1, &map2], MergeFn::Min, MissingPolicy::Zero).expect("merge");
    let avg = merge(&[&map1, &map2], MergeFn::Avg, MissingPolicy::Ignore).expect("merge");
    let avg0 = merge(&[&map1, &map2], MergeFn::Avg, MissingPolicy::Zero).expect("merge");
    let prefer = merge(&[&map1, &map2], MergeFn::Prefer(0), MissingPolicy::Ignore).expect("merge");

    // Assert the paper's values.
    assert_eq!(min0.table.sim_of(1, 11), Some(0.6));
    assert_eq!(min0.len(), 1);
    assert_eq!(avg.table.sim_of(1, 11), Some(0.8));
    assert_eq!(avg0.table.sim_of(2, 12), Some(0.4));
    assert_eq!(avg0.table.sim_of(1, 15), Some(0.5));
    assert_eq!(avg0.table.sim_of(3, 13), Some(0.45));
    assert_eq!(prefer.len(), 3);
    assert_eq!(prefer.table.sim_of(1, 11), Some(1.0));

    let mut r = Report::new(
        "Figure 4. Merge operator worked example",
        vec!["Pair", "Min-0", "Avg", "Avg-0", "Prefer map1"],
    );
    let names = [
        (1u32, 11u32, "a1-b1"),
        (2, 12, "a2-b2"),
        (3, 13, "a3-b3"),
        (1, 15, "a1-b5"),
    ];
    for (a, b, label) in names {
        let cell = |m: &Mapping| {
            m.table
                .sim_of(a, b)
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "-".into())
        };
        r.row(
            label,
            vec![cell(&min0), cell(&avg), cell(&avg0), cell(&prefer)],
        );
    }
    r.note("all values asserted equal to the paper's Figure 4");
    r
}

/// Figure 5: the auxiliary values n(a), n(b) and s(a,b) of the Relative
/// similarity functions, computed for the Figure 6 inputs.
pub fn fig5() -> Report {
    let (map1, map2) = fig6_inputs();
    let n_a = map1.table.domain_degrees();
    let n_b = map2.table.range_degrees();
    let mut r = Report::new(
        "Figure 5. Auxiliary values for the Relative similarity functions",
        vec!["Object", "n(.)"],
    );
    r.row("n(v1)", vec![n_a[&1].to_string()]);
    r.row("n(v2)", vec![n_a[&2].to_string()]);
    r.row("n(v'1)", vec![n_b[&11].to_string()]);
    r.row("n(v'2)", vec![n_b[&12].to_string()]);
    assert_eq!(n_a[&1], 3);
    assert_eq!(n_a[&2], 2);
    assert_eq!(n_b[&11], 2);
    assert_eq!(n_b[&12], 1);
    r.note("s(a,b) sums the per-path similarities (see Figure 6 results)");
    r
}

fn fig6_inputs() -> (Mapping, Mapping) {
    // v1=1, v2=2; p1=101, p2=102, p3=103; v'1=11, v'2=12.
    let map1 = Mapping::association(
        "map1",
        "publications of venue",
        LdsId(0),
        LdsId(1),
        MappingTable::from_triples([
            (1, 101, 1.0),
            (1, 102, 1.0),
            (1, 103, 0.6),
            (2, 102, 0.6),
            (2, 103, 1.0),
        ]),
    );
    let map2 = Mapping::association(
        "map2",
        "venue of publication",
        LdsId(1),
        LdsId(2),
        MappingTable::from_triples([(101, 11, 1.0), (102, 11, 1.0), (103, 12, 1.0)]),
    );
    (map1, map2)
}

/// Figure 6: the compose operator worked example (f = Min, g = Relative)
/// — asserted against the paper's four output similarities.
pub fn fig6() -> Report {
    let (map1, map2) = fig6_inputs();
    let result = compose(&map1, &map2, PathCombine::Min, PathAgg::Relative).expect("compose");
    let expect = [
        (1u32, 11u32, 0.8, "v1-v'1 = 2*(1+1)/(3+2)"),
        (1, 12, 0.3, "v1-v'2 = 2*0.6/(3+1)"),
        (2, 11, 0.3, "v2-v'1 = 2*0.6/(2+2)"),
        (2, 12, 2.0 / 3.0, "v2-v'2 = 2*1/(2+1)"),
    ];
    let mut r = Report::new(
        "Figure 6. Compose operator worked example (f=Min, g=Relative)",
        vec!["Pair", "Sim", "Derivation"],
    );
    for (a, b, want, derivation) in expect {
        let got = result.table.sim_of(a, b).expect("pair present");
        assert!(
            (got - want).abs() < 1e-12,
            "({a},{b}): got {got}, want {want}"
        );
        r.row(
            format!("({a},{b})"),
            vec![format!("{got:.2}"), derivation.to_owned()],
        );
    }
    r.note("all values asserted equal to the paper's Figure 6");
    r
}

/// Figure 9: the neighborhood matcher sample execution on the Figure 1
/// publication same-mapping — asserted against the paper's venue
/// similarities.
pub fn fig9() -> Report {
    // DBLP venues: conf/VLDB/2001=0, journals/VLDB/2002=1.
    // DBLP pubs: MadhavanBR01=0, ChirkovaHS01=1, ChirkovaHS02=2.
    // ACM pubs: P-672191=0, P-672216=1, P-641272=2.
    // ACM venues: V-645927=0, V-641268=1.
    let asso1 = Mapping::association(
        "VenuePub@DBLP",
        "publications of venue",
        LdsId(0),
        LdsId(1),
        MappingTable::from_triples([(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)]),
    );
    let same = Mapping::same(
        "PubSame",
        LdsId(1),
        LdsId(2),
        MappingTable::from_triples([
            (0, 0, 1.0),
            (1, 1, 1.0),
            (1, 2, 0.6),
            (2, 1, 0.6),
            (2, 2, 1.0),
        ]),
    );
    let asso2 = Mapping::association(
        "PubVenue@ACM",
        "venue of publication",
        LdsId(2),
        LdsId(3),
        MappingTable::from_triples([(0, 0, 1.0), (1, 0, 1.0), (2, 1, 1.0)]),
    );
    let result = nh_match(&asso1, &same, &asso2, PathAgg::Relative).expect("nhMatch");
    assert!((result.table.sim_of(0, 0).unwrap() - 0.8).abs() < 1e-12);
    assert!((result.table.sim_of(0, 1).unwrap() - 0.3).abs() < 1e-12);
    assert!((result.table.sim_of(1, 0).unwrap() - 0.3).abs() < 1e-12);
    assert!((result.table.sim_of(1, 1).unwrap() - 2.0 / 3.0).abs() < 1e-12);

    let mut r = Report::new(
        "Figure 9. Neighborhood matcher execution for DBLP venues",
        vec!["DBLP venue", "ACM venue", "Sim"],
    );
    let venue_d = ["conf/VLDB/2001", "journals/VLDB/2002"];
    let venue_a = ["V-645927", "V-641268"];
    for c in result.table.iter() {
        r.row(
            venue_d[c.domain as usize],
            vec![
                venue_a[c.range as usize].to_owned(),
                format!("{:.2}", c.sim),
            ],
        );
    }
    r.note("asserted: 0.8 / 0.3 / 0.3 / 0.67 as in the paper");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_contains_paper_pairs() {
        let r = fig1();
        assert!(r
            .rows
            .iter()
            .any(|(l, c)| l == "conf/VLDB/MadhavanBR01" && c[0] == "P-672191"));
        // Cross pairs exist with reduced similarity.
        assert!(r
            .rows
            .iter()
            .any(|(l, c)| l == "conf/VLDB/ChirkovaHS01" && c[0] == "P-641272"));
    }

    #[test]
    fn fig4_asserts_pass() {
        let r = fig4();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.cell("a1-b1", "Min-0"), Some("0.60"));
        assert_eq!(r.cell("a2-b2", "Avg-0"), Some("0.40"));
        assert_eq!(r.cell("a1-b5", "Prefer map1"), Some("-"));
    }

    #[test]
    fn fig5_degrees() {
        let r = fig5();
        assert_eq!(r.cell("n(v1)", "n(.)"), Some("3"));
    }

    #[test]
    fn fig6_asserts_pass() {
        let r = fig6();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.cell("(1,11)", "Sim"), Some("0.80"));
    }

    #[test]
    fn fig9_asserts_pass() {
        let r = fig9();
        assert_eq!(r.rows.len(), 4);
    }
}
