//! Reproductions of the paper's figures.
//!
//! Figures 1, 4, 5, 6 and 9 are *worked examples* with concrete numbers —
//! we re-execute them and assert the paper's values. Figures 2, 3, 7, 8,
//! 10 and 11 are architectural/strategic illustrations — we realize each
//! as a small executable scenario.

pub mod architecture;
pub mod strategies;
pub mod worked_examples;

use crate::report::Report;
use crate::setup::EvalContext;

pub use architecture::{fig2, fig3};
pub use strategies::{fig10, fig7, fig8};
pub use worked_examples::{fig1, fig4, fig5, fig6, fig9};

/// Figure 11: the n:m match workflow (nhMatch ∥ attrMatch → merge →
/// select), realized on the generated scenario (needs a context).
pub fn fig11(ctx: &EvalContext) -> Report {
    strategies::fig11(ctx)
}

/// Run every context-free figure.
pub fn run_all(ctx: &EvalContext) -> Vec<Report> {
    vec![
        fig1(),
        fig2(),
        fig3(),
        fig4(),
        fig5(),
        fig6(),
        fig7(),
        fig8(),
        fig9(),
        fig10(),
        fig11(ctx),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_produces_eleven_reports() {
        let ctx = EvalContext::small();
        let reports = run_all(&ctx);
        assert_eq!(reports.len(), 11);
        for r in &reports {
            assert!(r.title.starts_with("Figure"), "title: {}", r.title);
            assert!(!r.render().is_empty());
        }
    }
}
