//! Figures 7, 8, 10 and 11: match-strategy illustrations, each realized
//! as an executable scenario.

use moma_core::matchers::neighborhood::nh_match;
use moma_core::ops::compose::{compose, PathAgg, PathCombine};
use moma_core::ops::select::{select, Selection};
use moma_core::Mapping;
use moma_model::LdsId;
use moma_table::MappingTable;

use crate::metrics::MatchQuality;
use crate::report::Report;
use crate::setup::EvalContext;

/// Figure 7: how duplicates and coverage gaps in the intermediate source
/// impair composed same-mappings.
///
/// DBLP p1..p4; GS merges p2/p3 into one entry and misses p4; ACM
/// p'1..p'4. Composing DBLP→GS→ACM yields 4 correspondences for the
/// p2/p3 block (precision loss) and drops p4 (recall loss) — exactly the
/// figure's point.
pub fn fig7() -> Report {
    // DBLP: 0..4, GS: 0 (=p1), 1 (=p2+p3 merged), ACM: 0..4.
    let dblp_gs = Mapping::same(
        "DBLP-GS",
        LdsId(0),
        LdsId(1),
        MappingTable::from_triples([(0, 0, 1.0), (1, 1, 1.0), (2, 1, 1.0)]),
    );
    let gs_acm = Mapping::same(
        "GS-ACM",
        LdsId(1),
        LdsId(2),
        MappingTable::from_triples([(0, 0, 1.0), (1, 1, 1.0), (1, 2, 1.0)]),
    );
    let composed = compose(&dblp_gs, &gs_acm, PathCombine::Min, PathAgg::Max).expect("compose");
    // True mapping: i -> i for 0..4.
    let gold = moma_datagen::GoldStandard::from_pairs([(0, 0), (1, 1), (2, 2), (3, 3)]);
    let q = MatchQuality::evaluate(&composed, &gold);

    assert_eq!(
        composed.len(),
        5,
        "p2/p3 block should blow up to 4 pairs + p1"
    );
    assert!(
        composed.table.sim_of(1, 2).is_some(),
        "wrong cross pair present"
    );
    assert!(
        composed.table.sim_of(3, 3).is_none(),
        "p4 lost via missing GS entry"
    );

    let mut r = Report::new(
        "Figure 7. Composing same-mappings through a dirty/incomplete source",
        vec!["Effect", "Observed"],
    );
    r.row(
        "Correspondences for the p2/p3 same-title block",
        vec!["4 (instead of 2)".into()],
    );
    r.row(
        "p4 -> p'4 derivable?",
        vec!["no (no GS counterpart)".into()],
    );
    r.row("Composed quality", vec![q.to_string()]);
    r
}

/// Figure 8: the hub infrastructure — five sources, all matched through
/// the curated hub (DBLP), needing only n-1 same-mappings instead of
/// n(n-1)/2.
pub fn fig8() -> Report {
    // Five sources with 6 publications each; source 0 is the hub.
    // Peripheral sources are noisy subsets.
    let hub_maps: Vec<Mapping> = (1..5u32)
        .map(|s| {
            // Hub covers everything; source s misses publication s.
            let rows: Vec<(u32, u32, f64)> =
                (0..6u32).filter(|&p| p != s).map(|p| (p, p, 1.0)).collect();
            Mapping::same(
                format!("hub-{s}"),
                LdsId(0),
                LdsId(s),
                MappingTable::from_triples(rows),
            )
        })
        .collect();
    // Match source 1 with source 4 via the hub.
    let via_hub = compose(
        &hub_maps[0].inverse(),
        &hub_maps[3],
        PathCombine::Min,
        PathAgg::Max,
    )
    .expect("compose");
    let gold = moma_datagen::GoldStandard::from_pairs(
        (0..6u32).filter(|&p| p != 1 && p != 4).map(|p| (p, p)),
    );
    let q = MatchQuality::evaluate(&via_hub, &gold);
    assert_eq!(q.f1(), 1.0, "hub composition must be exact here");

    let mut r = Report::new(
        "Figure 8. Hub infrastructure for composing same-mappings",
        vec!["Quantity", "Value"],
    );
    r.row("Sources", vec!["5".into()]);
    r.row("Same-mappings maintained (hub)", vec!["4".into()]);
    r.row("Same-mappings for full mesh", vec!["10".into()]);
    r.row("Source1-Source4 via hub", vec![q.to_string()]);
    r
}

/// Figure 10: neighborhood matching under the three association
/// cardinalities — measuring how each confines the candidate space.
pub fn fig10() -> Report {
    // A miniature two-source world: 2 venues x 3 pubs, 4 authors.
    // Source A ids: venues 0..2, pubs 0..6, authors 0..4 (same for B).
    let venue_pub_a = Mapping::association(
        "VenuePubA",
        "publications of venue",
        LdsId(0),
        LdsId(1),
        MappingTable::from_triples([
            (0, 0, 1.0),
            (0, 1, 1.0),
            (0, 2, 1.0),
            (1, 3, 1.0),
            (1, 4, 1.0),
            (1, 5, 1.0),
        ]),
    );
    let pub_venue_b = venue_pub_a.inverse().named("PubVenueB");
    let pub_same = Mapping::same(
        "PubSame",
        LdsId(1),
        LdsId(1),
        MappingTable::from_triples((0..6).map(|p| (p, p, 1.0))),
    );
    // 1:n — venue matching: perfect.
    let venues = nh_match(&venue_pub_a, &pub_same, &pub_venue_b, PathAgg::Relative).unwrap();
    let venues = select(&venues, &Selection::Threshold(0.5));
    // n:1 — publication matching via venues: confined to same venue.
    let venue_same = venues.clone();
    let pub_candidates = nh_match(
        &venue_pub_a.inverse().named("PubVenueA"),
        &venue_same,
        &venue_pub_a.clone().named("VenuePubB"),
        PathAgg::Relative,
    )
    .unwrap();
    // n:m — author matching via publications.
    let author_pub = Mapping::association(
        "AuthorPub",
        "publications of author",
        LdsId(2),
        LdsId(1),
        MappingTable::from_triples([
            (0, 0, 1.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (3, 5, 1.0),
        ]),
    );
    let authors = nh_match(
        &author_pub,
        &pub_same,
        &author_pub.inverse().named("PubAuthor"),
        PathAgg::Relative,
    )
    .unwrap();

    let mut r = Report::new(
        "Figure 10. Neighborhood matching w.r.t. semantic cardinality",
        vec!["Case", "Candidates", "All pairs", "Note"],
    );
    r.row(
        "1:n (venue-publication)",
        vec![
            venues.len().to_string(),
            "4".into(),
            "perfect 1:1 venue mapping".into(),
        ],
    );
    r.row(
        "n:1 (publication-venue)",
        vec![
            pub_candidates.len().to_string(),
            "36".into(),
            "confined to same-venue pairs".into(),
        ],
    );
    r.row(
        "n:m (author-publication)",
        vec![
            authors.len().to_string(),
            "16".into(),
            "authors sharing publications".into(),
        ],
    );
    assert_eq!(venues.len(), 2);
    assert!(pub_candidates.len() < 36);
    assert!(authors.len() < 16);
    r
}

/// Figure 11: the n:m match workflow — nhMatch and attrMatch executed in
/// parallel, merged, then selected (the Table 6 pipeline on the real
/// scenario).
pub fn fig11(ctx: &EvalContext) -> Report {
    let gold = &ctx.scenario.gold.author_dblp_acm;
    let nh = crate::experiments::table6::nh_mapping(ctx);
    let attr = ctx.author_name_dblp_acm();
    let merged = crate::experiments::table6::merged_mapping(ctx);

    let mut r = Report::new(
        "Figure 11. Match workflow for the n:m case (authors)",
        vec!["Stage", "Correspondences", "Quality"],
    );
    let q = |m: &Mapping| MatchQuality::evaluate(m, gold).to_string();
    r.row(
        "nhMatch(AuthorPub, PubSame, PubAuthor)",
        vec![nh.len().to_string(), q(&nh)],
    );
    r.row(
        "attrMatch(name, trigram, 0.8)",
        vec![attr.len().to_string(), q(&attr)],
    );
    r.row(
        "merge -> select",
        vec![merged.len().to_string(), q(&merged)],
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_demonstrates_hazards() {
        let r = fig7();
        assert!(r.render().contains("4 (instead of 2)"));
    }

    #[test]
    fn fig8_hub_exact() {
        let r = fig8();
        assert!(r.render().contains("F=100.0%"));
    }

    #[test]
    fn fig10_confinement() {
        let r = fig10();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn fig11_runs_pipeline() {
        let ctx = EvalContext::small();
        let r = fig11(&ctx);
        assert_eq!(r.rows.len(), 3);
    }
}
