//! `moma` — command-line object matching.
//!
//! ```text
//! moma run SCRIPT.ifs \
//!     --source data/dblp_pubs.tsv --source data/acm_pubs.tsv \
//!     --assoc  PubVenue=Publication@DBLP:Venue@DBLP:data/pub_venue.tsv \
//!     --out    result.tsv
//! ```
//!
//! Sources are TSV files with a `#source Type@PDS` directive and an
//! `id  attr:kind...` header (see `moma_ifuice::loader`); associations
//! are two-column id TSVs registered in the mapping repository under the
//! given name; the script is iFuice (see `moma_ifuice::script`). The
//! script's returned mapping is written as `domain_id  range_id  sim`.

use std::process::ExitCode;

use moma_core::MappingRepository;
use moma_ifuice::loader;
use moma_ifuice::script::run_script_with;
use moma_model::SourceRegistry;

const USAGE: &str = "\
usage:
  moma run <script.ifs> [--source <file.tsv>]... \\
           [--assoc <Name=DomainLds:RangeLds:file.tsv>]... \\
           [--threads <n>] [--out <file>]
  moma check <script.ifs>         parse a script and report errors
  moma help

A source file starts with `#source Type@PDS` and a header row
`id<TAB>attr:kind...` (kinds: text, list, int, year, real).
An association file holds `domain_id<TAB>range_id[<TAB>sim]` rows and is
stored in the repository under Name (scripts reference it as PDS.Member
or via get(\"Name\")).

--threads caps the worker threads used by matchers, joins and workflow
steps (overrides MOMA_THREADS; 1 = sequential; default: MOMA_THREADS or
one thread per CPU). Results are identical at every thread count.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match cmd_run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("check") => match cmd_check(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing script path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match moma_ifuice::script::parser::parse(&text) {
        Ok(script) => {
            println!("{path}: ok ({} statements)", script.stmts.len());
            Ok(())
        }
        Err(e) => Err(format!("{path}: {e}")),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut script_path: Option<&str> = None;
    let mut sources: Vec<&str> = Vec::new();
    let mut assocs: Vec<&str> = Vec::new();
    let mut out: Option<&str> = None;
    let mut threads: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--source" => sources.push(it.next().ok_or("--source needs a file")?),
            "--assoc" => assocs.push(it.next().ok_or("--assoc needs a spec")?),
            "--out" => out = Some(it.next().ok_or("--out needs a file")?),
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--threads: `{n}` is not a number"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            other if script_path.is_none() && !other.starts_with("--") => script_path = Some(other),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let script_path = script_path.ok_or("missing script path")?;
    if sources.is_empty() {
        return Err("at least one --source is required".into());
    }

    // Load sources.
    let mut registry = SourceRegistry::new();
    for path in &sources {
        let id = loader::load_source(&mut registry, path).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "loaded {} ({} instances) from {path}",
            registry.lds(id).name(),
            registry.lds(id).len()
        );
    }

    // Load associations: Name=DomainLds:RangeLds:file.tsv
    let repository = MappingRepository::new();
    for spec in &assocs {
        let (name, rest) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --assoc `{spec}`"))?;
        let mut parts = rest.splitn(3, ':');
        let (Some(dom), Some(ran), Some(file)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("bad --assoc `{spec}` (expected Name=Dom:Ran:file)"));
        };
        let d = registry.resolve(dom).map_err(|e| e.to_string())?;
        let r = registry.resolve(ran).map_err(|e| e.to_string())?;
        let mapping = loader::load_association(&registry, file, name, name, d, r)
            .map_err(|e| format!("{file}: {e}"))?;
        eprintln!(
            "loaded association {name} ({} rows) from {file}",
            mapping.len()
        );
        repository.store_as(name, mapping);
    }

    // Run the script.
    let text = std::fs::read_to_string(script_path).map_err(|e| format!("{script_path}: {e}"))?;
    let par = match threads {
        Some(n) => moma_core::exec::Parallelism::new(n),
        None => moma_core::exec::Parallelism::from_env(),
    };
    let value = run_script_with(&text, &registry, &repository, par).map_err(|e| e.to_string())?;
    let Some(mapping) = value.as_mapping() else {
        return Err("script did not return a mapping".into());
    };
    eprintln!(
        "script returned `{}` with {} correspondences",
        mapping.name,
        mapping.len()
    );

    let tsv = loader::mapping_to_tsv(&registry, mapping);
    match out {
        Some(path) => {
            std::fs::write(path, tsv).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{tsv}"),
    }
    Ok(())
}
