//! `moma` — command-line object matching.
//!
//! ```text
//! moma run SCRIPT.ifs \
//!     --source data/dblp_pubs.tsv --source data/acm_pubs.tsv \
//!     --assoc  PubVenue=Publication@DBLP:Venue@DBLP:data/pub_venue.tsv \
//!     --out    result.tsv
//! ```
//!
//! Sources are TSV files with a `#source Type@PDS` directive and an
//! `id  attr:kind...` header (see `moma_ifuice::loader`); associations
//! are two-column id TSVs registered in the mapping repository under the
//! given name; the script is iFuice (see `moma_ifuice::script`). The
//! script's returned mapping is written as `domain_id  range_id  sim`.

use std::process::ExitCode;

use moma_core::MappingRepository;
use moma_ifuice::loader;
use moma_model::SourceRegistry;

const USAGE: &str = "\
usage:
  moma run <script.ifs> [--source <file.tsv>]... \\
           [--assoc <Name=DomainLds:RangeLds:file.tsv>]... \\
           [--threads <n>] [--blocking <strategy>] [--out <file>]
  moma check <script.ifs>         parse a script and report errors
  moma delta [--steps <n>] [--churn <f>] [--seed <n>] [--scale small|paper] \\
             [--threads <n>] [--blocking <strategy>] [--no-verify]
                                  incremental-matching demo on a generated
                                  evolving scenario (see below)
  moma serve [--addr <host:port>] [--source <file.tsv>]... \\
             [--scale small|paper] [--seed <n>] [--threads <n>] \\
             [--wal <dir>] [--replay] [--shards <n>] \\
             [--segment-records <n>] [--segment-bytes <n>] \\
             [--checkpoint-every-records <n>] [--checkpoint-every-bytes <n>] \\
             [--max-connections <n>] [--max-pending-writes <n>] \\
             [--max-pending-reads <n>] [--retry-after-ms <n>]
                                  long-lived matching service (see below)
  moma help

A source file starts with `#source Type@PDS` and a header row
`id<TAB>attr:kind...` (kinds: text, list, int, year, real).
An association file holds `domain_id<TAB>range_id[<TAB>sim]` rows and is
stored in the repository under Name (scripts reference it as PDS.Member
or via get(\"Name\")).

--threads caps the worker threads used by matchers, joins and workflow
steps (overrides MOMA_THREADS; 1 = sequential; default: MOMA_THREADS or
one thread per CPU). Results are identical at every thread count.

--blocking pins the candidate-generation strategy of every attribute
matcher: `threshold` (exact T-occurrence pruning — identical results to
all-pairs, pruned before scoring), `trigram-prefix` (fast, lossy for
non-trigram measures) or `all-pairs` (no pruning). Default: `auto`,
threshold-exact for q-gram measures and trigram-prefix otherwise.

`moma delta` generates the synthetic DBLP/ACM/GS scenario, matches
Publication@DBLP x Publication@GS once, then streams seeded source
deltas (churn fraction of instances per step) through the incremental
delta-matching engine, printing per-step timings of incremental vs full
re-match. Unless --no-verify is given every step asserts the patched
mapping is bit-identical to a full re-match.

`moma serve` answers match/compose/query/batch_query/delta/batch_delta/
checkpoint/stats/dump/shutdown commands over a length-prefixed JSON
frame protocol (default address 127.0.0.1:7207; drive it with the
`moma_load` binary). Sources come from --source TSV files, or from the
generated evolving scenario when none are given (--scale/--seed as in
`moma delta`). With --wal DIR every mutating command is appended to an
fsync'd, segmented write-ahead log before it is applied; segments rotate
at --segment-records / --segment-bytes (default 8 MiB). A `checkpoint`
command (or the --checkpoint-every-records / --checkpoint-every-bytes
auto thresholds, serviced by a background thread off the delta path)
publishes an atomic state dump and prunes covered segments. `--replay`
recovers an existing log directory on startup: the newest valid
checkpoint is loaded and only the WAL suffix after it is re-executed,
restoring the pre-crash repository bit-identically.

--shards N partitions the service across N independent engines, each
with its own WAL directory (`<dir>/shard.<i>` under --wal), checkpoint
chain and admission budgets. Mutating commands are placed by source
ownership (an explicit `shard` field on `match` pins one), queries
route to the shard owning the mapping, `stats` merges a per-shard +
aggregate view, and recovery replays every shard's WAL independently
(see docs/ARCHITECTURE.md). Default: 1 — the single-engine layout and
wire behavior are exactly as before.

Admission control: --max-connections (default 256) caps concurrent
connections — excess connections get one `busy` frame and are closed;
--max-pending-writes / --max-pending-reads (defaults 64 / 256) bound
in-flight commands per class — excess requests get an `overloaded`
response carrying a --retry-after-ms hint (default 100) and the
connection stays usable.";

/// Parse a `--blocking` value: `auto` (None) or a concrete strategy.
fn parse_blocking(name: &str) -> Result<Option<moma_core::blocking::Blocking>, String> {
    if name.eq_ignore_ascii_case("auto") {
        return Ok(None);
    }
    moma_core::blocking::Blocking::parse(name)
        .map(Some)
        .ok_or_else(|| {
            format!("--blocking must be auto, threshold, trigram-prefix or all-pairs, got `{name}`")
        })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match cmd_run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("check") => match cmd_check(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("delta") => match cmd_delta(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("serve") => match cmd_serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing script path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match moma_ifuice::script::parser::parse(&text) {
        Ok(script) => {
            println!("{path}: ok ({} statements)", script.stmts.len());
            Ok(())
        }
        Err(e) => Err(format!("{path}: {e}")),
    }
}

/// `moma delta`: demo + sanity harness for the incremental matching
/// engine on the generated evolving scenario.
fn cmd_delta(args: &[String]) -> Result<(), String> {
    use moma_core::blocking::Blocking;
    use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
    use moma_datagen::{DeltaStream, EvolveConfig, Scenario, WorldConfig};
    use moma_simstring::SimFn;
    use std::time::Instant;

    let mut steps = 10usize;
    let mut churn = 0.01f64;
    let mut seed = 7u64;
    let mut scale = "small".to_owned();
    let mut threads: Option<usize> = None;
    let mut verify = true;
    let mut blocking: Option<Blocking> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--steps" => {
                steps = num("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--churn" => {
                churn = num("--churn")?
                    .parse()
                    .map_err(|e| format!("--churn: {e}"))?
            }
            "--seed" => seed = num("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scale" => scale = num("--scale")?,
            "--threads" => {
                threads = Some(
                    num("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--no-verify" => verify = false,
            "--blocking" => blocking = parse_blocking(&num("--blocking")?)?,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be in [0, 1]".into());
    }
    let mut cfg = match scale.as_str() {
        "small" => WorldConfig::small(),
        "paper" => WorldConfig::paper_scale(),
        other => return Err(format!("--scale must be small or paper, got `{other}`")),
    };
    cfg.seed = seed;
    let par = match threads {
        Some(0) => return Err("--threads must be at least 1".into()),
        Some(n) => moma_core::exec::Parallelism::new(n),
        None => moma_core::exec::Parallelism::from_env(),
    };

    eprintln!("generating {scale} scenario (seed {seed})...");
    let s = Scenario::generate(cfg);
    let mut registry = s.registry;
    let (dblp, gs) = (s.ids.pub_dblp, s.ids.pub_gs);
    // Default: threshold-exact blocking (trigram is a q-gram measure).
    let blocking = blocking.unwrap_or_else(|| Blocking::auto_for(&SimFn::Trigram));
    let matcher =
        AttributeMatcher::new("title", "title", SimFn::Trigram, 0.75).with_blocking(blocking);

    let t0 = Instant::now();
    let ctx = MatchContext::new(&registry).with_parallelism(par);
    let mut state = matcher.prime(&ctx, dblp, gs).unwrap();
    let prime_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "primed {} x {}: {} correspondences in {prime_ms:.1} ms",
        registry.lds(dblp).name(),
        registry.lds(gs).name(),
        state.mapping().len(),
    );

    let mut stream = DeltaStream::new(
        EvolveConfig {
            seed,
            ..EvolveConfig::with_churn(churn)
        },
        gs,
    );
    println!("step\t|delta|\trescored\trows\tincr_ms\tfull_ms\tspeedup");
    let mut incr_total = 0.0f64;
    let mut full_total = 0.0f64;
    for step in 1..=steps {
        let delta = stream.next_delta(&registry);
        let applied = registry
            .apply_delta(&delta)
            .map_err(|e| format!("apply_delta: {e}"))?;
        let ctx = MatchContext::new(&registry).with_parallelism(par);

        let t = Instant::now();
        state.apply(&ctx, &[&applied]).map_err(|e| e.to_string())?;
        let incr_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let full = matcher.execute(&ctx, dblp, gs).map_err(|e| e.to_string())?;
        let full_ms = t.elapsed().as_secs_f64() * 1e3;

        if verify && state.mapping().table.rows() != full.table.rows() {
            return Err(format!(
                "step {step}: incremental result diverged from full re-match"
            ));
        }
        incr_total += incr_ms;
        full_total += full_ms;
        println!(
            "{step}\t{}\t{}\t{}\t{incr_ms:.2}\t{full_ms:.2}\t{:.1}x",
            delta.len(),
            state.last_rescored,
            state.mapping().len(),
            full_ms / incr_ms.max(1e-9),
        );
    }
    eprintln!(
        "totals: incremental {incr_total:.1} ms vs full {full_total:.1} ms ({:.1}x){}",
        full_total / incr_total.max(1e-9),
        if verify {
            "; all steps verified bit-identical"
        } else {
            ""
        }
    );
    Ok(())
}

/// `moma serve`: the long-lived matching service (see `moma-server`).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use moma_datagen::{Scenario, WorldConfig};

    let mut addr = "127.0.0.1:7207".to_owned();
    let mut sources: Vec<&str> = Vec::new();
    let mut scale = "small".to_owned();
    let mut seed = 7u64;
    let mut threads: Option<usize> = None;
    let mut wal: Option<String> = None;
    let mut replay = false;
    let mut shards = 1usize;
    let mut policy = moma_server::DurabilityPolicy::default();
    let mut limits = moma_server::Limits {
        debug_commands: std::env::var("MOMA_DEBUG_COMMANDS").as_deref() == Ok("1"),
        ..moma_server::Limits::default()
    };

    fn num_flag(flag: &str, v: Option<&String>) -> Result<u64, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse()
            .map_err(|_| format!("{flag}: `{v}` is not a number"))
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--source" => sources.push(it.next().ok_or("--source needs a file")?),
            "--scale" => scale = it.next().ok_or("--scale needs a value")?.clone(),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v
                    .parse()
                    .map_err(|_| format!("--seed: `{v}` is not a number"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--wal" => wal = Some(it.next().ok_or("--wal needs a directory")?.clone()),
            "--replay" => replay = true,
            "--shards" => {
                let v = it.next().ok_or("--shards needs a count")?;
                shards = v
                    .parse()
                    .map_err(|_| format!("--shards: `{v}` is not a number"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--segment-records" => policy.segment_records = num_flag(arg, it.next())?,
            "--segment-bytes" => policy.segment_bytes = num_flag(arg, it.next())?,
            "--checkpoint-every-records" => {
                policy.checkpoint_every_records = num_flag(arg, it.next())?;
            }
            "--checkpoint-every-bytes" => {
                policy.checkpoint_every_bytes = num_flag(arg, it.next())?;
            }
            "--max-connections" => limits.max_connections = num_flag(arg, it.next())?,
            "--max-pending-writes" => limits.max_pending_writes = num_flag(arg, it.next())?,
            "--max-pending-reads" => limits.max_pending_reads = num_flag(arg, it.next())?,
            "--retry-after-ms" => limits.retry_after_ms = num_flag(arg, it.next())?,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if wal.is_none()
        && (replay
            || policy.segment_records != moma_server::DurabilityPolicy::default().segment_records
            || policy.segment_bytes != moma_server::DurabilityPolicy::default().segment_bytes
            || policy.checkpoint_every_records != 0
            || policy.checkpoint_every_bytes != 0)
    {
        return Err("--replay and the --segment-*/--checkpoint-every-* flags require --wal".into());
    }

    let registry = if sources.is_empty() {
        let mut cfg = match scale.as_str() {
            "small" => WorldConfig::small(),
            "paper" => WorldConfig::paper_scale(),
            other => return Err(format!("--scale must be small or paper, got `{other}`")),
        };
        cfg.seed = seed;
        eprintln!("moma serve: generating {scale} scenario (seed {seed})...");
        Scenario::generate(cfg).registry
    } else {
        let mut registry = SourceRegistry::new();
        for path in &sources {
            let id =
                loader::load_source(&mut registry, path).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "loaded {} ({} instances) from {path}",
                registry.lds(id).name(),
                registry.lds(id).len()
            );
        }
        registry
    };

    let par = match threads {
        Some(n) => moma_core::exec::Parallelism::new(n),
        None => moma_core::exec::Parallelism::from_env(),
    };
    // One engine per shard, each booted from an identical clone of the
    // full source registry (so arena ids agree across shards) with its
    // own WAL directory `<wal>/shard.<i>` and checkpoint chain. With
    // one shard (the default) the WAL lives directly in `<wal>` —
    // exactly the pre-shard layout.
    let mut engines = Vec::with_capacity(shards);
    for i in 0..shards {
        let mut engine = moma_server::Engine::new(registry.clone(), par);
        if let Some(base) = &wal {
            let path = if shards == 1 {
                base.clone()
            } else {
                format!("{base}/shard.{i}")
            };
            if replay {
                let summary = engine.recover(std::path::Path::new(&path), policy)?;
                eprintln!(
                    "moma serve: shard {i}: recovered from {path}: checkpoint seq {}, replayed \
                     {} WAL record(s), skipped {} covered record(s), {} segment(s){}{}",
                    summary.checkpoint_seq,
                    summary.replayed,
                    summary.skipped,
                    summary.segments,
                    if summary.dropped_bytes > 0 {
                        format!(" (dropped {}-byte torn tail)", summary.dropped_bytes)
                    } else {
                        String::new()
                    },
                    if summary.failed > 0 {
                        format!(
                            " ({} command(s) re-failed deterministically)",
                            summary.failed
                        )
                    } else {
                        String::new()
                    },
                );
            } else {
                engine
                    .wal_create(std::path::Path::new(&path), policy)
                    .map_err(|e| format!("--wal {path}: {e}"))?;
                eprintln!("moma serve: shard {i}: write-ahead log directory at {path}");
            }
        }
        engines.push(engine);
    }
    moma_server::run_sharded(engines, &addr, limits).map_err(|e| format!("serve {addr}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut script_path: Option<&str> = None;
    let mut sources: Vec<&str> = Vec::new();
    let mut assocs: Vec<&str> = Vec::new();
    let mut out: Option<&str> = None;
    let mut threads: Option<usize> = None;
    let mut blocking: Option<moma_core::blocking::Blocking> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--source" => sources.push(it.next().ok_or("--source needs a file")?),
            "--assoc" => assocs.push(it.next().ok_or("--assoc needs a spec")?),
            "--out" => out = Some(it.next().ok_or("--out needs a file")?),
            "--blocking" => {
                blocking = parse_blocking(it.next().ok_or("--blocking needs a strategy")?)?;
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--threads: `{n}` is not a number"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            other if script_path.is_none() && !other.starts_with("--") => script_path = Some(other),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let script_path = script_path.ok_or("missing script path")?;
    if sources.is_empty() {
        return Err("at least one --source is required".into());
    }

    // Load sources.
    let mut registry = SourceRegistry::new();
    for path in &sources {
        let id = loader::load_source(&mut registry, path).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "loaded {} ({} instances) from {path}",
            registry.lds(id).name(),
            registry.lds(id).len()
        );
    }

    // Load associations: Name=DomainLds:RangeLds:file.tsv
    let repository = MappingRepository::new();
    for spec in &assocs {
        let (name, rest) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --assoc `{spec}`"))?;
        let mut parts = rest.splitn(3, ':');
        let (Some(dom), Some(ran), Some(file)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("bad --assoc `{spec}` (expected Name=Dom:Ran:file)"));
        };
        let d = registry.resolve(dom).map_err(|e| e.to_string())?;
        let r = registry.resolve(ran).map_err(|e| e.to_string())?;
        let mapping = loader::load_association(&registry, file, name, name, d, r)
            .map_err(|e| format!("{file}: {e}"))?;
        eprintln!(
            "loaded association {name} ({} rows) from {file}",
            mapping.len()
        );
        repository.store_as(name, mapping);
    }

    // Run the script.
    let text = std::fs::read_to_string(script_path).map_err(|e| format!("{script_path}: {e}"))?;
    let par = match threads {
        Some(n) => moma_core::exec::Parallelism::new(n),
        None => moma_core::exec::Parallelism::from_env(),
    };
    let script = moma_ifuice::script::parser::parse(&text).map_err(|e| e.to_string())?;
    let mut interp =
        moma_ifuice::script::Interpreter::new(&registry, &repository).with_parallelism(par);
    if let Some(blocking) = blocking {
        interp = interp.with_blocking(blocking);
    }
    let value = interp.run(&script).map_err(|e| e.to_string())?;
    let Some(mapping) = value.as_mapping() else {
        return Err("script did not return a mapping".into());
    };
    eprintln!(
        "script returned `{}` with {} correspondences",
        mapping.name,
        mapping.len()
    );

    let tsv = loader::mapping_to_tsv(&registry, mapping);
    match out {
        Some(path) => {
            std::fs::write(path, tsv).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{tsv}"),
    }
    Ok(())
}
