//! # moma-table — relational mapping-table engine
//!
//! MOMA represents every instance mapping "by a mapping table with three
//! columns. Each row represents a correspondence consisting of the ids of
//! the domain and range objects and the corresponding similarity value"
//! (paper Definition 1). The paper further notes that mapping composition
//! "can be computed very efficiently in our implementation by joining the
//! mapping tables" (Section 5.3).
//!
//! This crate is that storage and join engine:
//!
//! * [`MappingTable`] — a dense vector of [`Correspondence`] rows
//!   (`u32` domain index, `u32` range index, `f64` similarity),
//! * [`Adjacency`] — a CSR-style index over either column, providing both
//!   neighbor lookup and the *degree* counts `n(a)` / `n(b)` needed by the
//!   paper's Relative similarity functions (Figure 5),
//! * [`join`] — hash, sort-merge and nested-loop join strategies, each
//!   with a sharded parallel variant producing bit-identical output,
//! * [`exec`] — the deterministic sharded-execution layer
//!   ([`Parallelism`]) behind the parallel joins and matchers,
//! * [`agg`] — grouped path aggregation for the compose operator,
//! * [`gram_index`] — an incrementally maintainable inverted gram index
//!   (tombstoned removal + amortized compaction) backing the blocking
//!   index of `moma-core` and its delta maintenance,
//! * [`size_index`] — the size-bucketed variant with CPMerge-style
//!   count-filtered candidate merging, backing threshold-exact blocking,
//! * [`postings`] — the block-compressed posting-list representation
//!   (per-block maxima, galloping intersection, chunked membership
//!   lanes) both gram indexes store their id lists in,
//! * [`tsv`] — plain-text persistence of mapping tables,
//! * [`hash`] — a fast FxHash-style hasher used for all internal maps
//!   (integer-keyed hashing is on the hot path of every join).
//!
//! Object ids are *local instance indexes* of the owning logical data
//! source (see `moma-model`); a row is therefore 16 bytes and tables with
//! millions of correspondences stay cache-friendly.

pub mod agg;
pub mod exec;
pub mod gram_index;
pub mod hash;
pub mod index;
pub mod interner;
pub mod join;
pub mod mapping_table;
pub mod postings;
pub mod size_index;
pub mod stats;
pub mod tsv;

pub use exec::Parallelism;
pub use gram_index::{GramIndex, GramIndexDelta};
pub use hash::{FxHashMap, FxHashSet};
pub use index::Adjacency;
pub use interner::StringInterner;
pub use mapping_table::{Correspondence, MappingTable};
pub use postings::BlockPostings;
pub use size_index::SizeBucketedIndex;
pub use stats::TableStats;
