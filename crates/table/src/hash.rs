//! A fast, non-cryptographic hasher in the style of rustc's FxHash.
//!
//! Join and aggregation inner loops hash `u32`/`u64` keys billions of
//! times across a benchmark run; SipHash (std's default) is needlessly
//! slow there and HashDoS resistance is irrelevant for trusted in-process
//! data. This is the classic Fx multiply-rotate mix, implemented locally
//! to keep the workspace dependency-free.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Construct an empty [`FxHashMap`] with capacity.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Construct an empty [`FxHashSet`] with capacity.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u32), hash_one(2u32));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
        assert_ne!(hash_one("ab"), hash_one("ba"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = fx_map_with_capacity(4);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = fx_set_with_capacity(4);
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn byte_tail_handling() {
        // 9 bytes exercises the chunk + remainder path.
        assert_ne!(hash_one([1u8; 9]), hash_one([2u8; 9]));
        let mut a = [1u8; 9];
        a[8] = 3;
        assert_ne!(hash_one([1u8; 9]), hash_one(a));
    }

    #[test]
    fn spread_over_small_ints() {
        // Low-entropy sequential keys should not collide.
        let hashes: std::collections::HashSet<u64> = (0u32..1000).map(hash_one).collect();
        assert_eq!(hashes.len(), 1000);
    }
}
