//! The three-column mapping table (paper Definition 1).

use crate::hash::{fx_map_with_capacity, FxHashMap};

/// One row of a mapping table: a correspondence `(a, b, s)`.
///
/// `domain` and `range` are local instance indexes of the domain and range
/// LDS; `sim` is the similarity/strength `s ∈ [0,1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correspondence {
    /// Domain object (local index in the domain LDS).
    pub domain: u32,
    /// Range object (local index in the range LDS).
    pub range: u32,
    /// Similarity value in `[0, 1]`.
    pub sim: f64,
}

impl Correspondence {
    /// Construct a correspondence.
    pub fn new(domain: u32, range: u32, sim: f64) -> Self {
        Self { domain, range, sim }
    }
}

/// A mapping table: the set of correspondences of one instance mapping.
///
/// The table enforces *pair uniqueness* lazily: [`MappingTable::push`]
/// appends freely, and [`MappingTable::dedup_max`] (called by all mapping
/// operators before emitting results) collapses duplicate `(a, b)` pairs
/// keeping the maximum similarity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappingTable {
    rows: Vec<Correspondence>,
}

impl MappingTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty table with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            rows: Vec::with_capacity(cap),
        }
    }

    /// Build from raw rows, deduplicating `(a,b)` pairs (max similarity).
    pub fn from_rows(rows: Vec<Correspondence>) -> Self {
        let mut t = Self { rows };
        t.dedup_max();
        t
    }

    /// Build from `(domain, range, sim)` triples, deduplicating.
    pub fn from_triples(triples: impl IntoIterator<Item = (u32, u32, f64)>) -> Self {
        Self::from_rows(
            triples
                .into_iter()
                .map(|(a, b, s)| Correspondence::new(a, b, s))
                .collect(),
        )
    }

    /// Append one correspondence (no dedup).
    pub fn push(&mut self, domain: u32, range: u32, sim: f64) {
        self.rows.push(Correspondence::new(domain, range, sim));
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row slice.
    pub fn rows(&self) -> &[Correspondence] {
        &self.rows
    }

    /// Iterate rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Correspondence> {
        self.rows.iter()
    }

    /// Similarity of pair `(a, b)`, if present (linear scan; use
    /// [`crate::Adjacency`] for repeated lookups).
    pub fn sim_of(&self, domain: u32, range: u32) -> Option<f64> {
        self.rows
            .iter()
            .find(|c| c.domain == domain && c.range == range)
            .map(|c| c.sim)
    }

    /// Sort rows by `(domain, range)`.
    pub fn sort_by_domain(&mut self) {
        self.rows.sort_unstable_by_key(|x| (x.domain, x.range));
    }

    /// Sort rows by `(range, domain)`.
    pub fn sort_by_range(&mut self) {
        self.rows.sort_unstable_by_key(|x| (x.range, x.domain));
    }

    /// Collapse duplicate `(a,b)` pairs keeping the maximum similarity;
    /// leaves the table sorted by `(domain, range)`.
    pub fn dedup_max(&mut self) {
        if self.rows.len() < 2 {
            return;
        }
        self.sort_by_domain();
        let mut write = 0usize;
        for read in 1..self.rows.len() {
            let (prev, cur) = (self.rows[write], self.rows[read]);
            if prev.domain == cur.domain && prev.range == cur.range {
                if cur.sim > prev.sim {
                    self.rows[write].sim = cur.sim;
                }
            } else {
                write += 1;
                self.rows[write] = cur;
            }
        }
        self.rows.truncate(write + 1);
    }

    /// Swap domain and range columns (the inverse mapping table).
    pub fn inverted(&self) -> MappingTable {
        let mut rows: Vec<Correspondence> = self
            .rows
            .iter()
            .map(|c| Correspondence::new(c.range, c.domain, c.sim))
            .collect();
        rows.sort_unstable_by_key(|x| (x.domain, x.range));
        MappingTable { rows }
    }

    /// Keep only rows matching the predicate.
    pub fn retain(&mut self, mut pred: impl FnMut(&Correspondence) -> bool) {
        self.rows.retain(|c| pred(c));
    }

    /// New table with only rows matching the predicate.
    pub fn filtered(&self, mut pred: impl FnMut(&Correspondence) -> bool) -> MappingTable {
        MappingTable {
            rows: self.rows.iter().copied().filter(|c| pred(c)).collect(),
        }
    }

    /// Distinct domain objects (count).
    pub fn distinct_domains(&self) -> usize {
        let mut seen = crate::hash::fx_set_with_capacity(self.rows.len());
        self.rows.iter().filter(|c| seen.insert(c.domain)).count()
    }

    /// Distinct range objects (count).
    pub fn distinct_ranges(&self) -> usize {
        let mut seen = crate::hash::fx_set_with_capacity(self.rows.len());
        self.rows.iter().filter(|c| seen.insert(c.range)).count()
    }

    /// Map from domain object to its number of correspondences — the
    /// `n(a)` of the paper's Relative functions (Figure 5).
    pub fn domain_degrees(&self) -> FxHashMap<u32, u32> {
        let mut m = fx_map_with_capacity(self.rows.len());
        for c in &self.rows {
            *m.entry(c.domain).or_insert(0u32) += 1;
        }
        m
    }

    /// Map from range object to its number of correspondences — `n(b)`.
    pub fn range_degrees(&self) -> FxHashMap<u32, u32> {
        let mut m = fx_map_with_capacity(self.rows.len());
        for c in &self.rows {
            *m.entry(c.range).or_insert(0u32) += 1;
        }
        m
    }

    /// The set of `(domain, range)` pairs as a hash set.
    pub fn pair_set(&self) -> crate::hash::FxHashSet<(u32, u32)> {
        let mut s = crate::hash::fx_set_with_capacity(self.rows.len());
        for c in &self.rows {
            s.insert((c.domain, c.range));
        }
        s
    }

    /// Consume into the raw row vector.
    pub fn into_rows(self) -> Vec<Correspondence> {
        self.rows
    }
}

impl FromIterator<(u32, u32, f64)> for MappingTable {
    fn from_iter<I: IntoIterator<Item = (u32, u32, f64)>>(iter: I) -> Self {
        MappingTable::from_triples(iter)
    }
}

impl<'a> IntoIterator for &'a MappingTable {
    type Item = &'a Correspondence;
    type IntoIter = std::slice::Iter<'a, Correspondence>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_iter() {
        let mut t = MappingTable::new();
        assert!(t.is_empty());
        t.push(0, 1, 0.6);
        t.push(2, 3, 1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn dedup_keeps_max() {
        let t = MappingTable::from_triples([(0, 1, 0.4), (0, 1, 0.9), (0, 1, 0.7), (1, 1, 0.2)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.sim_of(0, 1), Some(0.9));
        assert_eq!(t.sim_of(1, 1), Some(0.2));
    }

    #[test]
    fn dedup_on_sorted_single() {
        let mut t = MappingTable::new();
        t.push(5, 5, 0.5);
        t.dedup_max();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn inverted_swaps() {
        let t = MappingTable::from_triples([(0, 7, 0.5), (1, 3, 0.8)]);
        let inv = t.inverted();
        assert_eq!(inv.sim_of(7, 0), Some(0.5));
        assert_eq!(inv.sim_of(3, 1), Some(0.8));
        assert_eq!(inv.sim_of(0, 7), None);
    }

    #[test]
    fn double_inversion_is_identity() {
        let t = MappingTable::from_triples([(0, 7, 0.5), (1, 3, 0.8), (2, 2, 1.0)]);
        assert_eq!(t.inverted().inverted(), t);
    }

    #[test]
    fn degrees_match_paper_fig6() {
        // map1 of Figure 6: v1->{p1,p2,p3}, v2->{p2,p3}.
        let t = MappingTable::from_triples([
            (1, 101, 1.0),
            (1, 102, 1.0),
            (1, 103, 0.6),
            (2, 102, 0.6),
            (2, 103, 1.0),
        ]);
        let deg = t.domain_degrees();
        assert_eq!(deg[&1], 3);
        assert_eq!(deg[&2], 2);
        let rdeg = t.range_degrees();
        assert_eq!(rdeg[&102], 2);
    }

    #[test]
    fn distinct_counts() {
        let t = MappingTable::from_triples([(0, 1, 0.5), (0, 2, 0.5), (1, 2, 0.5)]);
        assert_eq!(t.distinct_domains(), 2);
        assert_eq!(t.distinct_ranges(), 2);
    }

    #[test]
    fn filter_and_retain() {
        let mut t = MappingTable::from_triples([(0, 1, 0.5), (1, 2, 0.9)]);
        let hi = t.filtered(|c| c.sim >= 0.8);
        assert_eq!(hi.len(), 1);
        t.retain(|c| c.sim < 0.8);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0].domain, 0);
    }

    #[test]
    fn sort_orders() {
        let mut t = MappingTable::from_triples([(2, 0, 0.1), (0, 2, 0.2), (1, 1, 0.3)]);
        t.sort_by_range();
        let ranges: Vec<u32> = t.iter().map(|c| c.range).collect();
        assert_eq!(ranges, vec![0, 1, 2]);
        t.sort_by_domain();
        let domains: Vec<u32> = t.iter().map(|c| c.domain).collect();
        assert_eq!(domains, vec![0, 1, 2]);
    }

    #[test]
    fn from_iterator() {
        let t: MappingTable = [(0u32, 1u32, 0.5f64)].into_iter().collect();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pair_set_contents() {
        let t = MappingTable::from_triples([(0, 1, 0.5), (1, 2, 0.9)]);
        let s = t.pair_set();
        assert!(s.contains(&(0, 1)));
        assert!(!s.contains(&(1, 0)));
    }
}
