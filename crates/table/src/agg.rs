//! Grouped aggregation of compose paths.
//!
//! The compose operator reduces all paths `(a, c_i, b)` reaching the same
//! output pair `(a, b)` into one similarity value. The aggregator keeps,
//! per pair, the running `min`, `max`, `sum` and `count` of the per-path
//! similarities — sufficient statistics for every aggregation function `g`
//! of the paper (Avg, Min, Max, RelativeLeft/Right, Relative; Figure 5).

use crate::hash::{fx_map_with_capacity, FxHashMap};

/// Sufficient statistics for the path similarities of one output pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStats {
    /// Smallest per-path similarity.
    pub min: f64,
    /// Largest per-path similarity.
    pub max: f64,
    /// Sum of per-path similarities — the `s(a,b)` of Figure 5.
    pub sum: f64,
    /// Number of compose paths.
    pub count: u32,
}

impl PathStats {
    fn one(sim: f64) -> Self {
        Self {
            min: sim,
            max: sim,
            sum: sim,
            count: 1,
        }
    }

    fn add(&mut self, sim: f64) {
        self.min = self.min.min(sim);
        self.max = self.max.max(sim);
        self.sum += sim;
        self.count += 1;
    }

    /// Mean path similarity.
    pub fn avg(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// Accumulates per-pair path statistics.
#[derive(Debug, Default)]
pub struct PairAggregator {
    pairs: FxHashMap<(u32, u32), PathStats>,
}

impl PairAggregator {
    /// Empty aggregator.
    pub fn new() -> Self {
        Self {
            pairs: fx_map_with_capacity(64),
        }
    }

    /// Record one compose path for pair `(a, b)` with path similarity `sim`.
    pub fn add(&mut self, a: u32, b: u32, sim: f64) {
        self.pairs
            .entry((a, b))
            .and_modify(|st| st.add(sim))
            .or_insert_with(|| PathStats::one(sim));
    }

    /// Number of distinct output pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no paths were recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Statistics for one pair.
    pub fn get(&self, a: u32, b: u32) -> Option<&PathStats> {
        self.pairs.get(&(a, b))
    }

    /// Iterate `((a, b), stats)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &PathStats)> {
        self.pairs.iter()
    }

    /// Consume into the underlying map.
    pub fn into_map(self) -> FxHashMap<(u32, u32), PathStats> {
        self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut agg = PairAggregator::new();
        agg.add(1, 2, 0.6);
        let st = agg.get(1, 2).unwrap();
        assert_eq!(st.count, 1);
        assert_eq!(st.sum, 0.6);
        assert_eq!(st.min, 0.6);
        assert_eq!(st.max, 0.6);
        assert_eq!(st.avg(), 0.6);
    }

    #[test]
    fn multiple_paths_accumulate() {
        let mut agg = PairAggregator::new();
        // Figure 6: (v1, v'1) is reached via p1 (sim 1) and p2 (sim 1).
        agg.add(1, 11, 1.0);
        agg.add(1, 11, 1.0);
        let st = agg.get(1, 11).unwrap();
        assert_eq!(st.count, 2);
        assert_eq!(st.sum, 2.0);
        assert_eq!(st.avg(), 1.0);
    }

    #[test]
    fn min_max_tracking() {
        let mut agg = PairAggregator::new();
        agg.add(0, 0, 0.9);
        agg.add(0, 0, 0.3);
        agg.add(0, 0, 0.6);
        let st = agg.get(0, 0).unwrap();
        assert_eq!(st.min, 0.3);
        assert_eq!(st.max, 0.9);
        assert!((st.avg() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn pairs_are_independent() {
        let mut agg = PairAggregator::new();
        agg.add(0, 1, 0.5);
        agg.add(1, 0, 0.7);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.get(0, 1).unwrap().sum, 0.5);
        assert_eq!(agg.get(1, 0).unwrap().sum, 0.7);
        assert!(agg.get(9, 9).is_none());
    }

    #[test]
    fn empty() {
        let agg = PairAggregator::new();
        assert!(agg.is_empty());
        assert_eq!(agg.len(), 0);
    }
}
