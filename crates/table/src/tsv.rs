//! TSV persistence for mapping tables.
//!
//! Mapping tables serialize to the obvious plain-text form — one
//! correspondence per line, `domain \t range \t sim` — with a one-line
//! header recording the row count. A variant keyed by *string ids*
//! (resolved through a [`crate::StringInterner`]) keeps files stable
//! across regenerations of the in-memory arena.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::interner::StringInterner;
use crate::mapping_table::MappingTable;

/// Errors from TSV load/store.
#[derive(Debug)]
pub enum TsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line did not parse.
    Parse { line: usize, msg: String },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Io(e) => write!(f, "tsv io error: {e}"),
            TsvError::Parse { line, msg } => write!(f, "tsv parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TsvError {}

impl From<io::Error> for TsvError {
    fn from(e: io::Error) -> Self {
        TsvError::Io(e)
    }
}

/// Escape a free-form string for use as one TSV field: backslash, tab,
/// newline and carriage return become `\\`, `\t`, `\n`, `\r`. Every
/// other character (quotes, non-ASCII, …) passes through unchanged —
/// only the characters that would break the line/column structure are
/// rewritten, so escaped fields stay human-readable.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_field`]. A backslash followed by anything other
/// than `\\`/`t`/`n`/`r` — which [`escape_field`] never produces — is
/// kept literally (lenient, so hand-edited files don't hard-fail).
pub fn unescape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Serialize a table to TSV text (numeric u32 columns).
pub fn to_string(table: &MappingTable) -> String {
    let mut out = String::with_capacity(16 + table.len() * 24);
    let _ = writeln!(out, "#moma-mapping-table\t{}", table.len());
    for c in table.iter() {
        let _ = writeln!(out, "{}\t{}\t{}", c.domain, c.range, c.sim);
    }
    out
}

/// Parse a table from TSV text produced by [`to_string`].
pub fn from_str(text: &str) -> Result<MappingTable, TsvError> {
    let mut table = MappingTable::new();
    for (no, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        fn field<'a>(p: Option<&'a str>, line: usize, what: &str) -> Result<&'a str, TsvError> {
            p.ok_or_else(|| TsvError::Parse {
                line,
                msg: format!("missing {what}"),
            })
        }
        let d: u32 = field(parts.next(), no + 1, "domain")?
            .parse()
            .map_err(|e| TsvError::Parse {
                line: no + 1,
                msg: format!("domain: {e}"),
            })?;
        let r: u32 =
            field(parts.next(), no + 1, "range")?
                .parse()
                .map_err(|e| TsvError::Parse {
                    line: no + 1,
                    msg: format!("range: {e}"),
                })?;
        let s: f64 = field(parts.next(), no + 1, "sim")?
            .parse()
            .map_err(|e| TsvError::Parse {
                line: no + 1,
                msg: format!("sim: {e}"),
            })?;
        table.push(d, r, s);
    }
    table.dedup_max();
    Ok(table)
}

/// Write a table to a file.
pub fn save(table: &MappingTable, path: impl AsRef<Path>) -> Result<(), TsvError> {
    fs::write(path, to_string(table))?;
    Ok(())
}

/// Read a table from a file.
pub fn load(path: impl AsRef<Path>) -> Result<MappingTable, TsvError> {
    from_str(&fs::read_to_string(path)?)
}

/// Serialize with string ids: each row becomes
/// `domain_id \t range_id \t sim`, ids resolved via the two interners
/// and escaped with [`escape_field`] so ids containing tabs or newlines
/// round-trip instead of corrupting the file.
///
/// Unresolvable handles are skipped (they reference instances that no
/// longer exist).
pub fn to_string_with_ids(
    table: &MappingTable,
    domain_ids: &StringInterner,
    range_ids: &StringInterner,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#moma-mapping-table-ids\t{}", table.len());
    for c in table.iter() {
        if let (Some(d), Some(r)) = (domain_ids.resolve(c.domain), range_ids.resolve(c.range)) {
            let _ = writeln!(out, "{}\t{}\t{}", escape_field(d), escape_field(r), c.sim);
        }
    }
    out
}

/// Parse a string-id TSV, interning unseen ids into the given interners.
pub fn from_str_with_ids(
    text: &str,
    domain_ids: &mut StringInterner,
    range_ids: &mut StringInterner,
) -> Result<MappingTable, TsvError> {
    let mut table = MappingTable::new();
    for (no, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let d = parts.next().ok_or_else(|| TsvError::Parse {
            line: no + 1,
            msg: "missing domain".into(),
        })?;
        let r = parts.next().ok_or_else(|| TsvError::Parse {
            line: no + 1,
            msg: "missing range".into(),
        })?;
        let s: f64 = parts
            .next()
            .ok_or_else(|| TsvError::Parse {
                line: no + 1,
                msg: "missing sim".into(),
            })?
            .parse()
            .map_err(|e| TsvError::Parse {
                line: no + 1,
                msg: format!("sim: {e}"),
            })?;
        table.push(
            domain_ids.intern(&unescape_field(d)),
            range_ids.intern(&unescape_field(r)),
            s,
        );
    }
    table.dedup_max();
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_numeric() {
        let t = MappingTable::from_triples([(0, 1, 0.6), (2, 3, 1.0), (4, 5, 0.123456)]);
        let text = to_string(&t);
        let back = from_str(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn header_and_comments_skipped() {
        let text = "#comment\n0\t1\t0.5\n\n2\t3\t0.25\n";
        let t = from_str(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.sim_of(2, 3), Some(0.25));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = from_str("0\t1\n").unwrap_err();
        match err {
            TsvError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        let err = from_str("0\tx\t0.5\n").unwrap_err();
        assert!(err.to_string().contains("range"));
    }

    #[test]
    fn roundtrip_with_ids() {
        let mut dom = StringInterner::new();
        let mut ran = StringInterner::new();
        let a = dom.intern("conf/VLDB/ChirkovaHS01");
        let b = ran.intern("P-672216");
        let t = MappingTable::from_triples([(a, b, 1.0)]);
        let text = to_string_with_ids(&t, &dom, &ran);
        assert!(text.contains("conf/VLDB/ChirkovaHS01\tP-672216\t1"));

        let mut dom2 = StringInterner::new();
        let mut ran2 = StringInterner::new();
        let back = from_str_with_ids(&text, &mut dom2, &mut ran2).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(
            dom2.resolve(back.rows()[0].domain),
            Some("conf/VLDB/ChirkovaHS01")
        );
        assert_eq!(ran2.resolve(back.rows()[0].range), Some("P-672216"));
    }

    #[test]
    fn file_roundtrip() {
        let t = MappingTable::from_triples([(1, 2, 0.75)]);
        let path = std::env::temp_dir().join("moma_tsv_roundtrip_test.tsv");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn duplicate_rows_collapse_to_max() {
        let text = "0\t1\t0.3\n0\t1\t0.9\n";
        let t = from_str(text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.sim_of(0, 1), Some(0.9));
    }

    #[test]
    fn escape_round_trips_structural_characters() {
        for s in [
            "plain",
            "tab\there",
            "new\nline",
            "cr\rreturn",
            "back\\slash",
            "quote\"and'quote",
            "mixé — ünïcode ★",
            "\\t literal backslash-t",
            "",
            "\t\n\r\\",
        ] {
            let e = escape_field(s);
            assert!(
                !e.contains('\t') && !e.contains('\n') && !e.contains('\r'),
                "{e:?}"
            );
            assert_eq!(unescape_field(&e), s, "round trip of {s:?}");
        }
        // Lenient unescape: unknown escapes and trailing backslash pass through.
        assert_eq!(unescape_field("a\\xb"), "a\\xb");
        assert_eq!(unescape_field("end\\"), "end\\");
    }

    #[test]
    fn id_tsv_round_trips_hostile_ids() {
        let mut dom = StringInterner::new();
        let mut ran = StringInterner::new();
        let a = dom.intern("id with\ttab");
        let b = ran.intern("id with\nnewline and \"quotes\" and é");
        let t = MappingTable::from_triples([(a, b, 0.5)]);
        let text = to_string_with_ids(&t, &dom, &ran);
        // The file structure survives: exactly one data line, three columns.
        let data: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].split('\t').count(), 3);

        let mut dom2 = StringInterner::new();
        let mut ran2 = StringInterner::new();
        let back = from_str_with_ids(&text, &mut dom2, &mut ran2).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(dom2.resolve(back.rows()[0].domain), Some("id with\ttab"));
        assert_eq!(
            ran2.resolve(back.rows()[0].range),
            Some("id with\nnewline and \"quotes\" and é")
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn text_roundtrip_is_identity(
            rows in prop::collection::vec((0u32..500, 0u32..500, 0.0f64..=1.0), 0..80)
        ) {
            let t = MappingTable::from_triples(rows);
            let back = from_str(&to_string(&t)).unwrap();
            prop_assert_eq!(back.len(), t.len());
            for c in t.iter() {
                let s = back.sim_of(c.domain, c.range).unwrap();
                prop_assert!((s - c.sim).abs() < 1e-12);
            }
        }

        /// Ids containing tabs, newlines, CRs, backslashes, quotes and
        /// non-ASCII survive the string-id TSV round trip unchanged.
        /// (The class below embeds real control characters.)
        #[test]
        fn id_roundtrip_survives_hostile_characters(
            ids in prop::collection::vec("[\t\n\r\\\\\"'a-zé★ ]{1,12}", 1..12),
            sims in prop::collection::vec(0.0f64..=1.0, 12..13),
        ) {
            let mut dom = StringInterner::new();
            let mut ran = StringInterner::new();
            let rows: Vec<(u32, u32, f64)> = ids
                .iter()
                .enumerate()
                .map(|(i, id)| {
                    (dom.intern(id), ran.intern(&format!("r-{id}")), sims[i % sims.len()])
                })
                .collect();
            let t = MappingTable::from_triples(rows);
            let text = to_string_with_ids(&t, &dom, &ran);
            let mut dom2 = StringInterner::new();
            let mut ran2 = StringInterner::new();
            let back = from_str_with_ids(&text, &mut dom2, &mut ran2).unwrap();
            prop_assert_eq!(back.len(), t.len());
            for c in t.iter() {
                let d = dom.resolve(c.domain).unwrap();
                let r = ran.resolve(c.range).unwrap();
                let (d2, r2) = (dom2.get(d), ran2.get(r));
                prop_assert!(d2.is_some() && r2.is_some(),
                    "id {:?} lost in round trip", d);
                let s = back.sim_of(d2.unwrap(), r2.unwrap()).unwrap();
                prop_assert!((s - c.sim).abs() < 1e-12);
            }
        }
    }
}
