//! Descriptive statistics over a mapping table.
//!
//! Used by the evaluation harness (dataset summaries, Table 1) and by the
//! self-tuner to characterize candidate mappings.

use crate::mapping_table::MappingTable;

/// Summary statistics of a mapping table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of correspondences.
    pub rows: usize,
    /// Number of distinct domain objects.
    pub distinct_domains: usize,
    /// Number of distinct range objects.
    pub distinct_ranges: usize,
    /// Minimum similarity (0 for an empty table).
    pub min_sim: f64,
    /// Maximum similarity (0 for an empty table).
    pub max_sim: f64,
    /// Mean similarity (0 for an empty table).
    pub mean_sim: f64,
    /// Mean correspondences per distinct domain object.
    pub mean_domain_fanout: f64,
    /// Largest correspondences count of any single domain object.
    pub max_domain_fanout: u32,
}

impl TableStats {
    /// Compute statistics for `table`.
    pub fn of(table: &MappingTable) -> Self {
        if table.is_empty() {
            return Self {
                rows: 0,
                distinct_domains: 0,
                distinct_ranges: 0,
                min_sim: 0.0,
                max_sim: 0.0,
                mean_sim: 0.0,
                mean_domain_fanout: 0.0,
                max_domain_fanout: 0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for c in table.iter() {
            min = min.min(c.sim);
            max = max.max(c.sim);
            sum += c.sim;
        }
        let degrees = table.domain_degrees();
        let distinct_domains = degrees.len();
        let max_fan = degrees.values().copied().max().unwrap_or(0);
        Self {
            rows: table.len(),
            distinct_domains,
            distinct_ranges: table.distinct_ranges(),
            min_sim: min,
            max_sim: max,
            mean_sim: sum / table.len() as f64,
            mean_domain_fanout: table.len() as f64 / distinct_domains as f64,
            max_domain_fanout: max_fan,
        }
    }

    /// Histogram of similarity values in `buckets` equal-width bins over
    /// `[0, 1]`.
    pub fn sim_histogram(table: &MappingTable, buckets: usize) -> Vec<usize> {
        let mut hist = vec![0usize; buckets.max(1)];
        for c in table.iter() {
            let i = ((c.sim * buckets as f64) as usize).min(buckets - 1);
            hist[i] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table() {
        let s = TableStats::of(&MappingTable::new());
        assert_eq!(s.rows, 0);
        assert_eq!(s.mean_sim, 0.0);
        assert_eq!(s.max_domain_fanout, 0);
    }

    #[test]
    fn basic_stats() {
        let t = MappingTable::from_triples([(0, 1, 0.2), (0, 2, 0.8), (1, 1, 0.5)]);
        let s = TableStats::of(&t);
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct_domains, 2);
        assert_eq!(s.distinct_ranges, 2);
        assert_eq!(s.min_sim, 0.2);
        assert_eq!(s.max_sim, 0.8);
        assert!((s.mean_sim - 0.5).abs() < 1e-12);
        assert_eq!(s.max_domain_fanout, 2);
        assert!((s.mean_domain_fanout - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let t = MappingTable::from_triples([(0, 1, 0.05), (1, 2, 0.55), (2, 3, 1.0)]);
        let h = TableStats::sim_histogram(&t, 10);
        assert_eq!(h[0], 1);
        assert_eq!(h[5], 1);
        assert_eq!(h[9], 1); // 1.0 clamps into the last bucket
        assert_eq!(h.iter().sum::<usize>(), 3);
    }
}
