//! Size-bucketed inverted gram index with count-filtered candidate
//! merging — the storage engine behind threshold-exact blocking.
//!
//! [`SizeBucketedIndex`] partitions every gram's posting list by the
//! *gram-set size* of the indexed value. A threshold-aware caller (see
//! `moma_core::blocking`) probes it with a size window `[min_size,
//! max_size]` and a per-size minimum-overlap function, and gets back
//! exactly the ids that (a) fall in the window and (b) share at least
//! the required number of grams with the query — the SimString
//! *T-occurrence* problem, solved CPMerge-style:
//!
//! 1. query grams are ordered rarest-first (document frequency within
//!    the window),
//! 2. the first `n − τ_min + 1` posting lists seed the candidate set
//!    with occurrence counts (any qualifying id must appear in one of
//!    them — it can miss at most `τ − 1` of the query's grams),
//! 3. the remaining (frequent) lists are *galloped* against the sorted
//!    survivor set (exponential search through whichever side is longer
//!    — see [`crate::postings`]), and candidates that can no longer
//!    reach their per-size requirement are abandoned after every list.
//!
//! Grams are interned to dense handles ([`StringInterner`]) so each
//! probe hashes every query gram once and array-indexes from then on;
//! the per-size id lists are block-compressed [`BlockPostings`].
//!
//! Like its unbucketed sibling [`crate::gram_index::GramIndex`], the
//! index is incrementally maintainable: O(1) tombstoned removal,
//! surgical replace, amortized compaction (configurable via
//! [`SizeBucketedIndex::with_compaction`]), shard-mergeable batch builds
//! ([`SizeBucketedIndex::absorb`]), and batched deltas
//! ([`SizeBucketedIndex::apply_delta`] over the shared
//! [`GramIndexDelta`]). Probes filter tombstones, so candidate sets are
//! exact at every point between compactions.
//!
//! Values whose gram list is empty occupy the special size-0 bucket:
//! they have no postings and can never be merged candidates, but they
//! are tracked ([`SizeBucketedIndex::gramless_ids`]) so callers can
//! implement the "empty query matches empty values exactly" edge of the
//! q-gram measures.

use std::collections::BTreeMap;

use crate::gram_index::{GramIndexDelta, COMPACTION_FLOOR, COMPACTION_RATIO};
use crate::hash::{FxHashMap, FxHashSet};
use crate::interner::StringInterner;
use crate::postings::{gallop_lower_bound, BlockPostings};

/// Inverted index from gram to id posting lists partitioned by the
/// gram-set size of the indexed value.
///
/// Gram lists handed to [`SizeBucketedIndex::insert`] /
/// [`SizeBucketedIndex::replace`] must be duplicate-free (the caller
/// tokenizes; multiset tokenizers tag repeated grams — see
/// `moma_core::blocking`); the list length is the value's size key.
#[derive(Debug, Clone)]
pub struct SizeBucketedIndex {
    /// Gram string ↔ dense handle; `postings[handle]` holds the gram's
    /// size-bucketed lists.
    grams: StringInterner,
    /// gram handle → size bucket → block-compressed sorted ids.
    postings: Vec<BTreeMap<u32, BlockPostings>>,
    /// Live id → gram-set size (0 for gramless values).
    sizes: FxHashMap<u32, u32>,
    /// Live ids with gram-set size 0 (subset of `sizes`), maintained
    /// incrementally so gramless probes don't scan the live population.
    gramless: FxHashSet<u32>,
    /// Removed ids whose posting entries have not been swept yet.
    tombstones: FxHashSet<u32>,
    /// Compact when `tombstones > live * ratio` (and ≥ floor exist).
    compaction_ratio: f64,
    compaction_floor: usize,
}

impl Default for SizeBucketedIndex {
    fn default() -> Self {
        Self {
            grams: StringInterner::new(),
            postings: Vec::new(),
            sizes: FxHashMap::default(),
            gramless: FxHashSet::default(),
            tombstones: FxHashSet::default(),
            compaction_ratio: COMPACTION_RATIO,
            compaction_floor: COMPACTION_FLOOR,
        }
    }
}

impl SizeBucketedIndex {
    /// Empty index with the default compaction policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the auto-compaction policy (builder style): sweep when
    /// unswept tombstones exceed both `floor` (absolute) and `ratio` ×
    /// the live population. `ratio = 0.0, floor = 0` sweeps on every
    /// removal; `ratio = f64::INFINITY` never sweeps automatically.
    pub fn with_compaction(mut self, ratio: f64, floor: usize) -> Self {
        self.compaction_ratio = ratio;
        self.compaction_floor = floor;
        self
    }

    /// Bucket map of an interned gram handle, growing the arena on
    /// first touch.
    fn buckets_mut(&mut self, gid: u32) -> &mut BTreeMap<u32, BlockPostings> {
        let gid = gid as usize;
        if gid >= self.postings.len() {
            self.postings.resize_with(gid + 1, BTreeMap::new);
        }
        &mut self.postings[gid]
    }

    fn buckets(&self, gram: &str) -> Option<&BTreeMap<u32, BlockPostings>> {
        self.grams.get(gram).map(|gid| &self.postings[gid as usize])
    }

    /// Index one value's deduplicated grams; the value's size key is
    /// `grams.len()`. Inserting a live id is rejected with `false`.
    pub fn insert(&mut self, id: u32, grams: &[String]) -> bool {
        if self.sizes.contains_key(&id) {
            return false;
        }
        if self.tombstones.contains(&id) {
            // Re-inserting a removed id must not resurrect its stale
            // postings; purge them first.
            self.compact();
        }
        debug_assert!(
            grams.windows(2).all(|w| w[0] != w[1] || w[0].is_empty()),
            "grams must be deduplicated"
        );
        let size = grams.len() as u32;
        self.sizes.insert(id, size);
        if size == 0 {
            self.gramless.insert(id);
        }
        for g in grams {
            let gid = self.grams.intern(g);
            self.buckets_mut(gid).entry(size).or_default().insert(id);
        }
        true
    }

    /// Tombstone a live id; returns whether it was live. May trigger a
    /// compaction sweep (see [`SizeBucketedIndex::with_compaction`]).
    pub fn remove(&mut self, id: u32) -> bool {
        if self.sizes.remove(&id).is_none() {
            return false;
        }
        self.gramless.remove(&id);
        self.tombstones.insert(id);
        self.maybe_compact();
        true
    }

    /// Replace a live value's grams: old entries are surgically removed
    /// (the caller supplies the old grams — the index stores no values),
    /// new ones inserted, and the id moves to its new size bucket.
    /// Returns `false` (and does nothing) if `id` is not live.
    pub fn replace(&mut self, id: u32, old_grams: &[String], new_grams: &[String]) -> bool {
        if !self.sizes.contains_key(&id) {
            return false;
        }
        let old_size = old_grams.len() as u32;
        for g in old_grams {
            if let Some(gid) = self.grams.get(g) {
                let buckets = &mut self.postings[gid as usize];
                if let Some(list) = buckets.get_mut(&old_size) {
                    list.remove(id);
                    if list.is_empty() {
                        buckets.remove(&old_size);
                    }
                }
            }
        }
        let new_size = new_grams.len() as u32;
        self.sizes.insert(id, new_size);
        if new_size == 0 {
            self.gramless.insert(id);
        } else {
            self.gramless.remove(&id);
        }
        for g in new_grams {
            let gid = self.grams.intern(g);
            self.buckets_mut(gid)
                .entry(new_size)
                .or_default()
                .insert(id);
        }
        true
    }

    /// Apply a batch of changes (same delta type the flat
    /// [`GramIndex`](crate::gram_index::GramIndex) consumes).
    pub fn apply_delta(&mut self, delta: &GramIndexDelta) {
        for &id in &delta.removed {
            self.remove(id);
        }
        for (id, old, new) in &delta.replaced {
            self.replace(*id, old, new);
        }
        for (id, grams) in &delta.added {
            self.insert(*id, grams);
        }
    }

    /// Sweep tombstoned ids out of every posting bucket now.
    pub fn compact(&mut self) {
        if self.tombstones.is_empty() {
            return;
        }
        let dead = std::mem::take(&mut self.tombstones);
        for buckets in &mut self.postings {
            buckets.retain(|_, list| {
                list.retain(|id| !dead.contains(&id));
                !list.is_empty()
            });
        }
    }

    fn maybe_compact(&mut self) {
        if self.tombstones.len() >= self.compaction_floor
            && self.tombstones.len() as f64 > self.sizes.len() as f64 * self.compaction_ratio
        {
            self.compact();
        }
    }

    /// Number of unswept tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Number of live indexed values (gramless ones included).
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether no live values are indexed.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Whether `id` is indexed and not tombstoned.
    pub fn is_live(&self, id: u32) -> bool {
        self.sizes.contains_key(&id)
    }

    /// Gram-set size of a live id.
    pub fn size_of(&self, id: u32) -> Option<u32> {
        self.sizes.get(&id).copied()
    }

    /// All live ids — including gramless values, so this always has
    /// exactly [`SizeBucketedIndex::len`] entries.
    pub fn all_ids(&self) -> FxHashSet<u32> {
        self.sizes.keys().copied().collect()
    }

    /// Live ids whose values produced no grams (the size-0 bucket) —
    /// the only possible matches of a gramless query. O(|gramless|):
    /// the set is maintained incrementally, not scanned out of the live
    /// population.
    pub fn gramless_ids(&self) -> FxHashSet<u32> {
        self.gramless.clone()
    }

    /// Document frequency of a gram *within a size window* — posting
    /// entries over buckets in `[min_size, max_size]`, unswept tombstone
    /// entries included (exact after [`SizeBucketedIndex::compact`]).
    pub fn df_in_window(&self, gram: &str, min_size: u32, max_size: u32) -> usize {
        self.buckets(gram)
            .map(|buckets| {
                buckets
                    .range(min_size..=max_size)
                    .map(|(_, list)| list.len())
                    .sum()
            })
            .unwrap_or(0)
    }

    /// The ids with gram-set size in `[min_size, max_size]` sharing at
    /// least `min_overlap(size)` grams with `query_grams` — exactly (no
    /// misses, no extras beyond the count criterion). `query_grams` must
    /// be duplicate-free; `min_overlap` is evaluated per candidate size
    /// and is clamped to ≥ 1 (a merged candidate shares a gram by
    /// construction, and ids sharing none are unreachable anyway).
    ///
    /// Cost is CPMerge-like: the rarest `n − τ_min + 1` posting lists
    /// are scanned, the frequent remainder galloped against the sorted
    /// survivor set, with candidates abandoned as soon as their
    /// remaining potential drops below the requirement.
    pub fn candidates(
        &self,
        query_grams: &[String],
        min_size: u32,
        max_size: u32,
        min_overlap: &dyn Fn(u32) -> u32,
    ) -> FxHashSet<u32> {
        let n = query_grams.len();
        if n == 0 || min_size > max_size {
            return FxHashSet::default();
        }

        // One pass over each gram's in-window buckets computes both the
        // windowed df (for the rarest-first order) and the loosest
        // requirement any in-window candidate could have — min_overlap
        // probed at every distinct bucket size occurring in the window
        // (avoids monotonicity assumptions on the bound). Each gram is
        // hashed exactly once here; later phases reuse the resolved
        // handle and array-index the posting arena.
        let mut tau_min = u32::MAX;
        let mut stats: Vec<(usize, &String, u32)> = Vec::with_capacity(n);
        for g in query_grams {
            let mut df = 0usize;
            let mut gid = u32::MAX; // sentinel: gram not in the index
            if let Some(found) = self.grams.get(g) {
                gid = found;
                for (&size, list) in self.postings[found as usize].range(min_size..=max_size) {
                    df += list.len();
                    tau_min = tau_min.min(min_overlap(size).max(1));
                }
            }
            stats.push((df, g, gid));
        }
        if tau_min == u32::MAX || tau_min as usize > n {
            // No posting in the window, or nothing can share enough.
            return FxHashSet::default();
        }
        // Rarest-first gram order (df ties broken by the gram itself so
        // the scan order — and with it the work done — is
        // deterministic; the *result* is order-independent).
        stats.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        let order: Vec<u32> = stats.into_iter().map(|(_, _, gid)| gid).collect();

        // Phase 1: scan the rarest n − τ_min + 1 lists, seeding
        // (id, size) → count.
        let seed_lists = n - tau_min as usize + 1;
        let mut counts: FxHashMap<u32, (u32, u32)> = FxHashMap::default(); // id → (count, size)
        for &gid in order.iter().take(seed_lists) {
            if gid == u32::MAX {
                continue;
            }
            for (&size, list) in self.postings[gid as usize].range(min_size..=max_size) {
                for id in list.iter() {
                    if !self.tombstones.contains(&id) {
                        counts.entry(id).or_insert((0, size)).0 += 1;
                    }
                }
            }
        }

        // Phase 2: gallop the frequent remainder against the sorted
        // survivor set, abandoning candidates that can no longer reach
        // their requirement. A live id occupies exactly one size bucket
        // per gram, so each list bumps a survivor at most once.
        let mut survivors: Vec<(u32, u32, u32)> = counts
            .into_iter()
            .map(|(id, (count, size))| (id, count, size))
            .collect();
        survivors.sort_unstable_by_key(|&(id, _, _)| id);
        for (i, &gid) in order.iter().enumerate().skip(seed_lists) {
            if survivors.is_empty() {
                break;
            }
            if gid != u32::MAX {
                for (_, list) in self.postings[gid as usize].range(min_size..=max_size) {
                    bump_common(&mut survivors, list);
                }
            }
            let left_after = (n - 1 - i) as u32; // grams still unprobed after this one
            survivors.retain(|&(_, count, size)| count + left_after >= min_overlap(size).max(1));
        }

        survivors
            .into_iter()
            .filter(|(_, count, size)| *count >= min_overlap(*size).max(1))
            .map(|(id, _, _)| id)
            .collect()
    }

    /// Merge in an index built from another input shard. Per-bucket
    /// posting lists stay id-sorted, so the merged index is
    /// observationally identical to a sequential build over the
    /// concatenated input; gram handles are remapped through their
    /// strings (shard interners assign handles independently). Both
    /// indexes must be tombstone-free (freshly built).
    pub fn absorb(&mut self, other: SizeBucketedIndex) {
        debug_assert!(self.tombstones.is_empty() && other.tombstones.is_empty());
        let SizeBucketedIndex {
            grams,
            postings,
            sizes,
            gramless,
            ..
        } = other;
        self.sizes.extend(sizes);
        self.gramless.extend(gramless);
        for (ogid, buckets) in postings.into_iter().enumerate() {
            if buckets.is_empty() {
                continue;
            }
            let gram = grams
                .resolve(ogid as u32)
                .expect("posting arena tracks the interner");
            let gid = self.grams.intern(gram);
            let mine = self.buckets_mut(gid);
            for (size, list) in buckets {
                match mine.entry(size) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(list);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        e.get_mut().merge(list);
                    }
                }
            }
        }
    }
}

/// Bump the count of every survivor whose id appears in `list`,
/// galloping through the longer side. `survivors` must be id-sorted;
/// order is preserved.
fn bump_common(survivors: &mut [(u32, u32, u32)], list: &BlockPostings) {
    let ids = list.ids();
    if survivors.is_empty() || ids.is_empty() {
        return;
    }
    if survivors.len() <= ids.len() {
        // Few survivors: gallop through the posting list.
        let mut j = 0usize;
        for s in survivors.iter_mut() {
            j += gallop_lower_bound(&ids[j..], s.0);
            if j >= ids.len() {
                break;
            }
            if ids[j] == s.0 {
                s.1 += 1;
                j += 1;
            }
        }
    } else {
        // Short list: binary-probe the survivor set per id.
        for &id in ids {
            if let Ok(pos) = survivors.binary_search_by_key(&id, |s| s.0) {
                survivors[pos].1 += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word-gram tokenizer for tests (deduplicated); the real tagged
    /// q-gram tokenizer lives upstream in moma-core.
    fn grams(s: &str) -> Vec<String> {
        let mut v: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        v.sort();
        v.dedup();
        v
    }

    fn sample() -> SizeBucketedIndex {
        let mut idx = SizeBucketedIndex::new();
        idx.insert(0, &grams("data cleaning system")); // size 3
        idx.insert(1, &grams("schema matching cupid")); // size 3
        idx.insert(2, &grams("fuzzy match data cleaning")); // size 4
        idx.insert(3, &grams("")); // gramless
        idx.insert(4, &grams("data")); // size 1
        idx
    }

    /// Probe requiring `tau` shared grams at any size.
    fn probe(idx: &SizeBucketedIndex, q: &str, tau: u32) -> FxHashSet<u32> {
        idx.candidates(&grams(q), 0, u32::MAX, &|_| tau)
    }

    #[test]
    fn basic_count_filtering() {
        let idx = sample();
        // Share >= 1 gram with "data cleaning": ids 0, 2, 4.
        let c1 = probe(&idx, "data cleaning", 1);
        assert_eq!(c1, [0u32, 2, 4].into_iter().collect());
        // Share >= 2 grams: ids 0 and 2 only.
        let c2 = probe(&idx, "data cleaning", 2);
        assert_eq!(c2, [0u32, 2].into_iter().collect());
        // Nothing shares 3 grams with a 2-gram query... except nothing.
        assert!(probe(&idx, "data cleaning", 3).is_empty());
    }

    #[test]
    fn size_window_prunes_buckets() {
        let idx = sample();
        let q = grams("data cleaning fuzzy match");
        // Only size-4 values considered: id 2.
        let c = idx.candidates(&q, 4, 4, &|_| 1);
        assert_eq!(c, [2u32].into_iter().collect());
        // Only size-1 values: id 4.
        let c = idx.candidates(&q, 1, 1, &|_| 1);
        assert_eq!(c, [4u32].into_iter().collect());
        // Empty window.
        assert!(idx.candidates(&q, 5, 4, &|_| 1).is_empty());
    }

    #[test]
    fn per_size_overlap_requirement() {
        let idx = sample();
        let q = grams("data cleaning system fuzzy match");
        // Require full containment: size-s candidates must share s grams.
        let c = idx.candidates(&q, 1, u32::MAX, &|s| s);
        // id 0 {data,cleaning,system} ⊆ q; id 2 {fuzzy,match,data,cleaning} ⊆ q; id 4 {data} ⊆ q.
        assert_eq!(c, [0u32, 2, 4].into_iter().collect());
        // id 1 shares nothing; never a candidate.
        assert!(!c.contains(&1));
    }

    #[test]
    fn empty_query_and_gramless_values() {
        let idx = sample();
        assert!(probe(&idx, "", 1).is_empty());
        assert_eq!(idx.gramless_ids(), [3u32].into_iter().collect());
        assert_eq!(idx.size_of(3), Some(0));
        assert_eq!(idx.size_of(2), Some(4));
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.all_ids().len(), 5);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut idx = sample();
        assert!(!idx.insert(0, &grams("other")));
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.df_in_window("other", 0, u32::MAX), 0);
    }

    #[test]
    fn remove_tombstones_and_filters_probes() {
        let mut idx = sample();
        assert!(idx.remove(0));
        assert!(!idx.remove(0));
        assert!(!idx.remove(99));
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.tombstone_count(), 1);
        // df over-counts until compaction, probes never return the dead id.
        assert_eq!(idx.df_in_window("data", 0, u32::MAX), 3);
        let c = probe(&idx, "data cleaning", 1);
        assert!(!c.contains(&0) && c.contains(&2) && c.contains(&4));
        idx.compact();
        assert_eq!(idx.tombstone_count(), 0);
        assert_eq!(idx.df_in_window("data", 0, u32::MAX), 2);
        assert_eq!(
            probe(&idx, "data cleaning", 1),
            [2u32, 4].into_iter().collect()
        );
    }

    #[test]
    fn replace_moves_size_buckets() {
        let mut idx = sample();
        // id 4 grows from size 1 to size 3.
        assert!(idx.replace(4, &grams("data"), &grams("entity resolution survey")));
        assert_eq!(idx.size_of(4), Some(3));
        assert_eq!(idx.df_in_window("data", 1, 1), 0);
        let c = idx.candidates(&grams("entity resolution"), 3, 3, &|_| 2);
        assert_eq!(c, [4u32].into_iter().collect());
        // Replace to gramless and back.
        assert!(idx.replace(4, &grams("entity resolution survey"), &grams("")));
        assert_eq!(idx.size_of(4), Some(0));
        assert!(idx.gramless_ids().contains(&4));
        assert!(idx.replace(4, &grams(""), &grams("back again")));
        assert!(probe(&idx, "back", 1).contains(&4));
        // Non-live id: no-op.
        assert!(!idx.replace(99, &grams("a"), &grams("b")));
    }

    #[test]
    fn reinsert_after_remove_purges_stale_postings() {
        let mut idx = sample();
        idx.remove(0);
        assert!(idx.insert(0, &grams("brand new value")));
        assert_eq!(idx.tombstone_count(), 0);
        assert!(!probe(&idx, "cleaning system", 2).contains(&0));
        assert!(probe(&idx, "brand new", 2).contains(&0));
    }

    #[test]
    fn apply_delta_batches() {
        let mut idx = sample();
        let delta = GramIndexDelta {
            added: vec![(10, grams("new entry data"))],
            removed: vec![1, 77],
            replaced: vec![(
                2,
                grams("fuzzy match data cleaning"),
                grams("robust fuzzy match"),
            )],
        };
        idx.apply_delta(&delta);
        assert_eq!(idx.len(), 5); // -1 +1
        assert!(probe(&idx, "new entry", 2).contains(&10));
        assert!(!idx.is_live(1));
        assert_eq!(idx.size_of(2), Some(3));
        assert!(probe(&idx, "robust fuzzy", 2).contains(&2));
        assert!(!probe(&idx, "data cleaning", 2).contains(&2));
    }

    #[test]
    fn incremental_equals_rebuild() {
        let mut idx = SizeBucketedIndex::new();
        let mut state: std::collections::BTreeMap<u32, String> = Default::default();
        let texts = [
            "data cleaning",
            "schema matching evaluation",
            "entity resolution",
            "fuzzy match online data",
            "record linkage",
        ];
        for i in 0..25u32 {
            let t = texts[i as usize % texts.len()];
            idx.insert(i, &grams(t));
            state.insert(i, t.to_owned());
        }
        for i in (0..25u32).step_by(3) {
            idx.remove(i);
            state.remove(&i);
        }
        for i in (1..25u32).step_by(4) {
            if let Some(old) = state.get(&i).cloned() {
                idx.replace(i, &grams(&old), &grams("replaced value"));
                state.insert(i, "replaced value".to_owned());
            }
        }
        idx.compact();
        let mut fresh = SizeBucketedIndex::new();
        for (&id, text) in &state {
            fresh.insert(id, &grams(text));
        }
        assert_eq!(idx.len(), fresh.len());
        assert_eq!(idx.all_ids(), fresh.all_ids());
        for text in texts.iter().copied().chain(["replaced value"]) {
            for g in grams(text) {
                assert_eq!(
                    idx.df_in_window(&g, 0, u32::MAX),
                    fresh.df_in_window(&g, 0, u32::MAX),
                    "gram {g}"
                );
            }
            for tau in [1, 2] {
                assert_eq!(
                    probe(&idx, text, tau),
                    probe(&fresh, text, tau),
                    "{text}/{tau}"
                );
            }
        }
    }

    #[test]
    fn absorb_merges_sorted_buckets() {
        let mut a = SizeBucketedIndex::new();
        a.insert(5, &grams("alpha beta"));
        a.insert(1, &grams("beta gamma"));
        let mut b = SizeBucketedIndex::new();
        b.insert(3, &grams("beta delta"));
        a.absorb(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.df_in_window("beta", 2, 2), 3);
        let c = probe(&a, "beta", 1);
        assert_eq!(c, [1u32, 3, 5].into_iter().collect());
    }

    #[test]
    fn compaction_policy_edges() {
        // ratio 0, floor 0: swept on every removal — tombstones never
        // observable.
        let mut eager = SizeBucketedIndex::new().with_compaction(0.0, 0);
        for i in 0..50u32 {
            eager.insert(i, &grams(&format!("value number {i}")));
        }
        for i in 0..50u32 {
            eager.remove(i);
            assert_eq!(eager.tombstone_count(), 0, "id {i} not swept eagerly");
        }
        assert!(eager.is_empty());

        // ratio ∞: never auto-swept, even at 100% tombstones; probes
        // stay exact and an explicit compact() still works.
        let mut lazy = SizeBucketedIndex::new().with_compaction(f64::INFINITY, 0);
        for i in 0..50u32 {
            lazy.insert(i, &grams(&format!("value number {i}")));
        }
        for i in 0..50u32 {
            lazy.remove(i);
        }
        assert_eq!(lazy.tombstone_count(), 50);
        assert!(lazy.is_empty());
        assert!(probe(&lazy, "value number 7", 1).is_empty());
        lazy.compact();
        assert_eq!(lazy.tombstone_count(), 0);
        assert_eq!(lazy.df_in_window("value", 0, u32::MAX), 0);
    }

    #[test]
    fn phase2_abandonment_is_exact() {
        // A query with many grams against candidates engineered to sit
        // just below / at the requirement, forcing phase 2 probes.
        let mut idx = SizeBucketedIndex::new();
        idx.insert(0, &grams("a b c d e f g h")); // shares 8
        idx.insert(1, &grams("a b c d x1 x2 x3 x4")); // shares 4
        idx.insert(2, &grams("a y1 y2 y3 y4 y5 y6 y7")); // shares 1
        let q = grams("a b c d e f g h");
        for tau in 1..=8u32 {
            let c = idx.candidates(&q, 0, u32::MAX, &|_| tau);
            assert_eq!(c.contains(&0), tau <= 8, "tau={tau}");
            assert_eq!(c.contains(&1), tau <= 4, "tau={tau}");
            assert_eq!(c.contains(&2), tau <= 1, "tau={tau}");
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn grams(s: &str) -> Vec<String> {
        let mut v: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        v.sort();
        v.dedup();
        v
    }

    fn overlap(a: &[String], b: &[String]) -> u32 {
        a.iter().filter(|g| b.contains(g)).count() as u32
    }

    proptest! {
        /// The count-filter merge is exact: it returns precisely the
        /// live in-window ids whose true overlap meets the requirement —
        /// compared against a brute-force scan.
        #[test]
        fn merge_matches_bruteforce(
            values in prop::collection::vec("[a-e]( [a-e]){0,7}", 1..25),
            query in "[a-e]( [a-e]){0,7}",
            min_size in 0u32..4,
            width in 0u32..6,
            tau in 1u32..5,
        ) {
            let idx = SizeBucketedIndex::default();
            let mut idx = idx;
            let toks: Vec<Vec<String>> = values.iter().map(|v| grams(v)).collect();
            for (i, t) in toks.iter().enumerate() {
                idx.insert(i as u32, t);
            }
            let q = grams(&query);
            let max_size = min_size + width;
            let got = idx.candidates(&q, min_size, max_size, &|_| tau);
            let want: FxHashSet<u32> = toks
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    let s = t.len() as u32;
                    (min_size..=max_size).contains(&s) && overlap(&q, t) >= tau
                })
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, want);
        }

        /// ...and stays exact under tombstoned removals and replaces
        /// (no compaction forced), with per-size requirements.
        #[test]
        fn merge_exact_after_maintenance(
            values in prop::collection::vec("[a-e]( [a-e]){0,7}", 4..25),
            replacement in "[a-e]( [a-e]){0,7}",
            query in "[a-e]( [a-e]){0,7}",
        ) {
            let mut idx = SizeBucketedIndex::new().with_compaction(f64::INFINITY, 0);
            let mut current: Vec<Option<Vec<String>>> =
                values.iter().map(|v| Some(grams(v))).collect();
            for (i, t) in current.iter().enumerate() {
                idx.insert(i as u32, t.as_ref().unwrap());
            }
            for i in (0..values.len()).step_by(3) {
                idx.remove(i as u32);
                current[i] = None;
            }
            let rep = grams(&replacement);
            for i in (1..values.len()).step_by(4) {
                if let Some(old) = current[i].clone() {
                    idx.replace(i as u32, &old, &rep);
                    current[i] = Some(rep.clone());
                }
            }
            let q = grams(&query);
            // Per-size requirement: size-s candidates must share
            // ceil(s/2) grams (exercise the closure plumbing).
            let req = |s: u32| s.div_ceil(2).max(1);
            let got = idx.candidates(&q, 0, u32::MAX, &req);
            let want: FxHashSet<u32> = current
                .iter()
                .enumerate()
                .filter_map(|(i, t)| t.as_ref().map(|t| (i, t)))
                .filter(|(_, t)| overlap(&q, t) >= req(t.len() as u32))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, want);
        }

        /// The galloped phase 2 (frequent grams vs the sorted survivor
        /// set) stays exact when the same posting lists are probed after
        /// tombstoning and after an explicit compaction: both states
        /// answer identically to a fresh rebuild of the live values.
        #[test]
        fn tombstoned_and_compacted_probes_agree(
            values in prop::collection::vec("[a-c]( [a-c]){0,6}", 4..20),
            query in "[a-c]( [a-c]){0,6}",
            tau in 1u32..4,
        ) {
            let mut idx = SizeBucketedIndex::new().with_compaction(f64::INFINITY, 0);
            for (i, v) in values.iter().enumerate() {
                idx.insert(i as u32, &grams(v));
            }
            for i in (0..values.len() as u32).step_by(2) {
                idx.remove(i);
            }
            let mut fresh = SizeBucketedIndex::new();
            for (i, v) in values.iter().enumerate() {
                if i % 2 != 0 {
                    fresh.insert(i as u32, &grams(v));
                }
            }
            let q = grams(&query);
            let tombstoned = idx.candidates(&q, 0, u32::MAX, &|_| tau);
            idx.compact();
            let compacted = idx.candidates(&q, 0, u32::MAX, &|_| tau);
            let want = fresh.candidates(&q, 0, u32::MAX, &|_| tau);
            prop_assert_eq!(&tombstoned, &want);
            prop_assert_eq!(&compacted, &want);
        }
    }
}
