//! Incrementally maintainable inverted gram index.
//!
//! [`GramIndex`] is the tokenizer-agnostic core of MOMA's blocking index:
//! callers hand it pre-tokenized gram lists (trigrams in practice — see
//! `moma_core::blocking::TrigramIndex`, which wraps this type; the
//! tokenizer itself lives in `moma-simstring`, which depends on this
//! crate, so it cannot be called from here). Besides batch construction
//! it supports *delta maintenance*:
//!
//! * [`GramIndex::insert`] appends a new value's grams,
//! * [`GramIndex::remove`] **tombstones** a value: the id stays in the
//!   posting lists but is filtered out of probe results, making removal
//!   O(1) instead of O(total postings),
//! * [`GramIndex::replace`] surgically swaps one value's grams (the
//!   caller supplies the old grams, which the index does not store),
//! * [`GramIndex::apply_delta`] batches the three against a
//!   [`GramIndexDelta`].
//!
//! ## Storage layout
//!
//! Grams are interned to dense `u32` handles
//! ([`crate::interner::StringInterner`]) and the posting lists live in a
//! flat `Vec` indexed by gram handle — a probe pays one hash lookup per
//! *query gram* and array indexing thereafter, instead of re-hashing the
//! gram string at every touch. Each posting list is a
//! [`BlockPostings`]: sorted ids in fixed blocks with per-block maxima
//! (see [`crate::postings`] for the intersection and membership lanes
//! built on that layout).
//!
//! ## Compaction trade-off
//!
//! Tombstones make removal cheap but leave dead entries in the posting
//! lists: probes pay one hash lookup per dead candidate, and gram
//! document frequencies are over-counted (harmless for the prefix-filter
//! guarantee — any `k`-gram subset works — but it skews the rarest-gram
//! heuristic toward stale statistics). [`GramIndex::remove`] therefore
//! triggers [`GramIndex::compact`] — a full O(postings) sweep — once
//! tombstones exceed [`COMPACTION_RATIO`] of the live population (and
//! the [`COMPACTION_FLOOR`] absolute count), which amortizes the sweep
//! to O(1) per removal while bounding dead-entry overhead to a constant
//! factor. Both knobs are per-index configurable via
//! [`GramIndex::with_compaction`]; the 0%-and-never extremes are pinned
//! by unit tests.

use crate::hash::FxHashSet;
use crate::interner::StringInterner;
use crate::postings::BlockPostings;

/// Default compaction trigger: compact when `tombstones > live *
/// COMPACTION_RATIO` (and at least a handful of tombstones exist — tiny
/// indexes aren't worth sweeping). Override per index with
/// [`GramIndex::with_compaction`].
pub const COMPACTION_RATIO: f64 = 0.25;

/// Default minimum number of tombstones before a compaction sweep is
/// considered.
pub const COMPACTION_FLOOR: usize = 16;

/// Inverted index from gram to the ids of the values containing it.
///
/// Values that produce no grams at all (empty strings after
/// normalization) leave no posting entries — they can never be probe
/// candidates — but still count as indexed values through `live`, so
/// [`GramIndex::len`] / [`GramIndex::all_ids`] report them.
#[derive(Debug, Clone)]
pub struct GramIndex {
    /// Gram string ↔ dense handle; `postings[handle]` is the gram's
    /// posting list.
    grams: StringInterner,
    postings: Vec<BlockPostings>,
    /// Ids currently indexed and not tombstoned.
    live: FxHashSet<u32>,
    /// Live ids indexed with an empty gram list (subset of `live`) —
    /// unreachable through postings, but the exact match set of a
    /// gramless query (two empty gram multisets are identical).
    gramless: FxHashSet<u32>,
    /// Removed ids whose posting entries have not been swept yet.
    tombstones: FxHashSet<u32>,
    /// Compact when `tombstones > live * ratio` (and ≥ floor exist).
    compaction_ratio: f64,
    compaction_floor: usize,
}

impl Default for GramIndex {
    fn default() -> Self {
        Self {
            grams: StringInterner::new(),
            postings: Vec::new(),
            live: FxHashSet::default(),
            gramless: FxHashSet::default(),
            tombstones: FxHashSet::default(),
            compaction_ratio: COMPACTION_RATIO,
            compaction_floor: COMPACTION_FLOOR,
        }
    }
}

impl GramIndex {
    /// Empty index with the default compaction policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the auto-compaction policy (builder style): sweep when
    /// unswept tombstones exceed both `floor` (absolute count) and
    /// `ratio` × the live population. The extremes are well-defined:
    /// `ratio = 0.0, floor = 0` sweeps on every removal (tombstones are
    /// never observable), `ratio = f64::INFINITY` disables automatic
    /// sweeping entirely — tombstones accumulate without bound (probes
    /// stay exact; call [`GramIndex::compact`] manually).
    pub fn with_compaction(mut self, ratio: f64, floor: usize) -> Self {
        self.compaction_ratio = ratio;
        self.compaction_floor = floor;
        self
    }

    /// Posting list of an interned gram handle, growing the arena on
    /// first touch.
    fn posting_mut(&mut self, gid: u32) -> &mut BlockPostings {
        let gid = gid as usize;
        if gid >= self.postings.len() {
            self.postings.resize_with(gid + 1, BlockPostings::new);
        }
        &mut self.postings[gid]
    }

    /// Index one value's (deduplicated) grams. Inserting an id that is
    /// already live is rejected with `false` — use
    /// [`GramIndex::replace`] to change a live value.
    pub fn insert(&mut self, id: u32, grams: &[String]) -> bool {
        if self.live.contains(&id) {
            return false;
        }
        if self.tombstones.contains(&id) {
            // Re-inserting a removed id must not resurrect its stale
            // postings; purge them first.
            self.compact();
        }
        self.live.insert(id);
        if grams.is_empty() {
            self.gramless.insert(id);
        }
        for g in grams {
            let gid = self.grams.intern(g);
            self.posting_mut(gid).insert(id);
        }
        true
    }

    /// Tombstone a live id; returns whether it was live. May trigger a
    /// compaction sweep (see module docs).
    pub fn remove(&mut self, id: u32) -> bool {
        if !self.live.remove(&id) {
            return false;
        }
        self.gramless.remove(&id);
        self.tombstones.insert(id);
        self.maybe_compact();
        true
    }

    /// Replace a live value's grams: `old_grams` entries are surgically
    /// removed from their posting lists, `new_grams` inserted. Returns
    /// `false` (and does nothing) if `id` is not live.
    pub fn replace(&mut self, id: u32, old_grams: &[String], new_grams: &[String]) -> bool {
        if !self.live.contains(&id) {
            return false;
        }
        for g in old_grams {
            if let Some(gid) = self.grams.get(g) {
                self.postings[gid as usize].remove(id);
            }
        }
        if new_grams.is_empty() {
            self.gramless.insert(id);
        } else {
            self.gramless.remove(&id);
        }
        for g in new_grams {
            let gid = self.grams.intern(g);
            self.posting_mut(gid).insert(id);
        }
        true
    }

    /// Apply a batch of changes.
    pub fn apply_delta(&mut self, delta: &GramIndexDelta) {
        for &id in &delta.removed {
            self.remove(id);
        }
        for (id, old, new) in &delta.replaced {
            self.replace(*id, old, new);
        }
        for (id, grams) in &delta.added {
            self.insert(*id, grams);
        }
    }

    /// Sweep tombstoned ids out of the posting lists.
    pub fn compact(&mut self) {
        if self.tombstones.is_empty() {
            return;
        }
        let dead = std::mem::take(&mut self.tombstones);
        for p in &mut self.postings {
            if !p.is_empty() {
                p.retain(|id| !dead.contains(&id));
            }
        }
    }

    fn maybe_compact(&mut self) {
        if self.tombstones.len() >= self.compaction_floor
            && self.tombstones.len() as f64 > self.live.len() as f64 * self.compaction_ratio
        {
            self.compact();
        }
    }

    /// Number of unswept tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Number of live indexed values.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live values are indexed.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Whether `id` is indexed and not tombstoned.
    pub fn is_live(&self, id: u32) -> bool {
        self.live.contains(&id)
    }

    /// Document frequency of a gram — the length of its posting list,
    /// *including* unswept tombstone entries (exact again after
    /// [`GramIndex::compact`]).
    pub fn df(&self, gram: &str) -> usize {
        self.grams
            .get(gram)
            .map(|gid| self.postings[gid as usize].len())
            .unwrap_or(0)
    }

    /// Union of the posting lists of the `k` rarest `query_grams`
    /// (rarity by [`GramIndex::df`]), tombstones filtered out.
    /// `query_grams` should be deduplicated; `k` is clamped to its
    /// length.
    pub fn candidates(&self, query_grams: &mut [String], k: usize) -> FxHashSet<u32> {
        query_grams.sort_by_key(|g| self.df(g));
        let mut out = FxHashSet::default();
        for g in query_grams.iter().take(k) {
            if let Some(gid) = self.grams.get(g) {
                out.extend(
                    self.postings[gid as usize]
                        .iter()
                        .filter(|id| !self.tombstones.contains(id)),
                );
            }
        }
        out
    }

    /// All live ids — including gramless values, so this always has
    /// exactly [`GramIndex::len`] entries.
    pub fn all_ids(&self) -> FxHashSet<u32> {
        self.live.clone()
    }

    /// Live ids indexed with an empty gram list. These can never be
    /// merged from postings, yet they are the *exact* candidate set of a
    /// gramless query: every q-gram measure scores two empty gram
    /// multisets as 1.0.
    pub fn gramless_ids(&self) -> FxHashSet<u32> {
        self.gramless.clone()
    }

    /// Merge in an index built from another input shard: posting lists
    /// stay id-sorted, so the merged index is observationally identical
    /// to a sequential build over the concatenated input. Gram handles
    /// are remapped through their strings — shard interners assign
    /// handles independently. Both indexes must be tombstone-free
    /// (freshly built).
    pub fn absorb(&mut self, other: GramIndex) {
        debug_assert!(self.tombstones.is_empty() && other.tombstones.is_empty());
        let GramIndex {
            grams,
            postings,
            live,
            gramless,
            ..
        } = other;
        self.live.extend(live);
        self.gramless.extend(gramless);
        for (ogid, list) in postings.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let gram = grams
                .resolve(ogid as u32)
                .expect("posting arena tracks the interner");
            let gid = self.grams.intern(gram);
            self.posting_mut(gid).merge(list);
        }
    }
}

/// A batch of index changes, pre-tokenized by the caller.
#[derive(Debug, Clone, Default)]
pub struct GramIndexDelta {
    /// `(id, grams)` of newly indexed values.
    pub added: Vec<(u32, Vec<String>)>,
    /// Ids to tombstone.
    pub removed: Vec<u32>,
    /// `(id, old grams, new grams)` of changed values.
    pub replaced: Vec<(u32, Vec<String>, Vec<String>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grams(s: &str) -> Vec<String> {
        // Cheap word-gram tokenizer for tests; the real trigram tokenizer
        // lives upstream in moma-simstring.
        let mut v: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        v.sort();
        v.dedup();
        v
    }

    fn probe(idx: &GramIndex, q: &str) -> FxHashSet<u32> {
        let mut g = grams(q);
        let k = g.len();
        idx.candidates(&mut g, k)
    }

    fn sample() -> GramIndex {
        let mut idx = GramIndex::new();
        idx.insert(0, &grams("data cleaning system"));
        idx.insert(1, &grams("schema matching cupid"));
        idx.insert(2, &grams("fuzzy match data cleaning"));
        idx.insert(3, &grams(""));
        idx
    }

    #[test]
    fn insert_and_probe() {
        let idx = sample();
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        assert_eq!(idx.df("data"), 2);
        assert_eq!(idx.df("cupid"), 1);
        let c = probe(&idx, "data cleaning");
        assert!(c.contains(&0) && c.contains(&2) && !c.contains(&1));
        assert_eq!(idx.all_ids().len(), 4);
        assert!(idx.all_ids().contains(&3)); // gramless still reported
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut idx = sample();
        assert!(!idx.insert(0, &grams("other")));
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.df("other"), 0);
    }

    #[test]
    fn remove_tombstones_and_filters_probes() {
        let mut idx = sample();
        assert!(idx.remove(0));
        assert!(!idx.remove(0)); // duplicate removal: no-op
        assert!(!idx.remove(99));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.tombstone_count(), 1);
        // Postings still hold the dead id (df over-counts)…
        assert_eq!(idx.df("data"), 2);
        // …but probes never return it.
        let c = probe(&idx, "data cleaning");
        assert!(!c.contains(&0) && c.contains(&2));
        assert!(!idx.all_ids().contains(&0));
        // Compaction makes df exact again.
        idx.compact();
        assert_eq!(idx.tombstone_count(), 0);
        assert_eq!(idx.df("data"), 1);
        assert_eq!(probe(&idx, "data cleaning"), {
            let mut s = FxHashSet::default();
            s.insert(2);
            s
        });
    }

    #[test]
    fn remove_gramless_value() {
        let mut idx = sample();
        assert!(idx.remove(3));
        assert_eq!(idx.len(), 3);
        assert!(!idx.all_ids().contains(&3));
        idx.compact();
        assert!(!idx.all_ids().contains(&3));
    }

    #[test]
    fn replace_swaps_postings_surgically() {
        let mut idx = sample();
        let old = grams("schema matching cupid");
        let new = grams("entity resolution survey");
        assert!(idx.replace(1, &old, &new));
        assert_eq!(idx.df("cupid"), 0);
        assert_eq!(idx.df("survey"), 1);
        assert!(probe(&idx, "entity resolution").contains(&1));
        assert!(probe(&idx, "schema cupid").is_empty());
        // Replace on a non-live id is a no-op.
        assert!(!idx.replace(99, &old, &new));
        // To/from gramless.
        assert!(idx.replace(1, &grams("entity resolution survey"), &grams("")));
        assert!(idx.all_ids().contains(&1));
        assert!(probe(&idx, "entity resolution").is_empty());
        assert!(idx.replace(1, &grams(""), &grams("back again")));
        assert!(probe(&idx, "back").contains(&1));
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn reinsert_after_remove_purges_stale_postings() {
        let mut idx = sample();
        idx.remove(0);
        assert!(idx.insert(0, &grams("brand new value")));
        assert_eq!(idx.tombstone_count(), 0); // compacted on the way in
        assert_eq!(idx.df("data"), 1); // stale entry gone
        assert!(probe(&idx, "brand new").contains(&0));
        assert!(!probe(&idx, "data cleaning").contains(&0));
    }

    #[test]
    fn automatic_compaction_bounds_tombstones() {
        let mut idx = GramIndex::new();
        for i in 0..200u32 {
            idx.insert(i, &grams(&format!("value number {i}")));
        }
        for i in 0..150u32 {
            idx.remove(i);
        }
        assert_eq!(idx.len(), 50);
        // Tombstones never exceed the compaction bound by far.
        assert!(
            idx.tombstone_count() <= COMPACTION_FLOOR.max((50.0 * COMPACTION_RATIO) as usize + 1),
            "tombstones {} never swept",
            idx.tombstone_count()
        );
        // Every remaining probe answer is live.
        for i in 150..200u32 {
            let c = probe(&idx, &format!("value number {i}"));
            assert!(c.contains(&i));
            assert!(c.iter().all(|id| *id >= 150));
        }
    }

    #[test]
    fn gramless_ids_tracked_through_maintenance() {
        let mut idx = sample(); // id 3 is gramless
        assert_eq!(idx.gramless_ids(), [3u32].into_iter().collect());
        // Replace to/from gramless moves ids in and out of the set.
        assert!(idx.replace(0, &grams("data cleaning system"), &grams("")));
        assert_eq!(idx.gramless_ids(), [0u32, 3].into_iter().collect());
        assert!(idx.replace(3, &grams(""), &grams("now has grams")));
        assert_eq!(idx.gramless_ids(), [0u32].into_iter().collect());
        // Removal drops the id.
        assert!(idx.remove(0));
        assert!(idx.gramless_ids().is_empty());
        // Fresh gramless insert after removal.
        assert!(idx.insert(9, &grams("")));
        assert_eq!(idx.gramless_ids(), [9u32].into_iter().collect());
    }

    #[test]
    fn eager_compaction_ratio_zero_floor_zero() {
        // 0% tombstone tolerance: every removal sweeps immediately, so
        // tombstones are never observable and df is always exact.
        let mut idx = GramIndex::new().with_compaction(0.0, 0);
        for i in 0..40u32 {
            idx.insert(i, &grams(&format!("value number {i}")));
        }
        for i in 0..40u32 {
            idx.remove(i);
            assert_eq!(idx.tombstone_count(), 0, "id {i} not swept eagerly");
            assert_eq!(idx.df("number"), (39 - i) as usize);
        }
        assert!(idx.is_empty());
        assert_eq!(idx.df("value"), 0);
    }

    #[test]
    fn disabled_compaction_accumulates_full_tombstone_population() {
        // ratio = ∞: tombstones reach 100% of the (former) population
        // without a sweep; probes stay exact throughout, manual compact
        // still works, and re-insertion purges on the way in.
        let mut idx = GramIndex::new().with_compaction(f64::INFINITY, 0);
        for i in 0..40u32 {
            idx.insert(i, &grams(&format!("value number {i}")));
        }
        for i in 0..40u32 {
            idx.remove(i);
        }
        assert_eq!(idx.tombstone_count(), 40);
        assert!(idx.is_empty());
        assert_eq!(idx.df("number"), 40); // stale, documented
        assert!(probe(&idx, "value number 7").is_empty());
        // Re-inserting a tombstoned id compacts first (correctness, not
        // policy — stale postings must not resurrect).
        assert!(idx.insert(7, &grams("fresh value")));
        assert_eq!(idx.tombstone_count(), 0);
        assert_eq!(idx.df("number"), 0);
        idx.compact(); // idempotent on a clean index
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn apply_delta_batches() {
        let mut idx = sample();
        let delta = GramIndexDelta {
            added: vec![(10, grams("new entry data"))],
            removed: vec![1, 77],
            replaced: vec![(
                2,
                grams("fuzzy match data cleaning"),
                grams("robust fuzzy match"),
            )],
        };
        idx.apply_delta(&delta);
        assert_eq!(idx.len(), 4); // -1 +1
        assert!(probe(&idx, "new entry").contains(&10));
        assert!(!idx.is_live(1));
        assert!(probe(&idx, "robust").contains(&2));
        assert!(!probe(&idx, "data cleaning").contains(&2));
        assert!(probe(&idx, "data").contains(&10));
    }

    #[test]
    fn incremental_equals_rebuild() {
        // After arbitrary maintenance + compaction the index is
        // observationally identical to a fresh build of the final state.
        let mut idx = GramIndex::new();
        let mut state: std::collections::BTreeMap<u32, String> = Default::default();
        let texts = [
            "data cleaning",
            "schema matching",
            "entity resolution",
            "fuzzy match",
            "record linkage",
        ];
        for i in 0..20u32 {
            let t = texts[i as usize % texts.len()];
            idx.insert(i, &grams(t));
            state.insert(i, t.to_owned());
        }
        for i in (0..20u32).step_by(3) {
            idx.remove(i);
            state.remove(&i);
        }
        for i in (1..20u32).step_by(4) {
            if let Some(old) = state.get(&i).cloned() {
                idx.replace(i, &grams(&old), &grams("replaced value"));
                state.insert(i, "replaced value".to_owned());
            }
        }
        idx.compact();
        let mut fresh = GramIndex::new();
        for (&id, text) in &state {
            fresh.insert(id, &grams(text));
        }
        assert_eq!(idx.len(), fresh.len());
        assert_eq!(idx.all_ids(), fresh.all_ids());
        for text in texts.iter().copied().chain(["replaced value"]) {
            for g in grams(text) {
                assert_eq!(idx.df(&g), fresh.df(&g), "gram {g}");
            }
            assert_eq!(probe(&idx, text), probe(&fresh, text), "probe {text}");
        }
    }

    #[test]
    fn candidates_respects_k() {
        let idx = sample();
        let mut g = grams("data cupid");
        // k = 1 probes only the rarest gram ("cupid", df 1).
        let c = idx.candidates(&mut g, 1);
        assert_eq!(g[0], "cupid"); // sorted rarest-first in place
        assert!(c.contains(&1) && !c.contains(&0));
    }

    #[test]
    fn absorb_merges_shard_postings() {
        let mut a = GramIndex::new();
        a.insert(0, &grams("alpha beta"));
        let mut b = GramIndex::new();
        b.insert(1, &grams("beta gamma"));
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.df("beta"), 2);
        // The shared posting holds both shards' ids.
        assert!(probe(&a, "beta").contains(&0) && probe(&a, "beta").contains(&1));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn grams(s: &str) -> Vec<String> {
        let mut v: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        v.sort();
        v.dedup();
        v
    }

    proptest! {
        /// Probes through the compressed layout stay exact across
        /// arbitrary insert/remove/replace interleavings — in the
        /// tombstoned state (compaction disabled) *and* after an
        /// explicit sweep — compared against a fresh rebuild of the
        /// surviving state.
        #[test]
        fn maintenance_states_probe_exactly(
            values in prop::collection::vec("[a-d]( [a-d]){0,5}", 3..20),
            replacement in "[a-d]( [a-d]){0,5}",
            query in "[a-d]( [a-d]){0,5}",
        ) {
            let mut idx = GramIndex::new().with_compaction(f64::INFINITY, 0);
            let mut state: std::collections::BTreeMap<u32, String> = Default::default();
            for (i, v) in values.iter().enumerate() {
                idx.insert(i as u32, &grams(v));
                state.insert(i as u32, v.clone());
            }
            for i in (0..values.len() as u32).step_by(3) {
                idx.remove(i);
                state.remove(&i);
            }
            for i in (1..values.len() as u32).step_by(2) {
                if let Some(old) = state.get(&i).cloned() {
                    idx.replace(i, &grams(&old), &grams(&replacement));
                    state.insert(i, replacement.clone());
                }
            }
            let mut fresh = GramIndex::new();
            for (&id, text) in &state {
                fresh.insert(id, &grams(text));
            }
            let probe = |idx: &GramIndex| {
                let mut g = grams(&query);
                let k = g.len();
                idx.candidates(&mut g, k)
            };
            // Tombstoned state probes exactly…
            prop_assert_eq!(probe(&idx), probe(&fresh));
            prop_assert_eq!(idx.all_ids(), fresh.all_ids());
            // …and the post-compaction state does too, with exact dfs.
            idx.compact();
            prop_assert_eq!(probe(&idx), probe(&fresh));
            for g in grams(&query) {
                prop_assert_eq!(idx.df(&g), fresh.df(&g));
            }
        }
    }
}
