//! Join strategies over mapping tables.
//!
//! Composition of mappings is a relational join: rows `(a, c, s1)` of the
//! left table meet rows `(c, b, s2)` of the right table on the shared
//! object `c` (paper Section 3.2 / 5.3). Three strategies are provided —
//! hash join (default), sort-merge join, and a nested-loop reference used
//! to property-test the other two.

use crate::index::Adjacency;
use crate::mapping_table::MappingTable;

/// A joined compose path `(a, c, b)` with both path similarities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinedPath {
    /// Domain object of the left table.
    pub a: u32,
    /// Intermediate object (left range == right domain).
    pub c: u32,
    /// Range object of the right table.
    pub b: u32,
    /// Similarity of `(a, c)` in the left table.
    pub s1: f64,
    /// Similarity of `(c, b)` in the right table.
    pub s2: f64,
}

/// Hash join: builds an [`Adjacency`] over the right table's domain
/// column and probes with the left table's range column.
pub fn hash_join(left: &MappingTable, right: &MappingTable, mut sink: impl FnMut(JoinedPath)) {
    let right_adj = Adjacency::over_domain(right);
    for l in left.iter() {
        for &(b, s2) in right_adj.neighbors(l.range) {
            sink(JoinedPath {
                a: l.domain,
                c: l.range,
                b,
                s1: l.sim,
                s2,
            });
        }
    }
}

/// Sort-merge join: sorts the left table by range and the right table by
/// domain, then merges the two sorted runs.
pub fn sort_merge_join(
    left: &MappingTable,
    right: &MappingTable,
    mut sink: impl FnMut(JoinedPath),
) {
    let mut l = left.clone();
    l.sort_by_range();
    let mut r = right.clone();
    r.sort_by_domain();
    let (lr, rr) = (l.rows(), r.rows());
    let (mut i, mut j) = (0usize, 0usize);
    while i < lr.len() && j < rr.len() {
        let key_l = lr[i].range;
        let key_r = rr[j].domain;
        if key_l < key_r {
            i += 1;
        } else if key_l > key_r {
            j += 1;
        } else {
            // Extent of equal keys on both sides.
            let i_end = lr[i..].iter().take_while(|c| c.range == key_l).count() + i;
            let j_end = rr[j..].iter().take_while(|c| c.domain == key_r).count() + j;
            for li in &lr[i..i_end] {
                for rj in &rr[j..j_end] {
                    sink(JoinedPath {
                        a: li.domain,
                        c: key_l,
                        b: rj.range,
                        s1: li.sim,
                        s2: rj.sim,
                    });
                }
            }
            i = i_end;
            j = j_end;
        }
    }
}

/// Reference nested-loop join (O(n·m)); used for correctness testing.
pub fn nested_loop_join(
    left: &MappingTable,
    right: &MappingTable,
    mut sink: impl FnMut(JoinedPath),
) {
    for l in left.iter() {
        for r in right.iter() {
            if l.range == r.domain {
                sink(JoinedPath {
                    a: l.domain,
                    c: l.range,
                    b: r.range,
                    s1: l.sim,
                    s2: r.sim,
                });
            }
        }
    }
}

/// Collect a join into a vector sorted by `(a, c, b)` — convenient for
/// comparisons in tests.
pub fn collect_sorted(
    join: impl Fn(&MappingTable, &MappingTable, &mut dyn FnMut(JoinedPath)),
    left: &MappingTable,
    right: &MappingTable,
) -> Vec<JoinedPath> {
    let mut out = Vec::new();
    join(left, right, &mut |p| out.push(p));
    out.sort_by_key(|x| (x.a, x.c, x.b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig6_tables() -> (MappingTable, MappingTable) {
        // Paper Figure 6: map1 venue->pub, map2 pub->venue'.
        let map1 = MappingTable::from_triples([
            (1, 101, 1.0),
            (1, 102, 1.0),
            (1, 103, 0.6),
            (2, 102, 0.6),
            (2, 103, 1.0),
        ]);
        let map2 = MappingTable::from_triples([(101, 11, 1.0), (102, 11, 1.0), (103, 12, 1.0)]);
        (map1, map2)
    }

    #[test]
    fn hash_join_finds_all_paths() {
        let (m1, m2) = fig6_tables();
        let paths = collect_sorted(|l, r, s| hash_join(l, r, s), &m1, &m2);
        // Every map1 row has exactly one continuation in map2.
        assert_eq!(paths.len(), 5);
        // v1 reaches v'1 via p1 and p2.
        let v1_v11: Vec<&JoinedPath> = paths.iter().filter(|p| p.a == 1 && p.b == 11).collect();
        assert_eq!(v1_v11.len(), 2);
    }

    #[test]
    fn strategies_agree_on_fig6() {
        let (m1, m2) = fig6_tables();
        let h = collect_sorted(|l, r, s| hash_join(l, r, s), &m1, &m2);
        let sm = collect_sorted(|l, r, s| sort_merge_join(l, r, s), &m1, &m2);
        let nl = collect_sorted(|l, r, s| nested_loop_join(l, r, s), &m1, &m2);
        assert_eq!(h, nl);
        assert_eq!(sm, nl);
    }

    #[test]
    fn disjoint_tables_join_empty() {
        let l = MappingTable::from_triples([(0, 1, 0.5)]);
        let r = MappingTable::from_triples([(2, 3, 0.5)]);
        assert!(collect_sorted(|l, r, s| hash_join(l, r, s), &l, &r).is_empty());
        assert!(collect_sorted(|l, r, s| sort_merge_join(l, r, s), &l, &r).is_empty());
    }

    #[test]
    fn empty_inputs() {
        let e = MappingTable::new();
        let t = MappingTable::from_triples([(0, 1, 0.5)]);
        assert!(collect_sorted(|l, r, s| hash_join(l, r, s), &e, &t).is_empty());
        assert!(collect_sorted(|l, r, s| sort_merge_join(l, r, s), &t, &e).is_empty());
    }

    #[test]
    fn similarities_flow_through() {
        let l = MappingTable::from_triples([(7, 8, 0.25)]);
        let r = MappingTable::from_triples([(8, 9, 0.75)]);
        let mut got = Vec::new();
        hash_join(&l, &r, |p| got.push(p));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].s1, 0.25);
        assert_eq!(got[0].s2, 0.75);
        assert_eq!((got[0].a, got[0].c, got[0].b), (7, 8, 9));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_table(max_key: u32, max_rows: usize) -> impl Strategy<Value = MappingTable> {
        prop::collection::vec((0..max_key, 0..max_key, 0.0f64..=1.0), 0..max_rows)
            .prop_map(MappingTable::from_triples)
    }

    proptest! {
        #[test]
        fn hash_join_equals_nested_loop(
            l in arb_table(24, 60),
            r in arb_table(24, 60),
        ) {
            let h = collect_sorted(|l, r, s| hash_join(l, r, s), &l, &r);
            let n = collect_sorted(|l, r, s| nested_loop_join(l, r, s), &l, &r);
            prop_assert_eq!(h, n);
        }

        #[test]
        fn sort_merge_join_equals_nested_loop(
            l in arb_table(24, 60),
            r in arb_table(24, 60),
        ) {
            let sm = collect_sorted(|l, r, s| sort_merge_join(l, r, s), &l, &r);
            let n = collect_sorted(|l, r, s| nested_loop_join(l, r, s), &l, &r);
            prop_assert_eq!(sm, n);
        }
    }
}
