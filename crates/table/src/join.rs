//! Join strategies over mapping tables.
//!
//! Composition of mappings is a relational join: rows `(a, c, s1)` of the
//! left table meet rows `(c, b, s2)` of the right table on the shared
//! object `c` (paper Section 3.2 / 5.3). Three strategies are provided —
//! hash join (default), sort-merge join, and a nested-loop reference used
//! to property-test the other two — plus parallel variants
//! ([`par_hash_join`], [`par_sort_merge_join`]) that shard the left table
//! across threads and emit results in an order bit-identical to their
//! sequential counterparts (see [`crate::exec`]).

use crate::exec::Parallelism;
use crate::index::Adjacency;
use crate::mapping_table::{Correspondence, MappingTable};

/// A joined compose path `(a, c, b)` with both path similarities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinedPath {
    /// Domain object of the left table.
    pub a: u32,
    /// Intermediate object (left range == right domain).
    pub c: u32,
    /// Range object of the right table.
    pub b: u32,
    /// Similarity of `(a, c)` in the left table.
    pub s1: f64,
    /// Similarity of `(c, b)` in the right table.
    pub s2: f64,
}

/// Hash join: builds an [`Adjacency`] over the right table's domain
/// column and probes with the left table's range column.
pub fn hash_join(left: &MappingTable, right: &MappingTable, mut sink: impl FnMut(JoinedPath)) {
    let right_adj = Adjacency::over_domain(right);
    for l in left.iter() {
        for &(b, s2) in right_adj.neighbors(l.range) {
            sink(JoinedPath {
                a: l.domain,
                c: l.range,
                b,
                s1: l.sim,
                s2,
            });
        }
    }
}

/// Parallel hash join: the right-side [`Adjacency`] is built once and
/// probed read-only by every worker; the left table is sharded into
/// contiguous row ranges. Per-shard outputs are drained into `sink` in
/// shard order, so the emitted sequence is bit-identical to
/// [`hash_join`]. With `par.threads == 1` this *is* [`hash_join`].
///
/// Memory note: unlike the streaming sequential joins, the parallel
/// variants buffer the whole join output (`O(paths)`) before sinking —
/// the price of the deterministic merge order. For joins whose output
/// vastly exceeds the input (heavily skewed keys), prefer
/// `Parallelism::sequential()`.
pub fn par_hash_join(
    left: &MappingTable,
    right: &MappingTable,
    par: &Parallelism,
    mut sink: impl FnMut(JoinedPath),
) {
    if par.shard_count(left.len()) <= 1 {
        return hash_join(left, right, sink);
    }
    let right_adj = Adjacency::over_domain(right);
    let shards = par.run_sharded(left.rows(), |shard| {
        let mut out = Vec::new();
        for l in shard {
            for &(b, s2) in right_adj.neighbors(l.range) {
                out.push(JoinedPath {
                    a: l.domain,
                    c: l.range,
                    b,
                    s1: l.sim,
                    s2,
                });
            }
        }
        out
    });
    for shard in shards {
        for p in shard {
            sink(p);
        }
    }
}

/// Merge two sorted runs (left sorted by `range`, right sorted by
/// `domain`) — the inner loop shared by the sequential and parallel
/// sort-merge joins.
fn merge_runs(lr: &[Correspondence], rr: &[Correspondence], sink: &mut impl FnMut(JoinedPath)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < lr.len() && j < rr.len() {
        let key_l = lr[i].range;
        let key_r = rr[j].domain;
        if key_l < key_r {
            i += 1;
        } else if key_l > key_r {
            j += 1;
        } else {
            // Extent of equal keys on both sides.
            let i_end = lr[i..].iter().take_while(|c| c.range == key_l).count() + i;
            let j_end = rr[j..].iter().take_while(|c| c.domain == key_r).count() + j;
            for li in &lr[i..i_end] {
                for rj in &rr[j..j_end] {
                    sink(JoinedPath {
                        a: li.domain,
                        c: key_l,
                        b: rj.range,
                        s1: li.sim,
                        s2: rj.sim,
                    });
                }
            }
            i = i_end;
            j = j_end;
        }
    }
}

/// Sort-merge join: sorts the left table by range and the right table by
/// domain, then merges the two sorted runs.
pub fn sort_merge_join(
    left: &MappingTable,
    right: &MappingTable,
    mut sink: impl FnMut(JoinedPath),
) {
    let mut l = left.clone();
    l.sort_by_range();
    let mut r = right.clone();
    r.sort_by_domain();
    merge_runs(l.rows(), r.rows(), &mut sink);
}

/// Parallel sort-merge join: both inputs are sorted exactly as in
/// [`sort_merge_join`], then the left run is cut into key-aligned shards
/// (a run of equal join keys never straddles a shard boundary). Each
/// worker binary-searches its starting position in the shared right run
/// and merges independently; shard outputs are concatenated in order, so
/// the emitted sequence is bit-identical to the sequential join.
pub fn par_sort_merge_join(
    left: &MappingTable,
    right: &MappingTable,
    par: &Parallelism,
    mut sink: impl FnMut(JoinedPath),
) {
    let shards = par.shard_count(left.len());
    if shards <= 1 {
        return sort_merge_join(left, right, sink);
    }
    let mut l = left.clone();
    l.sort_by_range();
    let mut r = right.clone();
    r.sort_by_domain();
    let (lr, rr) = (l.rows(), r.rows());

    // Key-aligned shard boundaries over the sorted left run.
    let target = lr.len().div_ceil(shards);
    let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(shards);
    let mut start = 0usize;
    while start < lr.len() {
        let mut end = (start + target).min(lr.len());
        while end < lr.len() && lr[end].range == lr[end - 1].range {
            end += 1;
        }
        bounds.push((start, end));
        start = end;
    }

    let outs = par.run_tasks(bounds.len(), |t| {
        let (s, e) = bounds[t];
        let shard = &lr[s..e];
        // Skip right rows that cannot meet this shard's smallest key.
        let j0 = rr.partition_point(|c| c.domain < shard[0].range);
        let mut out = Vec::new();
        merge_runs(shard, &rr[j0..], &mut |p| out.push(p));
        out
    });
    for shard in outs {
        for p in shard {
            sink(p);
        }
    }
}

/// Reference nested-loop join (O(n·m)); used for correctness testing.
pub fn nested_loop_join(
    left: &MappingTable,
    right: &MappingTable,
    mut sink: impl FnMut(JoinedPath),
) {
    for l in left.iter() {
        for r in right.iter() {
            if l.range == r.domain {
                sink(JoinedPath {
                    a: l.domain,
                    c: l.range,
                    b: r.range,
                    s1: l.sim,
                    s2: r.sim,
                });
            }
        }
    }
}

/// Collect a join into a vector sorted by `(a, c, b)` — convenient for
/// comparisons in tests.
pub fn collect_sorted(
    join: impl Fn(&MappingTable, &MappingTable, &mut dyn FnMut(JoinedPath)),
    left: &MappingTable,
    right: &MappingTable,
) -> Vec<JoinedPath> {
    let mut out = Vec::new();
    join(left, right, &mut |p| out.push(p));
    out.sort_by_key(|x| (x.a, x.c, x.b));
    out
}

/// Collect a join as a canonical *multiset*: sorted by the full path
/// including similarity bits, so tables with duplicate rows (same pair,
/// different similarity) compare exactly.
pub fn collect_multiset(
    join: impl Fn(&MappingTable, &MappingTable, &mut dyn FnMut(JoinedPath)),
    left: &MappingTable,
    right: &MappingTable,
) -> Vec<JoinedPath> {
    let mut out = Vec::new();
    join(left, right, &mut |p| out.push(p));
    out.sort_by_key(|x| (x.a, x.c, x.b, x.s1.to_bits(), x.s2.to_bits()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig6_tables() -> (MappingTable, MappingTable) {
        // Paper Figure 6: map1 venue->pub, map2 pub->venue'.
        let map1 = MappingTable::from_triples([
            (1, 101, 1.0),
            (1, 102, 1.0),
            (1, 103, 0.6),
            (2, 102, 0.6),
            (2, 103, 1.0),
        ]);
        let map2 = MappingTable::from_triples([(101, 11, 1.0), (102, 11, 1.0), (103, 12, 1.0)]);
        (map1, map2)
    }

    #[test]
    fn hash_join_finds_all_paths() {
        let (m1, m2) = fig6_tables();
        let paths = collect_sorted(|l, r, s| hash_join(l, r, s), &m1, &m2);
        // Every map1 row has exactly one continuation in map2.
        assert_eq!(paths.len(), 5);
        // v1 reaches v'1 via p1 and p2.
        let v1_v11: Vec<&JoinedPath> = paths.iter().filter(|p| p.a == 1 && p.b == 11).collect();
        assert_eq!(v1_v11.len(), 2);
    }

    #[test]
    fn strategies_agree_on_fig6() {
        let (m1, m2) = fig6_tables();
        let h = collect_sorted(|l, r, s| hash_join(l, r, s), &m1, &m2);
        let sm = collect_sorted(|l, r, s| sort_merge_join(l, r, s), &m1, &m2);
        let nl = collect_sorted(|l, r, s| nested_loop_join(l, r, s), &m1, &m2);
        assert_eq!(h, nl);
        assert_eq!(sm, nl);
    }

    #[test]
    fn disjoint_tables_join_empty() {
        let l = MappingTable::from_triples([(0, 1, 0.5)]);
        let r = MappingTable::from_triples([(2, 3, 0.5)]);
        assert!(collect_sorted(|l, r, s| hash_join(l, r, s), &l, &r).is_empty());
        assert!(collect_sorted(|l, r, s| sort_merge_join(l, r, s), &l, &r).is_empty());
    }

    #[test]
    fn empty_inputs() {
        let e = MappingTable::new();
        let t = MappingTable::from_triples([(0, 1, 0.5)]);
        assert!(collect_sorted(|l, r, s| hash_join(l, r, s), &e, &t).is_empty());
        assert!(collect_sorted(|l, r, s| sort_merge_join(l, r, s), &t, &e).is_empty());
    }

    #[test]
    fn parallel_joins_emit_identical_sequences() {
        // Not just the same multiset: the *emission order* into the sink
        // must be bit-identical to the sequential strategies.
        let (m1, m2) = fig6_tables();
        let collect = |f: &dyn Fn(&mut dyn FnMut(JoinedPath))| {
            let mut v = Vec::new();
            f(&mut |p| v.push(p));
            v
        };
        let seq_hash = collect(&|s| hash_join(&m1, &m2, s));
        let seq_sm = collect(&|s| sort_merge_join(&m1, &m2, s));
        for threads in [1usize, 2, 8] {
            let par = Parallelism::new(threads).with_min_shard_size(1);
            let ph = collect(&|s| par_hash_join(&m1, &m2, &par, s));
            let psm = collect(&|s| par_sort_merge_join(&m1, &m2, &par, s));
            assert_eq!(ph, seq_hash, "hash, threads={threads}");
            assert_eq!(psm, seq_sm, "sort-merge, threads={threads}");
        }
    }

    #[test]
    fn parallel_joins_on_empty_inputs() {
        let e = MappingTable::new();
        let t = MappingTable::from_triples([(0, 1, 0.5)]);
        let par = Parallelism::new(4).with_min_shard_size(1);
        assert!(collect_sorted(|l, r, s| par_hash_join(l, r, &par, s), &e, &t).is_empty());
        assert!(collect_sorted(|l, r, s| par_hash_join(l, r, &par, s), &t, &e).is_empty());
        assert!(collect_sorted(|l, r, s| par_sort_merge_join(l, r, &par, s), &e, &e).is_empty());
    }

    #[test]
    fn parallel_self_join() {
        // Self-composition: the left and right tables are the same table.
        let t = MappingTable::from_triples([(0, 1, 0.9), (1, 0, 0.8), (1, 1, 0.7), (2, 1, 0.6)]);
        let par = Parallelism::new(2).with_min_shard_size(1);
        let reference = collect_multiset(|l, r, s| nested_loop_join(l, r, s), &t, &t);
        let ph = collect_multiset(|l, r, s| par_hash_join(l, r, &par, s), &t, &t);
        let psm = collect_multiset(|l, r, s| par_sort_merge_join(l, r, &par, s), &t, &t);
        assert_eq!(ph, reference);
        assert_eq!(psm, reference);
    }

    #[test]
    fn similarities_flow_through() {
        let l = MappingTable::from_triples([(7, 8, 0.25)]);
        let r = MappingTable::from_triples([(8, 9, 0.75)]);
        let mut got = Vec::new();
        hash_join(&l, &r, |p| got.push(p));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].s1, 0.25);
        assert_eq!(got[0].s2, 0.75);
        assert_eq!((got[0].a, got[0].c, got[0].b), (7, 8, 9));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_table(max_key: u32, max_rows: usize) -> impl Strategy<Value = MappingTable> {
        prop::collection::vec((0..max_key, 0..max_key, 0.0f64..=1.0), 0..max_rows)
            .prop_map(MappingTable::from_triples)
    }

    /// Raw table that may contain duplicate `(a, b)` rows — built with
    /// `push` instead of `from_triples`, which would dedup them. A small
    /// key space makes duplicates likely.
    fn arb_dup_table(max_key: u32, max_rows: usize) -> impl Strategy<Value = MappingTable> {
        prop::collection::vec((0..max_key, 0..max_key, 0.0f64..=1.0), 0..max_rows).prop_map(
            |rows| {
                let mut t = MappingTable::new();
                for (a, b, s) in rows {
                    t.push(a, b, s);
                }
                t
            },
        )
    }

    proptest! {
        #[test]
        fn hash_join_equals_nested_loop(
            l in arb_table(24, 60),
            r in arb_table(24, 60),
        ) {
            let h = collect_sorted(|l, r, s| hash_join(l, r, s), &l, &r);
            let n = collect_sorted(|l, r, s| nested_loop_join(l, r, s), &l, &r);
            prop_assert_eq!(h, n);
        }

        #[test]
        fn sort_merge_join_equals_nested_loop(
            l in arb_table(24, 60),
            r in arb_table(24, 60),
        ) {
            let sm = collect_sorted(|l, r, s| sort_merge_join(l, r, s), &l, &r);
            let n = collect_sorted(|l, r, s| nested_loop_join(l, r, s), &l, &r);
            prop_assert_eq!(sm, n);
        }

        /// All five strategies produce the same multiset of `JoinedPath`s
        /// — on raw tables with duplicate rows (including the empty table:
        /// `0..60` rows starts at zero) and across thread counts 1/2/8.
        #[test]
        fn all_strategies_same_multiset(
            l in arb_dup_table(8, 60),
            r in arb_dup_table(8, 60),
        ) {
            let reference = collect_multiset(|l, r, s| nested_loop_join(l, r, s), &l, &r);
            let h = collect_multiset(|l, r, s| hash_join(l, r, s), &l, &r);
            let sm = collect_multiset(|l, r, s| sort_merge_join(l, r, s), &l, &r);
            prop_assert_eq!(&h, &reference);
            prop_assert_eq!(&sm, &reference);
            for threads in [1usize, 2, 8] {
                let par = Parallelism::new(threads).with_min_shard_size(1);
                let ph = collect_multiset(|l, r, s| par_hash_join(l, r, &par, s), &l, &r);
                let psm =
                    collect_multiset(|l, r, s| par_sort_merge_join(l, r, &par, s), &l, &r);
                prop_assert_eq!(&ph, &reference, "par_hash threads={}", threads);
                prop_assert_eq!(&psm, &reference, "par_sort_merge threads={}", threads);
            }
        }

        /// Self-join: composing a raw (possibly duplicate-row) table with
        /// itself agrees with the nested-loop reference in parallel too.
        #[test]
        fn parallel_self_join_equals_nested_loop(
            t in arb_dup_table(10, 50),
        ) {
            let reference = collect_multiset(|l, r, s| nested_loop_join(l, r, s), &t, &t);
            for threads in [2usize, 8] {
                let par = Parallelism::new(threads).with_min_shard_size(1);
                let ph = collect_multiset(|l, r, s| par_hash_join(l, r, &par, s), &t, &t);
                let psm =
                    collect_multiset(|l, r, s| par_sort_merge_join(l, r, &par, s), &t, &t);
                prop_assert_eq!(&ph, &reference, "threads={}", threads);
                prop_assert_eq!(&psm, &reference, "threads={}", threads);
            }
        }
    }
}
