//! Deterministic sharded execution.
//!
//! MOMA's hot paths — attribute-matcher probing, mapping-table joins,
//! trigram-index construction — all decompose the same way: split one
//! input sequence into contiguous shards, process every shard
//! independently against shared read-only state, and concatenate the
//! per-shard results *in shard order*. Because shards are contiguous
//! input ranges and the merge order is fixed, the concatenated output is
//! bit-identical to a sequential run no matter how many threads execute
//! the shards or how they interleave. That guarantee is what lets the
//! parallel paths share every determinism test with the sequential ones.
//!
//! The scheduler is intentionally work-stealing-free: plain
//! [`std::thread::scope`] workers striding over a fixed task list. MOMA's
//! shards are statically balanced (equal-size input ranges), so the
//! simplicity buys determinism without losing meaningful utilization.

/// Parallel-execution configuration threaded through matchers, joins and
/// workflows.
///
/// `threads == 1` (or an input smaller than two minimum shards) means the
/// work runs inline on the calling thread — the sequential code path,
/// with zero spawn overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Maximum number of worker threads (1 = sequential).
    pub threads: usize,
    /// Lower bound on the average shard length: an input is never split
    /// into more than `items / min_shard_size` shards, and inputs shorter
    /// than two minimum shards run sequentially.
    pub min_shard_size: usize,
}

/// Environment variable overriding the default thread count
/// (`Parallelism::from_env`). `MOMA_THREADS=1` forces sequential
/// execution; `MOMA_THREADS=8` caps workers at 8.
pub const THREADS_ENV: &str = "MOMA_THREADS";

/// Default minimum shard size: below ~64 items per shard, spawn overhead
/// dominates any scoring or probing win.
pub const DEFAULT_MIN_SHARD: usize = 64;

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

impl Parallelism {
    /// Sequential execution (one thread, no spawning).
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            min_shard_size: DEFAULT_MIN_SHARD,
        }
    }

    /// Execution with an explicit thread cap (`0` is treated as `1`).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_shard_size: DEFAULT_MIN_SHARD,
        }
    }

    /// One thread per available CPU.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Thread count from the `MOMA_THREADS` environment variable, falling
    /// back to [`Parallelism::auto`] when unset. An unparsable value also
    /// falls back to auto, with a warning on stderr — silently honoring a
    /// typo would make e.g. `MOMA_THREADS=one` run fully parallel while
    /// the user believes they forced the sequential path.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => Self::new(n),
                Err(_) => {
                    // Contexts call `from_env` freely; warn only once.
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "warning: {THREADS_ENV}=`{v}` is not a thread count; \
                             using one thread per CPU"
                        );
                    });
                    Self::auto()
                }
            },
            Err(_) => Self::auto(),
        }
    }

    /// Override the minimum shard size (builder style).
    pub fn with_min_shard_size(mut self, min_shard_size: usize) -> Self {
        self.min_shard_size = min_shard_size.max(1);
        self
    }

    /// Whether this configuration can ever spawn worker threads.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Number of shards an input of `items` elements is split into:
    /// `1` when sequential or when the input is too small, otherwise at
    /// most `threads` and at most `items / min_shard_size`, so the
    /// average shard holds at least `min_shard_size` items (the final
    /// remainder shard may be shorter).
    pub fn shard_count(&self, items: usize) -> usize {
        let min = self.min_shard_size.max(1);
        if self.threads <= 1 || items < 2 * min {
            return 1;
        }
        self.threads.min((items / min).max(1))
    }

    /// Run `tasks` independent jobs, returning their results **in task
    /// order**. Sequential when `threads <= 1`; otherwise
    /// `min(threads, tasks)` scoped workers stride over the task indexes.
    pub fn run_tasks<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(tasks);
        if workers <= 1 {
            return (0..tasks).map(f).collect();
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        (w..tasks)
                            .step_by(workers)
                            .map(|t| (t, f(t)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut out: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
            for h in handles {
                for (t, r) in h.join().expect("exec worker panicked") {
                    out[t] = Some(r);
                }
            }
            out.into_iter()
                .map(|r| r.expect("every task index covered"))
                .collect()
        })
    }

    /// Split `items` into contiguous shards, map every shard with `f`
    /// (possibly on worker threads probing shared read-only state), and
    /// return the per-shard results **in input order**. Concatenating the
    /// results therefore reproduces the sequential output exactly.
    pub fn run_sharded<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        let shards = self.shard_count(items.len());
        if shards <= 1 {
            return vec![f(items)];
        }
        let chunk = items.len().div_ceil(shards);
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        self.run_tasks(chunks.len(), |i| f(chunks[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_never_shards() {
        let p = Parallelism::sequential();
        assert_eq!(p.shard_count(1_000_000), 1);
        assert!(!p.is_parallel());
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(Parallelism::new(0).threads, 1);
    }

    #[test]
    fn small_inputs_stay_sequential() {
        let p = Parallelism::new(8);
        assert_eq!(p.shard_count(0), 1);
        assert_eq!(p.shard_count(2 * DEFAULT_MIN_SHARD - 1), 1);
        assert!(p.shard_count(2 * DEFAULT_MIN_SHARD) > 1);
    }

    #[test]
    fn shard_count_respects_min_shard() {
        let p = Parallelism::new(16).with_min_shard_size(10);
        // 45 items / min 10 -> at most 4 shards even with 16 threads,
        // keeping the average shard at or above the 10-item minimum.
        assert_eq!(p.shard_count(45), 4);
        assert_eq!(p.shard_count(1_000), 16);
        // The average shard never drops below min_shard_size.
        for items in [20usize, 45, 129, 1_000] {
            let shards = p.shard_count(items);
            assert!(items / shards >= 10, "items={items} shards={shards}");
        }
    }

    #[test]
    fn run_sharded_preserves_order() {
        let items: Vec<u32> = (0..1_000).collect();
        for threads in [1usize, 2, 3, 8] {
            let p = Parallelism::new(threads).with_min_shard_size(1);
            let shards = p.run_sharded(&items, |s| s.to_vec());
            let flat: Vec<u32> = shards.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn run_tasks_in_task_order() {
        let p = Parallelism::new(4);
        let out = p.run_tasks(11, |t| t * t);
        assert_eq!(out, (0..11).map(|t| t * t).collect::<Vec<_>>());
        assert!(p.run_tasks(0, |t| t).is_empty());
    }

    #[test]
    fn run_sharded_empty_input() {
        let p = Parallelism::new(4);
        let out = p.run_sharded(&[] as &[u32], |s| s.len());
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn from_env_parses() {
        // Can't mutate the environment safely in tests running in
        // parallel; just check the fallback path produces >= 1 thread.
        assert!(Parallelism::from_env().threads >= 1);
        assert!(Parallelism::auto().threads >= 1);
    }
}
