//! String interning: stable `u32` handles for string identifiers.
//!
//! Logical sources store instance ids as strings (`conf/VLDB/...`,
//! `P-672216`); the table engine works on dense `u32` handles. The
//! interner provides the bidirectional bridge, e.g. when loading mapping
//! tables from TSV files keyed by source ids.

use crate::hash::{fx_map_with_capacity, FxHashMap};

/// Bidirectional string ↔ `u32` interner.
#[derive(Debug, Clone, Default)]
pub struct StringInterner {
    by_str: FxHashMap<String, u32>,
    by_id: Vec<String>,
}

impl StringInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty interner with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            by_str: fx_map_with_capacity(cap),
            by_id: Vec::with_capacity(cap),
        }
    }

    /// Intern `s`, returning its stable handle.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        let id = self.by_id.len() as u32;
        self.by_str.insert(s.to_owned(), id);
        self.by_id.push(s.to_owned());
        id
    }

    /// Handle of `s` if already interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.by_str.get(s).copied()
    }

    /// String for a handle.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.by_id.get(id as usize).map(|s| s.as_str())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate `(id, string)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = StringInterner::new();
        let a = i.intern("conf/VLDB/X01");
        let b = i.intern("conf/VLDB/X01");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn handles_are_dense() {
        let mut i = StringInterner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("c"), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = StringInterner::with_capacity(2);
        let id = i.intern("P-672216");
        assert_eq!(i.resolve(id), Some("P-672216"));
        assert_eq!(i.resolve(999), None);
        assert_eq!(i.get("P-672216"), Some(id));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn iter_order() {
        let mut i = StringInterner::new();
        i.intern("x");
        i.intern("y");
        let v: Vec<(u32, &str)> = i.iter().collect();
        assert_eq!(v, vec![(0, "x"), (1, "y")]);
    }
}
