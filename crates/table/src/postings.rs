//! Block-compressed posting lists with galloping intersection.
//!
//! [`BlockPostings`] stores a sorted, duplicate-free `u32` id list in
//! fixed-size blocks of [`BLOCK`] entries with a per-block maximum
//! (roaring-bitmap flavored, but keeping the ids verbatim — posting
//! lists here are small enough that the win is *skipping*, not bit
//! packing). The layout buys three things on the probe hot path:
//!
//! * **membership** ([`BlockPostings::contains`]) locates the one block
//!   that can hold the id via `partition_point` over the block maxima,
//!   then scans that ≤ [`BLOCK`]-entry block in branch-free chunks of
//!   `CHUNK` equality compares — a shape LLVM autovectorizes into
//!   SIMD lanes,
//! * **intersection** ([`intersect_gallop`]) walks the smaller list and
//!   *gallops* (exponential search + binary refine) through the larger
//!   one, so a rare-gram list meets a frequent-gram list in
//!   `O(small · log(large/small))` instead of `O(small + large)`
//!   ([`BlockPostings::intersect_blocked`] adds block-max skipping for the mid
//!   selectivity range; [`intersect_linear`] is the naive merge both are
//!   property-tested against),
//! * **maintenance** stays cheap: sorted insert/remove only rebuild the
//!   block maxima from the touched block onward, and in-order appends
//!   (the batch-build case) are O(1).
//!
//! When does galloping beat the linear merge? When the length ratio is
//! skewed: the crossover is roughly `small · log₂(large) < small +
//! large`, i.e. a ratio beyond ~16×. Candidate probes intersect a
//! query's *rarest* grams against frequent ones, which is exactly that
//! skewed regime; the criterion bench `postings` pins the crossover
//! empirically.

/// Ids per block; one `block_max` entry summarizes each block.
pub const BLOCK: usize = 64;

/// Equality-compare lane width inside a block scan. Eight `u32`s fill a
/// 256-bit vector register.
const CHUNK: usize = 8;

/// A sorted, duplicate-free `u32` posting list in [`BLOCK`]-sized blocks
/// with per-block maxima.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockPostings {
    /// Strictly increasing ids.
    ids: Vec<u32>,
    /// `block_max[b]` = last (largest) id of block `b`.
    block_max: Vec<u32>,
}

impl BlockPostings {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an already strictly-increasing id list.
    pub fn from_sorted(ids: Vec<u32>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly increasing"
        );
        let mut p = Self {
            ids,
            block_max: Vec::new(),
        };
        p.rebuild_blocks_from(0);
        p
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list holds no ids.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted ids as a slice.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Iterate the ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ids.iter().copied()
    }

    /// Recompute `block_max` for every block from `from_block` on.
    fn rebuild_blocks_from(&mut self, from_block: usize) {
        let nblocks = self.ids.len().div_ceil(BLOCK);
        self.block_max.truncate(from_block.min(nblocks));
        for b in self.block_max.len()..nblocks {
            let end = ((b + 1) * BLOCK).min(self.ids.len());
            self.block_max.push(self.ids[end - 1]);
        }
    }

    /// Insert `id`, keeping the list sorted; `false` if already present.
    /// In-order appends (id larger than everything present) are O(1);
    /// out-of-order inserts shift and rebuild maxima from the touched
    /// block, O(n/[`BLOCK`]) beyond the shift itself.
    pub fn insert(&mut self, id: u32) -> bool {
        match self.ids.last() {
            None => {
                self.ids.push(id);
                self.block_max.push(id);
                true
            }
            Some(&last) if id > last => {
                self.ids.push(id);
                let b = (self.ids.len() - 1) / BLOCK;
                if b == self.block_max.len() {
                    self.block_max.push(id);
                } else {
                    self.block_max[b] = id;
                }
                true
            }
            Some(_) => match self.ids.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    self.ids.insert(pos, id);
                    self.rebuild_blocks_from(pos / BLOCK);
                    true
                }
            },
        }
    }

    /// Remove `id`; `false` if absent.
    pub fn remove(&mut self, id: u32) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                self.rebuild_blocks_from(pos / BLOCK);
                true
            }
            Err(_) => false,
        }
    }

    /// Keep only ids satisfying the predicate (compaction sweep).
    pub fn retain(&mut self, mut pred: impl FnMut(u32) -> bool) {
        self.ids.retain(|&id| pred(id));
        self.rebuild_blocks_from(0);
    }

    /// Block-guided membership test: locate the single block whose max
    /// is ≥ `id`, then scan it in `CHUNK`-wide branch-free equality
    /// lanes.
    pub fn contains(&self, id: u32) -> bool {
        let b = self.block_max.partition_point(|&m| m < id);
        if b >= self.block_max.len() {
            return false;
        }
        let start = b * BLOCK;
        let end = (start + BLOCK).min(self.ids.len());
        let block = &self.ids[start..end];
        let mut hit = 0u32;
        let mut chunks = block.chunks_exact(CHUNK);
        for ch in &mut chunks {
            let mut lane = 0u32;
            for &v in ch {
                lane |= u32::from(v == id);
            }
            hit |= lane;
        }
        for &v in chunks.remainder() {
            hit |= u32::from(v == id);
        }
        hit != 0
    }

    /// Merge another (disjoint or overlapping) list in; duplicates
    /// collapse. The contiguous-shard case (`other` entirely after
    /// `self`) appends without re-merging.
    pub fn merge(&mut self, other: BlockPostings) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other;
            return;
        }
        let tail_block = (self.ids.len() - 1) / BLOCK;
        if self.ids.last() < other.ids.first() {
            self.ids.extend(other.ids);
            self.rebuild_blocks_from(tail_block);
            return;
        }
        let mut merged = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (a, b) = (&self.ids, &other.ids);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.ids = merged;
        self.rebuild_blocks_from(0);
    }

    /// Block-max-skipping intersection: blocks of `self` whose range
    /// cannot overlap the frontier of `other` are skipped wholesale,
    /// the rest merge linearly. The mid-selectivity lane between
    /// [`intersect_linear`] and [`intersect_gallop`].
    pub fn intersect_blocked(&self, other: &BlockPostings) -> Vec<u32> {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::new();
        let mut j = 0usize; // frontier into large.ids
        for (b, &bmax) in small.block_max.iter().enumerate() {
            if j >= large.ids.len() {
                break;
            }
            // Skip this whole block if even its max precedes the large
            // frontier...
            if bmax < large.ids[j] {
                continue;
            }
            let start = b * BLOCK;
            let end = (start + BLOCK).min(small.ids.len());
            // ...and fast-forward the large frontier past blocks that
            // cannot contain this block's smallest id.
            let lb = large.block_max[j / BLOCK..].partition_point(|&m| m < small.ids[start]);
            j = ((j / BLOCK + lb) * BLOCK).max(j);
            let mut i = start;
            while i < end && j < large.ids.len() {
                match small.ids[i].cmp(&large.ids[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(small.ids[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        out
    }
}

/// Index of the first element of `slice` ≥ `target`, found by
/// exponential (galloping) search: probe offsets 1, 2, 4, … then binary
/// refine inside the bracketing window. `O(log d)` where `d` is the
/// answer's distance from the front — the reason galloping wins when
/// intersection advances in small hops through a long list.
pub fn gallop_lower_bound(slice: &[u32], target: u32) -> usize {
    if slice.is_empty() || slice[0] >= target {
        return 0;
    }
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi] < target {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(slice.len());
    lo + slice[lo..hi].partition_point(|&v| v < target)
}

/// Intersect two sorted duplicate-free id slices by galloping through
/// the larger from the smaller. Output is sorted.
pub fn intersect_gallop(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::new();
    let mut j = 0usize;
    for &id in small {
        j += gallop_lower_bound(&large[j..], id);
        if j >= large.len() {
            break;
        }
        if large[j] == id {
            out.push(id);
            j += 1;
        }
    }
    out
}

/// Naive linear-merge intersection of two sorted duplicate-free id
/// slices — the reference the compressed lanes are property-tested
/// against, and the faster choice when the lists are near-equal length.
pub fn intersect_linear(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invariants(p: &BlockPostings) {
        assert!(p.ids.windows(2).all(|w| w[0] < w[1]), "ids not sorted");
        assert_eq!(p.block_max.len(), p.ids.len().div_ceil(BLOCK));
        for (b, &m) in p.block_max.iter().enumerate() {
            let end = ((b + 1) * BLOCK).min(p.ids.len());
            assert_eq!(m, p.ids[end - 1], "block {b} max stale");
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut p = BlockPostings::new();
        assert!(p.insert(5));
        assert!(p.insert(3)); // out of order
        assert!(p.insert(9));
        assert!(!p.insert(5)); // duplicate
        invariants(&p);
        assert_eq!(p.ids(), &[3, 5, 9]);
        assert!(p.contains(5) && p.contains(3) && p.contains(9));
        assert!(!p.contains(4) && !p.contains(10) && !p.contains(0));
        assert!(p.remove(5));
        assert!(!p.remove(5));
        invariants(&p);
        assert!(!p.contains(5));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn spans_multiple_blocks() {
        let mut p = BlockPostings::new();
        for i in 0..500u32 {
            assert!(p.insert(i * 3));
        }
        invariants(&p);
        assert_eq!(p.len(), 500);
        for i in 0..1500u32 {
            assert_eq!(p.contains(i), i % 3 == 0, "id {i}");
        }
        // Out-of-order insert into a middle block.
        assert!(p.insert(100)); // 100 % 3 != 0
        invariants(&p);
        assert!(p.contains(100));
        // Remove across a block boundary.
        assert!(p.remove(3 * BLOCK as u32));
        invariants(&p);
        assert!(!p.contains(3 * BLOCK as u32));
    }

    #[test]
    fn retain_rebuilds_blocks() {
        let mut p = BlockPostings::from_sorted((0..300).collect());
        p.retain(|id| id % 2 == 0);
        invariants(&p);
        assert_eq!(p.len(), 150);
        assert!(p.contains(148) && !p.contains(149));
    }

    #[test]
    fn merge_appends_or_interleaves() {
        // Contiguous shards: pure append.
        let mut a = BlockPostings::from_sorted((0..100).collect());
        a.merge(BlockPostings::from_sorted((100..200).collect()));
        invariants(&a);
        assert_eq!(a.len(), 200);
        // Interleaved with duplicates: collapsed merge.
        let mut b = BlockPostings::from_sorted(vec![1, 4, 7]);
        b.merge(BlockPostings::from_sorted(vec![2, 4, 9]));
        invariants(&b);
        assert_eq!(b.ids(), &[1, 2, 4, 7, 9]);
        // Merging into/from empty.
        let mut e = BlockPostings::new();
        e.merge(b.clone());
        assert_eq!(e, b);
        e.merge(BlockPostings::new());
        assert_eq!(e, b);
    }

    #[test]
    fn gallop_lower_bound_matches_partition_point() {
        let v: Vec<u32> = (0..97).map(|i| i * 5).collect();
        for t in 0..500u32 {
            assert_eq!(
                gallop_lower_bound(&v, t),
                v.partition_point(|&x| x < t),
                "target {t}"
            );
        }
        assert_eq!(gallop_lower_bound(&[], 3), 0);
    }

    #[test]
    fn intersections_agree_on_examples() {
        let a: Vec<u32> = (0..200).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..80).map(|i| i * 5).collect();
        let naive = intersect_linear(&a, &b);
        assert_eq!(intersect_gallop(&a, &b), naive);
        assert_eq!(
            BlockPostings::from_sorted(a.clone()).intersect_blocked(&BlockPostings::from_sorted(b)),
            naive
        );
        assert!(naive.iter().all(|&x| x % 10 == 0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v.dedup();
        v
    }

    proptest! {
        /// Galloping and block-skipping intersections are multiset-equal
        /// to the naive linear merge on arbitrary sorted inputs —
        /// including heavily skewed length ratios.
        #[test]
        fn intersections_match_naive_merge(
            a in prop::collection::vec(0u32..600, 0..300),
            b in prop::collection::vec(0u32..600, 0..40),
        ) {
            let (a, b) = (sorted(a), sorted(b));
            let naive = intersect_linear(&a, &b);
            prop_assert_eq!(&intersect_gallop(&a, &b), &naive);
            let (pa, pb) = (
                BlockPostings::from_sorted(a.clone()),
                BlockPostings::from_sorted(b.clone()),
            );
            prop_assert_eq!(&pa.intersect_blocked(&pb), &naive);
            prop_assert_eq!(&pb.intersect_blocked(&pa), &naive);
        }

        /// Random insert/remove interleavings preserve the block
        /// invariants, and membership always agrees with a plain binary
        /// search over the final id set.
        #[test]
        fn maintenance_preserves_membership(
            ops in prop::collection::vec((0u32..400, 0u8..2), 0..200),
        ) {
            let mut p = BlockPostings::new();
            let mut model = std::collections::BTreeSet::new();
            for (id, op) in ops {
                if op == 1 {
                    prop_assert_eq!(p.insert(id), model.insert(id));
                } else {
                    prop_assert_eq!(p.remove(id), model.remove(&id));
                }
            }
            let want: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(p.ids(), want.as_slice());
            for id in 0..400u32 {
                prop_assert_eq!(p.contains(id), model.contains(&id));
            }
        }
    }
}
