//! CSR-style adjacency index over a mapping table column.
//!
//! Composing mappings and evaluating the Relative similarity functions
//! both need, per object, (a) its neighbor list and (b) its degree
//! (`n(a)` / `n(b)` in paper Figure 5). The [`Adjacency`] packs neighbor
//! entries contiguously and locates an object's slice through one hash
//! lookup.

use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::mapping_table::MappingTable;

/// Index over one column of a [`MappingTable`].
#[derive(Debug, Clone)]
pub struct Adjacency {
    /// key -> (start, end) range into `entries`.
    spans: FxHashMap<u32, (u32, u32)>,
    /// Flattened `(other object, similarity)` entries grouped by key.
    entries: Vec<(u32, f64)>,
}

impl Adjacency {
    /// Build an index keyed by the *domain* column.
    pub fn over_domain(table: &MappingTable) -> Self {
        let mut sorted = table.clone();
        sorted.sort_by_domain();
        Self::build(sorted.rows().iter().map(|c| (c.domain, c.range, c.sim)))
    }

    /// Build an index keyed by the *range* column.
    pub fn over_range(table: &MappingTable) -> Self {
        let mut sorted = table.clone();
        sorted.sort_by_range();
        Self::build(sorted.rows().iter().map(|c| (c.range, c.domain, c.sim)))
    }

    fn build(sorted_rows: impl Iterator<Item = (u32, u32, f64)>) -> Self {
        let mut spans: FxHashMap<u32, (u32, u32)> = fx_map_with_capacity(16);
        let mut entries: Vec<(u32, f64)> = Vec::new();
        let mut current: Option<u32> = None;
        let mut start = 0u32;
        for (key, other, sim) in sorted_rows {
            if current != Some(key) {
                if let Some(prev) = current {
                    spans.insert(prev, (start, entries.len() as u32));
                }
                current = Some(key);
                start = entries.len() as u32;
            }
            entries.push((other, sim));
        }
        if let Some(prev) = current {
            spans.insert(prev, (start, entries.len() as u32));
        }
        Self { spans, entries }
    }

    /// Neighbors of `key`: `(other object, similarity)` slice.
    pub fn neighbors(&self, key: u32) -> &[(u32, f64)] {
        match self.spans.get(&key) {
            Some(&(s, e)) => &self.entries[s as usize..e as usize],
            None => &[],
        }
    }

    /// Degree of `key` — the `n(·)` of the Relative functions.
    pub fn degree(&self, key: u32) -> u32 {
        self.spans.get(&key).map(|&(s, e)| e - s).unwrap_or(0)
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.spans.len()
    }

    /// Total number of entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterate all keys.
    pub fn keys(&self) -> impl Iterator<Item = u32> + '_ {
        self.spans.keys().copied()
    }

    /// Similarity of a specific `(key, other)` entry (linear over the
    /// key's neighbor slice).
    pub fn sim(&self, key: u32, other: u32) -> Option<f64> {
        self.neighbors(key)
            .iter()
            .find(|(o, _)| *o == other)
            .map(|(_, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig6_map1() -> MappingTable {
        // Figure 6: v1->{p1:1, p2:1, p3:0.6}, v2->{p2:0.6, p3:1}.
        MappingTable::from_triples([
            (1, 101, 1.0),
            (1, 102, 1.0),
            (1, 103, 0.6),
            (2, 102, 0.6),
            (2, 103, 1.0),
        ])
    }

    #[test]
    fn domain_index_neighbors_and_degree() {
        let adj = Adjacency::over_domain(&fig6_map1());
        assert_eq!(adj.degree(1), 3);
        assert_eq!(adj.degree(2), 2);
        assert_eq!(adj.degree(99), 0);
        let mut n1: Vec<u32> = adj.neighbors(1).iter().map(|(o, _)| *o).collect();
        n1.sort_unstable();
        assert_eq!(n1, vec![101, 102, 103]);
        assert!(adj.neighbors(99).is_empty());
    }

    #[test]
    fn range_index() {
        let adj = Adjacency::over_range(&fig6_map1());
        assert_eq!(adj.degree(102), 2);
        assert_eq!(adj.degree(101), 1);
        let owners: Vec<u32> = adj.neighbors(102).iter().map(|(o, _)| *o).collect();
        assert_eq!(owners.len(), 2);
        assert!(owners.contains(&1) && owners.contains(&2));
    }

    #[test]
    fn sim_lookup() {
        let adj = Adjacency::over_domain(&fig6_map1());
        assert_eq!(adj.sim(1, 103), Some(0.6));
        assert_eq!(adj.sim(1, 999), None);
    }

    #[test]
    fn counts() {
        let adj = Adjacency::over_domain(&fig6_map1());
        assert_eq!(adj.key_count(), 2);
        assert_eq!(adj.entry_count(), 5);
    }

    #[test]
    fn empty_table() {
        let adj = Adjacency::over_domain(&MappingTable::new());
        assert_eq!(adj.key_count(), 0);
        assert_eq!(adj.entry_count(), 0);
        assert!(adj.neighbors(0).is_empty());
    }

    #[test]
    fn degrees_consistent_with_table() {
        let t = fig6_map1();
        let adj = Adjacency::over_domain(&t);
        for (k, d) in t.domain_degrees() {
            assert_eq!(adj.degree(k), d);
        }
    }
}
