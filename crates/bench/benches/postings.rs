//! Posting-list intersection benchmarks: naive linear merge vs
//! galloping vs the block-skipping path, across the selectivity
//! regimes that decide which strategy the indexes pick.
//!
//! Three shapes matter in practice:
//! * **balanced** — both lists comparable in length (frequent gram ×
//!   frequent gram): linear merge should win, galloping degenerates,
//! * **skewed** — one list 100× shorter (rare gram probing a frequent
//!   posting): galloping and block-skipping should win by a wide
//!   margin,
//! * **sparse overlap** — long lists with few common ids (disjoint id
//!   ranges interleaved in blocks): block maxima let whole 64-entry
//!   blocks be skipped without touching their entries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moma_table::postings::{intersect_gallop, intersect_linear};
use moma_table::BlockPostings;
use std::time::Duration;

/// Deterministic pseudo-random sorted id list: `len` ids drawn from
/// `[0, span)` with a splitmix-style generator (no external RNG —
/// benches must not perturb the workload between runs).
fn sorted_ids(len: usize, span: u32, mut seed: u64) -> Vec<u32> {
    let mut out = std::collections::BTreeSet::new();
    while out.len() < len {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        out.insert(((z ^ (z >> 31)) % span as u64) as u32);
    }
    out.into_iter().collect()
}

fn bench_intersections(c: &mut Criterion) {
    // (name, |a|, |b|, id span). Span controls overlap density: ids
    // drawn from the same window overlap heavily, a wide window gives
    // sparse intersections.
    let shapes: &[(&str, usize, usize, u32)] = &[
        ("balanced_4k_4k", 4_096, 4_096, 16_384),
        ("skewed_64_8k", 64, 8_192, 32_768),
        ("sparse_8k_8k", 8_192, 8_192, 4_000_000),
    ];

    // Spin briefly before the first timed row: the vendored criterion
    // stub has no warm-up phase, so CPU frequency ramp-up would land
    // entirely on whichever strategy happens to run first.
    let warm = std::time::Instant::now();
    while warm.elapsed() < Duration::from_millis(200) {
        black_box(0u64);
    }

    let mut g = c.benchmark_group("postings_intersect");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for &(name, alen, blen, span) in shapes {
        let a = sorted_ids(alen, span, 1);
        let b = sorted_ids(blen, span, 2);
        let pa = BlockPostings::from_sorted(a.clone());
        let pb = BlockPostings::from_sorted(b.clone());
        // Sanity: all three strategies agree before we time them.
        assert_eq!(intersect_linear(&a, &b), intersect_gallop(&a, &b));
        assert_eq!(intersect_linear(&a, &b), pa.intersect_blocked(&pb));

        g.bench_function(format!("linear/{name}"), |bench| {
            bench.iter(|| black_box(intersect_linear(black_box(&a), black_box(&b))))
        });
        g.bench_function(format!("gallop/{name}"), |bench| {
            bench.iter(|| black_box(intersect_gallop(black_box(&a), black_box(&b))))
        });
        g.bench_function(format!("blocked/{name}"), |bench| {
            bench.iter(|| black_box(pa.intersect_blocked(black_box(&pb))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_intersections);
criterion_main!(benches);
