//! Join-strategy benchmarks: the compose operator's engine room
//! ("the composition can be computed very efficiently … by joining the
//! mapping tables", paper Section 5.3).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moma_bench::random_mapping;
use moma_table::exec::Parallelism;
use moma_table::join::{
    hash_join, nested_loop_join, par_hash_join, par_sort_merge_join, sort_merge_join,
};
use std::time::Duration;

fn bench_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for rows in [1_000usize, 10_000, 50_000] {
        let keys = (rows / 4) as u32;
        let left = random_mapping(7, keys, rows).table;
        let right = random_mapping(8, keys, rows).table;
        g.bench_with_input(BenchmarkId::new("hash", rows), &rows, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                hash_join(&left, &right, |_| n += 1);
                black_box(n)
            })
        });
        g.bench_with_input(BenchmarkId::new("sort_merge", rows), &rows, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                sort_merge_join(&left, &right, |_| n += 1);
                black_box(n)
            })
        });
        // Parallel variants: the sequential/parallel pairs above/below
        // are the ≥2×-at-4-threads comparison (multi-core hardware).
        for threads in [2usize, 4] {
            let par = Parallelism::new(threads);
            g.bench_with_input(
                BenchmarkId::new(format!("par{threads}_hash"), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        let mut n = 0usize;
                        par_hash_join(&left, &right, &par, |_| n += 1);
                        black_box(n)
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("par{threads}_sort_merge"), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        let mut n = 0usize;
                        par_sort_merge_join(&left, &right, &par, |_| n += 1);
                        black_box(n)
                    })
                },
            );
        }
        // Nested loop only at the smallest size (quadratic).
        if rows <= 1_000 {
            g.bench_with_input(BenchmarkId::new("nested_loop", rows), &rows, |b, _| {
                b.iter(|| {
                    let mut n = 0usize;
                    nested_loop_join(&left, &right, |_| n += 1);
                    black_box(n)
                })
            });
        }
    }
    g.finish();
}

fn bench_adjacency(c: &mut Criterion) {
    let mut g = c.benchmark_group("adjacency");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let table = random_mapping(9, 10_000, 100_000).table;
    g.bench_function("build_domain_index", |b| {
        b.iter(|| black_box(moma_table::Adjacency::over_domain(&table)))
    });
    let adj = moma_table::Adjacency::over_domain(&table);
    g.bench_function("probe_1k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for k in 0..1_000u32 {
                total += adj.neighbors(k).len();
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_joins, bench_adjacency);
criterion_main!(benches);
