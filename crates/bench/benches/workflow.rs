//! End-to-end benchmarks: neighborhood matching, workflow execution,
//! script interpretation, repository persistence.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moma_core::matchers::neighborhood::nh_match;
use moma_core::ops::compose::PathAgg;
use moma_datagen::{Scenario, WorldConfig};
use moma_ifuice::script::{parser, run_script};
use std::time::Duration;

fn scenario() -> Scenario {
    let mut cfg = WorldConfig::small();
    cfg.vldb_papers = (30, 40);
    cfg.sigmod_papers = (24, 32);
    cfg.gs_noise_entries = 500;
    Scenario::generate(cfg)
}

fn bench_neighborhood(c: &mut Criterion) {
    let s = scenario();
    let venue_pub = s.repository.get("DBLP.VenuePub").unwrap();
    let pub_venue_acm = s.repository.get("ACM.PubVenue").unwrap();
    let pub_same = s
        .gold
        .pub_dblp_acm
        .to_mapping("gold", s.ids.pub_dblp, s.ids.pub_acm);
    let mut g = c.benchmark_group("neighborhood");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("venue_1_to_n", |b| {
        b.iter(|| {
            black_box(nh_match(&venue_pub, &pub_same, &pub_venue_acm, PathAgg::Relative).unwrap())
        })
    });
    let coauthor = s.repository.get("DBLP.CoAuthor").unwrap();
    let identity = s.repository.get("DBLP.AuthorAuthor").unwrap();
    g.bench_function("coauthor_self_n_to_m", |b| {
        b.iter(|| black_box(nh_match(&coauthor, &identity, &coauthor, PathAgg::Relative).unwrap()))
    });
    g.finish();
}

fn bench_script(c: &mut Criterion) {
    let s = scenario();
    let mut g = c.benchmark_group("script");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    const SRC: &str = r#"
        $CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);
        $NameSim = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]");
        $Merged = merge($CoAuthSim, $NameSim, Average, Zero);
        $Result = select($Merged, "[domain.id]<>[range.id]");
        RETURN $Result;
    "#;
    g.bench_function("parse", |b| {
        b.iter(|| black_box(parser::parse(SRC).unwrap()))
    });
    g.sample_size(10);
    g.bench_function("section_4_3_dedup", |b| {
        b.iter(|| black_box(run_script(SRC, &s.registry, &s.repository).unwrap()))
    });
    g.finish();
}

fn bench_repository(c: &mut Criterion) {
    let s = scenario();
    let mut g = c.benchmark_group("repository");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let dir = std::env::temp_dir().join("moma_bench_repo");
    g.bench_function("persist_dir", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            s.repository.persist_dir(&dir, &s.registry).unwrap();
        })
    });
    s.repository.persist_dir(&dir, &s.registry).unwrap();
    g.bench_function("load_dir", |b| {
        b.iter(|| {
            let repo = moma_core::MappingRepository::new();
            black_box(repo.load_dir(&dir, &s.registry).unwrap())
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(benches, bench_neighborhood, bench_script, bench_repository);
criterion_main!(benches);
