//! Similarity-kernel benchmarks: the inner loop of every attribute
//! matcher.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moma_bench::sample_titles;
use moma_simstring::{edit, jaro, ngram, phonetic, token, SimFn, TfIdfCorpus};
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let titles = sample_titles(64, 11);
    let pairs: Vec<(&str, &str)> = titles
        .iter()
        .zip(titles.iter().skip(1))
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();

    let mut g = c.benchmark_group("similarity");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("trigram", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(ngram::trigram(x, y));
            }
        })
    });
    g.bench_function("levenshtein", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(edit::levenshtein_sim(x, y));
            }
        })
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(jaro::jaro_winkler(x, y));
            }
        })
    });
    g.bench_function("token_jaccard", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(token::token_jaccard(x, y));
            }
        })
    });
    g.bench_function("monge_elkan", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(token::monge_elkan_sym(x, y));
            }
        })
    });
    g.bench_function("person_name", |b| {
        b.iter(|| {
            black_box(phonetic::person_name_sim("J. Smith", "John Smith"));
            black_box(phonetic::person_name_sim("Erhard Rahm", "E. Rahm"));
        })
    });
    let corpus = TfIdfCorpus::build(titles.iter().map(String::as_str));
    g.bench_function("tfidf_cosine", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(corpus.cosine(x, y));
            }
        })
    });
    // The matcher's hot path: vectors interned once, every probe a
    // linear merge over sorted (token, weight) pairs. The gap between
    // this row and `tfidf_cosine` is what vector caching buys per pair.
    let vectors: Vec<Vec<(u32, f64)>> = titles.iter().map(|t| corpus.vector(t)).collect();
    g.bench_function("tfidf_cosine_cached_vectors", |b| {
        b.iter(|| {
            for w in vectors.windows(2) {
                black_box(moma_simstring::tfidf::cosine_vectors(&w[0], &w[1]));
            }
        })
    });
    g.bench_function("simfn_dispatch_trigram", |b| {
        let f = SimFn::Trigram;
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(f.eval(x, y));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
