//! Delta-matching benchmarks: incremental apply cost vs full re-match,
//! across delta sizes.
//!
//! The claim under test: delta-match cost scales with `|delta|`, not
//! `|source|`. The `full_rematch` row is the baseline (cost ∝ source);
//! the `delta_*pct` rows apply a churn-sized delta through
//! `DeltaMatchState::apply` (re-applying the same applied delta is
//! idempotent and does the same amount of probing every time, which is
//! what makes it benchable). See also `src/bin/delta_speedup.rs`, which
//! asserts the ≥5× bound for a 1% delta and bit-identical output.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moma_core::blocking::Blocking;
use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma_datagen::{DeltaStream, EvolveConfig, Scenario, WorldConfig};
use moma_model::AppliedDelta;
use moma_simstring::SimFn;
use std::time::Duration;

fn scenario() -> Scenario {
    // Between small and paper scale (same sizing as the matcher benches):
    // enough GS rows that a full re-match visibly costs |source|.
    let mut cfg = WorldConfig::small();
    cfg.vldb_papers = (40, 50);
    cfg.sigmod_papers = (30, 40);
    cfg.gs_noise_entries = 2_000;
    Scenario::generate(cfg)
}

fn matcher() -> AttributeMatcher {
    AttributeMatcher::new("title", "title", SimFn::Trigram, 0.75)
        .with_blocking(Blocking::TrigramPrefix)
}

fn bench_delta_vs_full(c: &mut Criterion) {
    let base = scenario();
    let mut g = c.benchmark_group("delta_match");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    g.sample_size(10);

    for churn_pct in [1usize, 5, 20] {
        // Fresh registry per level: prime before the delta, apply it,
        // then measure the (idempotent) incremental apply.
        let mut registry = base.registry.clone();
        let m = matcher();
        let ctx = MatchContext::new(&registry);
        let mut state = m.prime(&ctx, base.ids.pub_dblp, base.ids.pub_gs).unwrap();
        let mut stream = DeltaStream::new(
            {
                let mut cfg = EvolveConfig::with_churn(churn_pct as f64 / 100.0);
                cfg.burst_prob = 0.0;
                cfg
            },
            base.ids.pub_gs,
        );
        let delta = stream.next_delta(&registry);
        let applied: AppliedDelta = registry.apply_delta(&delta).unwrap();
        let ctx = MatchContext::new(&registry);
        g.bench_with_input(
            BenchmarkId::new("incremental", format!("{churn_pct}pct")),
            &churn_pct,
            |b, _| b.iter(|| black_box(state.apply(&ctx, &[&applied]).unwrap().len())),
        );
    }

    // Baseline: full re-match of the unchanged-size source.
    let m = matcher();
    let ctx = MatchContext::new(&base.registry);
    g.bench_with_input(BenchmarkId::new("full", "rematch"), &0usize, |b, _| {
        b.iter(|| {
            black_box(
                m.execute(&ctx, base.ids.pub_dblp, base.ids.pub_gs)
                    .unwrap()
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_delta_vs_full);
criterion_main!(benches);
