//! Attribute-matcher benchmarks: all-pairs vs prefix-filtered blocking
//! vs parallel scoring — the ablation behind DESIGN.md's blocking choice.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moma_core::blocking::Blocking;
use moma_core::exec::Parallelism;
use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma_datagen::{Scenario, WorldConfig};
use moma_simstring::SimFn;
use std::time::Duration;

fn scenario() -> Scenario {
    // Between small and paper scale: enough rows for blocking to matter,
    // small enough for criterion iterations.
    let mut cfg = WorldConfig::small();
    cfg.vldb_papers = (40, 50);
    cfg.sigmod_papers = (30, 40);
    cfg.gs_noise_entries = 2_000;
    Scenario::generate(cfg)
}

fn bench_attribute_matching(c: &mut Criterion) {
    let s = scenario();
    let ctx = MatchContext::with_repository(&s.registry, &s.repository);
    let mut g = c.benchmark_group("attr_match");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    g.sample_size(10);

    let configs = [
        ("allpairs", Blocking::AllPairs, 1usize),
        ("blocked", Blocking::TrigramPrefix, 1),
        ("blocked_par4", Blocking::TrigramPrefix, 4),
        ("threshold", Blocking::Threshold, 1),
        ("threshold_par4", Blocking::Threshold, 4),
    ];
    for (name, blocking, threads) in configs {
        g.bench_with_input(BenchmarkId::new("title_dblp_acm", name), &name, |b, _| {
            let m = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.8)
                .with_blocking(blocking)
                .with_parallelism(Parallelism::new(threads));
            b.iter(|| black_box(m.execute(&ctx, s.ids.pub_dblp, s.ids.pub_acm).unwrap()))
        });
    }
    // The large dirty pair: DBLP x GS (thousands of noise entries) —
    // blocked only; all-pairs is omitted as prohibitively slow. The
    // seq/par2/par4 triple is the parallel-speedup comparison: on
    // 4+ core hardware the par4 row should come in ≥2× under seq. The
    // threshold rows are the pruned-vs-prefix comparison (see
    // `bench_report` for the gated version).
    for blocking in [Blocking::TrigramPrefix, Blocking::Threshold] {
        let tag = if blocking == Blocking::TrigramPrefix {
            "blocked"
        } else {
            "threshold"
        };
        for threads in [1usize, 2, 4] {
            let name = if threads == 1 {
                format!("{tag}_seq")
            } else {
                format!("{tag}_par{threads}")
            };
            g.bench_with_input(
                BenchmarkId::new("title_dblp_gs", &name),
                &threads,
                |b, _| {
                    let m = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.75)
                        .with_blocking(blocking)
                        .with_parallelism(Parallelism::new(threads));
                    b.iter(|| black_box(m.execute(&ctx, s.ids.pub_dblp, s.ids.pub_gs).unwrap()))
                },
            );
        }
    }
    g.finish();
}

fn bench_blocking_index(c: &mut Criterion) {
    let s = scenario();
    let lds = s.registry.lds(s.ids.pub_gs);
    let values: Vec<(u32, String)> = lds
        .project("title")
        .unwrap()
        .into_iter()
        .map(|(i, v)| (i, v.to_match_string()))
        .collect();
    let mut g = c.benchmark_group("blocking");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("build_index", |b| {
        b.iter(|| {
            black_box(moma_core::blocking::TrigramIndex::build(
                values.iter().map(|(i, v)| (*i, v.as_str())),
            ))
        })
    });
    for threads in [2usize, 4] {
        let par = Parallelism::new(threads);
        g.bench_function(format!("build_index_par{threads}"), |b| {
            b.iter(|| black_box(moma_core::blocking::TrigramIndex::build_par(&values, &par)))
        });
    }
    let index =
        moma_core::blocking::TrigramIndex::build(values.iter().map(|(i, v)| (*i, v.as_str())));
    g.bench_function("probe_100", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (_, v) in values.iter().take(100) {
                total += index.candidates(v, 0.75).len();
            }
            black_box(total)
        })
    });
    // The threshold-exact (T-occurrence) index: costlier to build and
    // probe per call, but its candidate sets are orders of magnitude
    // smaller, so the scoring stage it feeds dominates the comparison.
    g.bench_function("build_threshold_index", |b| {
        b.iter(|| {
            black_box(moma_core::blocking::ThresholdIndex::build(
                moma_simstring::QgramMeasure::Dice,
                3,
                0.75,
                values.iter().map(|(i, v)| (*i, v.as_str())),
            ))
        })
    });
    let thr_index = moma_core::blocking::ThresholdIndex::build(
        moma_simstring::QgramMeasure::Dice,
        3,
        0.75,
        values.iter().map(|(i, v)| (*i, v.as_str())),
    );
    g.bench_function("probe_100_threshold", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (_, v) in values.iter().take(100) {
                total += thr_index.candidates(v).len();
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_attribute_matching, bench_blocking_index);
criterion_main!(benches);
