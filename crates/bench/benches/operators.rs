//! Mapping-operator benchmarks: merge, compose, selection at scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moma_bench::{random_chain_mapping, random_mapping};
use moma_core::ops::compose::{compose, PathAgg, PathCombine};
use moma_core::ops::merge::{merge, MergeFn, MissingPolicy};
use moma_core::ops::select::{select, Selection, Side};
use std::time::Duration;

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for rows in [1_000usize, 10_000, 100_000] {
        let a = random_mapping(1, (rows / 4) as u32, rows);
        let b = random_mapping(2, (rows / 4) as u32, rows);
        g.bench_with_input(BenchmarkId::new("avg_ignore", rows), &rows, |bench, _| {
            bench.iter(|| black_box(merge(&[&a, &b], MergeFn::Avg, MissingPolicy::Ignore).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("min_zero", rows), &rows, |bench, _| {
            bench.iter(|| black_box(merge(&[&a, &b], MergeFn::Min, MissingPolicy::Zero).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("prefer", rows), &rows, |bench, _| {
            bench.iter(|| {
                black_box(merge(&[&a, &b], MergeFn::Prefer(0), MissingPolicy::Ignore).unwrap())
            })
        });
    }
    // n-ary fanout at fixed size.
    let inputs: Vec<_> = (0..8).map(|s| random_mapping(s, 2_000, 10_000)).collect();
    for n in [2usize, 4, 8] {
        let refs: Vec<&moma_core::Mapping> = inputs.iter().take(n).collect();
        g.bench_with_input(BenchmarkId::new("nary_avg", n), &n, |bench, _| {
            bench.iter(|| black_box(merge(&refs, MergeFn::Avg, MissingPolicy::Ignore).unwrap()))
        });
    }
    g.finish();
}

fn bench_compose(c: &mut Criterion) {
    let mut g = c.benchmark_group("compose");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for rows in [1_000usize, 10_000, 100_000] {
        let keys = (rows / 4) as u32;
        let m1 = random_chain_mapping(3, keys, rows, 0, 1);
        let m2 = random_chain_mapping(4, keys, rows, 1, 2);
        for (name, agg) in [
            ("min_max", PathAgg::Max),
            ("min_relative", PathAgg::Relative),
        ] {
            g.bench_with_input(BenchmarkId::new(name, rows), &rows, |bench, _| {
                bench.iter(|| black_box(compose(&m1, &m2, PathCombine::Min, agg).unwrap()))
            });
        }
    }
    g.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("select");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let m = random_mapping(5, 5_000, 100_000);
    g.bench_function("threshold", |b| {
        b.iter(|| black_box(select(&m, &Selection::Threshold(0.8))))
    });
    g.bench_function("best1_domain", |b| {
        b.iter(|| black_box(select(&m, &Selection::best1())))
    });
    g.bench_function("best1_both", |b| {
        b.iter(|| {
            black_box(select(
                &m,
                &Selection::BestN {
                    n: 1,
                    side: Side::Both,
                },
            ))
        })
    });
    g.bench_function("best1_delta", |b| {
        b.iter(|| {
            black_box(select(
                &m,
                &Selection::Best1Delta {
                    delta: 0.05,
                    relative: false,
                    side: Side::Domain,
                },
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_merge, bench_compose, bench_select);
criterion_main!(benches);
