//! Parallel-vs-sequential speedup report on the large datagen scenario.
//!
//! ```bash
//! cargo run --release -p moma-bench --bin par_speedup            # default sizes
//! cargo run --release -p moma-bench --bin par_speedup -- 4 8    # thread counts
//! ```
//!
//! Measures the three parallelized hot paths — attribute matching
//! (blocked trigram probing), hash / sort-merge joins, and trigram-index
//! construction — sequentially and at each requested thread count, checks
//! the outputs are bit-identical, and prints the speedups. On 4+ core
//! hardware the 4-thread rows for matching and joins come in ≥2× over
//! sequential; on fewer cores the ratio degrades toward 1× but results
//! stay identical (run with fewer threads to see the plateau).

use std::time::Instant;

use moma_bench::random_mapping;
use moma_core::blocking::{Blocking, TrigramIndex};
use moma_core::exec::Parallelism;
use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma_datagen::{Scenario, WorldConfig};
use moma_simstring::SimFn;
use moma_table::join::{par_hash_join, par_sort_merge_join};

fn time<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    // One warm-up, then best of three (robust against scheduler noise).
    f();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.expect("at least one run"), best)
}

fn main() {
    let threads: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let threads = if threads.is_empty() {
        vec![2, 4, 8]
    } else {
        threads
    };

    // The large pair: a noisy Google-Scholar-style source. Scaled up
    // from `small` toward the paper's 64k-entry regime.
    let mut cfg = WorldConfig::small();
    cfg.gs_noise_entries = 8_000;
    let s = Scenario::generate(cfg);
    let gs_len = s.registry.lds(s.ids.pub_gs).len();
    println!("scenario: DBLP×GS with {gs_len} GS entries\n");

    // --- attribute matching ------------------------------------------
    let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.75)
        .with_blocking(Blocking::TrigramPrefix);
    let seq_ctx = MatchContext::with_repository(&s.registry, &s.repository)
        .with_parallelism(Parallelism::sequential());
    let (reference, t_seq) = time(|| {
        matcher
            .execute(&seq_ctx, s.ids.pub_gs, s.ids.pub_dblp)
            .unwrap()
    });
    println!(
        "attribute match GS→DBLP (blocked): sequential {:.3}s",
        t_seq
    );
    for &n in &threads {
        let ctx = MatchContext::with_repository(&s.registry, &s.repository)
            .with_parallelism(Parallelism::new(n));
        let (m, t) = time(|| matcher.execute(&ctx, s.ids.pub_gs, s.ids.pub_dblp).unwrap());
        assert_eq!(m.table.rows(), reference.table.rows(), "must be identical");
        println!("  {n:>2} threads: {t:.3}s  ({:.2}x)", t_seq / t);
    }

    // --- joins --------------------------------------------------------
    let rows = 400_000usize;
    let keys = (rows / 4) as u32;
    let left = random_mapping(7, keys, rows).table;
    let right = random_mapping(8, keys, rows).table;
    for (name, join) in [
        (
            "hash join",
            &(|par: &Parallelism| {
                let mut n = 0usize;
                par_hash_join(&left, &right, par, |_| n += 1);
                n
            }) as &dyn Fn(&Parallelism) -> usize,
        ),
        ("sort-merge join", &|par: &Parallelism| {
            let mut n = 0usize;
            par_sort_merge_join(&left, &right, par, |_| n += 1);
            n
        }),
    ] {
        let (n_seq, t_seq) = time(|| join(&Parallelism::sequential()));
        println!("{name} ({rows} x {rows} rows): sequential {t_seq:.3}s, {n_seq} paths");
        for &n in &threads {
            let par = Parallelism::new(n);
            let (n_par, t) = time(|| join(&par));
            assert_eq!(n_par, n_seq);
            println!("  {n:>2} threads: {t:.3}s  ({:.2}x)", t_seq / t);
        }
    }

    // --- index build --------------------------------------------------
    let values: Vec<(u32, String)> = s
        .registry
        .lds(s.ids.pub_gs)
        .project("title")
        .unwrap()
        .into_iter()
        .map(|(i, v)| (i, v.to_match_string()))
        .collect();
    let (seq_idx, t_seq) =
        time(|| TrigramIndex::build(values.iter().map(|(i, v)| (*i, v.as_str()))));
    println!(
        "trigram index build ({} values): sequential {t_seq:.3}s",
        values.len()
    );
    for &n in &threads {
        let par = Parallelism::new(n);
        let (idx, t) = time(|| TrigramIndex::build_par(&values, &par));
        assert_eq!(idx.len(), seq_idx.len());
        println!("  {n:>2} threads: {t:.3}s  ({:.2}x)", t_seq / t);
    }
}
