//! Incremental-vs-full delta-matching report on the large datagen
//! scenario, with hard assertions.
//!
//! ```bash
//! cargo run --release -p moma-bench --bin delta_speedup              # 1% 5% 20%
//! cargo run --release -p moma-bench --bin delta_speedup -- 1 10     # churn in %
//! ```
//!
//! For each churn level the tool applies one delta batch to the noisy
//! DBLP×GS pair and times `DeltaMatchState::apply` against a full
//! re-match. Two assertions hold on any hardware (the win is
//! algorithmic, not parallel):
//!
//! * the incremental result is **bit-identical** to the full re-match,
//! * a 1% delta is matched **≥5× faster** than a full re-match.
//!
//! Expect far more than 5× in practice (hundreds of× at 1%), and the
//! incremental cost to grow with the churn level — that growth is the
//! "cost ∝ |delta|" claim made visible.

use std::time::Instant;

use moma_core::blocking::Blocking;
use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma_datagen::{DeltaStream, EvolveConfig, Scenario, WorldConfig};
use moma_simstring::SimFn;

fn time<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    // One warm-up, then best of three (robust against scheduler noise).
    f();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.expect("at least one run"), best)
}

fn main() {
    let churn_pcts: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let churn_pcts = if churn_pcts.is_empty() {
        vec![1.0, 5.0, 20.0]
    } else {
        churn_pcts
    };

    // The large pair: a noisy Google-Scholar-style source, scaled from
    // `small` toward the paper's 64k-entry regime.
    let mut cfg = WorldConfig::small();
    cfg.gs_noise_entries = 8_000;
    let base = Scenario::generate(cfg);
    let gs_len = base.registry.lds(base.ids.pub_gs).len();
    println!("scenario: DBLP×GS with {gs_len} GS entries\n");
    println!("churn\t|delta|\trescored\tincr_ms\tfull_ms\tspeedup");

    let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.75)
        .with_blocking(Blocking::TrigramPrefix);
    for churn_pct in churn_pcts {
        let mut registry = base.registry.clone();
        let ctx = MatchContext::new(&registry);
        let mut state = matcher
            .prime(&ctx, base.ids.pub_dblp, base.ids.pub_gs)
            .expect("prime");
        let mut stream = DeltaStream::new(
            {
                let mut cfg = EvolveConfig::with_churn(churn_pct / 100.0);
                cfg.burst_prob = 0.0;
                cfg
            },
            base.ids.pub_gs,
        );
        let delta = stream.next_delta(&registry);
        let applied = registry.apply_delta(&delta).expect("apply delta");
        let ctx = MatchContext::new(&registry);

        // Re-applying an already-applied delta is idempotent and does
        // the same probing work every time — ideal for timing.
        let (_, incr_s) = time(|| state.apply(&ctx, &[&applied]).unwrap().len());
        let (full, full_s) = time(|| {
            matcher
                .execute(&ctx, base.ids.pub_dblp, base.ids.pub_gs)
                .unwrap()
        });

        assert_eq!(
            state.mapping().table.rows(),
            full.table.rows(),
            "incremental result must be bit-identical to a full re-match"
        );
        let speedup = full_s / incr_s.max(1e-12);
        println!(
            "{churn_pct}%\t{}\t{}\t{:.2}\t{:.2}\t{speedup:.1}x",
            delta.len(),
            state.last_rescored,
            incr_s * 1e3,
            full_s * 1e3,
        );
        if churn_pct <= 1.0 {
            assert!(
                speedup >= 5.0,
                "1% delta must be ≥5× faster than a full re-match, got {speedup:.1}x"
            );
        }
    }
    println!("\nall levels bit-identical to full re-match");
}
