//! Regenerate every table and figure of the MOMA paper.
//!
//! ```text
//! repro all                # everything (tables 1-10, figures 1-11)
//! repro tables             # all tables
//! repro figures            # all figures
//! repro table4 fig6 ...    # individual artifacts
//! repro --small table2     # use the small test scenario (fast)
//! ```
//!
//! By default the paper-scale scenario is generated (Table 1 sized;
//! expect a few minutes for the full suite in release mode).

use std::time::Instant;

use moma_eval::{experiments, figures, EvalContext};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--small] <artifact>...\n\
         artifacts: all | tables | figures | table1..table10 | fig1..fig11 | ext-clusters | tuning | profile"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let small = args.iter().any(|a| a == "--small");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() {
        usage();
    }

    let t0 = Instant::now();
    eprintln!(
        "generating {} scenario...",
        if small { "small" } else { "paper-scale" }
    );
    let ctx = if small {
        EvalContext::small()
    } else {
        EvalContext::paper_scale()
    };
    eprintln!("scenario ready in {:.1?}", t0.elapsed());

    let mut ran_any = false;
    let mut run = |name: &str, build: &mut dyn FnMut() -> moma_eval::Report| {
        let t = Instant::now();
        let report = build();
        let elapsed = t.elapsed();
        println!("{report}");
        eprintln!("[{name} in {elapsed:.1?}]\n");
        ran_any = true;
    };

    for target in &targets {
        match *target {
            "all" | "tables" => {
                run("table1", &mut || experiments::table1::run(&ctx));
                run("table2", &mut || experiments::table2::run(&ctx));
                run("table3", &mut || experiments::table3::run(&ctx));
                run("table4", &mut || experiments::table4::run(&ctx));
                run("table5", &mut || experiments::table5::run(&ctx));
                run("table6", &mut || experiments::table6::run(&ctx));
                run("table7", &mut || experiments::table7::run(&ctx));
                run("table8", &mut || experiments::table8::run(&ctx));
                run("table9", &mut || experiments::table9::run(&ctx));
                run("table10", &mut || experiments::table10::run(&ctx));
                run("ext-clusters", &mut || experiments::extension::run(&ctx));
                run("tuning", &mut || experiments::tuning::run(&ctx));
                if *target == "tables" {
                    continue;
                }
                run("fig1", &mut || figures::fig1());
                run("fig2", &mut || figures::fig2());
                run("fig3", &mut || figures::fig3());
                run("fig4", &mut || figures::fig4());
                run("fig5", &mut || figures::fig5());
                run("fig6", &mut || figures::fig6());
                run("fig7", &mut || figures::fig7());
                run("fig8", &mut || figures::fig8());
                run("fig9", &mut || figures::fig9());
                run("fig10", &mut || figures::fig10());
                run("fig11", &mut || figures::fig11(&ctx));
            }
            "figures" => {
                run("fig1", &mut || figures::fig1());
                run("fig2", &mut || figures::fig2());
                run("fig3", &mut || figures::fig3());
                run("fig4", &mut || figures::fig4());
                run("fig5", &mut || figures::fig5());
                run("fig6", &mut || figures::fig6());
                run("fig7", &mut || figures::fig7());
                run("fig8", &mut || figures::fig8());
                run("fig9", &mut || figures::fig9());
                run("fig10", &mut || figures::fig10());
                run("fig11", &mut || figures::fig11(&ctx));
            }
            "table1" => run("table1", &mut || experiments::table1::run(&ctx)),
            "table2" => run("table2", &mut || experiments::table2::run(&ctx)),
            "table3" => run("table3", &mut || experiments::table3::run(&ctx)),
            "table4" => run("table4", &mut || experiments::table4::run(&ctx)),
            "table5" => run("table5", &mut || experiments::table5::run(&ctx)),
            "table6" => run("table6", &mut || experiments::table6::run(&ctx)),
            "table7" => run("table7", &mut || experiments::table7::run(&ctx)),
            "table8" => run("table8", &mut || experiments::table8::run(&ctx)),
            "table9" => run("table9", &mut || experiments::table9::run(&ctx)),
            "table10" => run("table10", &mut || experiments::table10::run(&ctx)),
            "ext-clusters" | "extension" => {
                run("ext-clusters", &mut || experiments::extension::run(&ctx))
            }
            "tuning" => run("tuning", &mut || experiments::tuning::run(&ctx)),
            "profile" => run("profile", &mut || experiments::profile::run(&ctx)),
            "fig1" => run("fig1", &mut || figures::fig1()),
            "fig2" => run("fig2", &mut || figures::fig2()),
            "fig3" => run("fig3", &mut || figures::fig3()),
            "fig4" => run("fig4", &mut || figures::fig4()),
            "fig5" => run("fig5", &mut || figures::fig5()),
            "fig6" => run("fig6", &mut || figures::fig6()),
            "fig7" => run("fig7", &mut || figures::fig7()),
            "fig8" => run("fig8", &mut || figures::fig8()),
            "fig9" => run("fig9", &mut || figures::fig9()),
            "fig10" => run("fig10", &mut || figures::fig10()),
            "fig11" => run("fig11", &mut || figures::fig11(&ctx)),
            other => {
                eprintln!("unknown artifact `{other}`");
                usage();
            }
        }
    }
    if !ran_any {
        usage();
    }
    eprintln!("total {:.1?}", t0.elapsed());
}
