//! Machine-readable perf snapshot of the candidate-pruning engine —
//! the artifact behind CI's `perf-smoke` job.
//!
//! ```bash
//! cargo run --release -p moma-bench --bin bench_report              # writes BENCH_PR6.json
//! cargo run --release -p moma-bench --bin bench_report -- out.json baseline.json
//! ```
//!
//! Runs the large datagen scenario (fixed seed) and matches
//! Publication@DBLP × Publication@GS at t = 0.8 under two scoring
//! regimes: trigram Dice (prefix-filtered vs threshold-exact blocking)
//! and TF-IDF cosine (all-pairs vs the weighted-prefix Threshold plan),
//! each at 1 and 4 threads. The report records per-stage wall times,
//! candidate counts and pruning ratios. Gates that hold on any hardware
//! (the wins are algorithmic, not parallel):
//!
//! * **bit-identity** — all-pairs, prefix-filtered and threshold-exact
//!   execution produce row-for-row identical mappings, for both the
//!   q-gram and the TF-IDF matcher,
//! * **pruning dominance** — the threshold engine never generates (and
//!   therefore never scores) more candidates than the prefix filter,
//! * **q-gram headline** — threshold-exact ≥ 3× faster than the prefix
//!   filter at t = 0.8, on candidate ratio and end-to-end wall clock at
//!   every thread count (observed ~600× fewer candidates, ~12× wall),
//! * **TF-IDF headline** — the weighted-prefix plan scores ≥ 10× fewer
//!   candidates than all-pairs and matches ≥ 3× faster,
//! * **trend** — the q-gram threshold path has not regressed against
//!   the committed baseline report (candidate counts are deterministic
//!   and must not grow; wall times get a 1.5× tolerance for hardware
//!   noise). A missing baseline file downgrades this gate to a warning
//!   so the tool still runs on fresh checkouts.

use std::fmt::Write as _;
use std::time::Instant;

use moma_core::blocking::{Blocking, TfIdfIndex, ThresholdIndex, TrigramIndex};
use moma_core::exec::Parallelism;
use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma_datagen::{Scenario, WorldConfig};
use moma_simstring::tfidf::TfIdfCorpus;
use moma_simstring::QgramMeasure;
use moma_simstring::SimFn;

const THRESHOLD: f64 = 0.8;
const SEED: u64 = 7;
/// Wall-clock trend tolerance vs the committed baseline (hardware noise).
const TREND_TOLERANCE: f64 = 1.5;

fn time<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    // One warm-up, then best of three (robust against scheduler noise).
    f();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.expect("at least one run"), best)
}

struct StageTimes {
    mode: &'static str,
    threads: usize,
    index_build_ms: f64,
    candidate_gen_ms: f64,
    match_ms: f64,
}

/// Extract the number following `"key": ` in `text`, searching after
/// the first occurrence of `anchor`. Good enough for the reports this
/// tool writes itself; no JSON dependency needed.
fn json_number(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let start = text.find(anchor)?;
    let tail = &text[start..];
    let needle = format!("\"{key}\":");
    let at = tail.find(&needle)? + needle.len();
    let rest = tail[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Baseline `match_ms` for the q-gram threshold stage at `threads`,
/// from a previously committed report.
fn baseline_threshold_match_ms(text: &str, threads: usize) -> Option<f64> {
    text.lines()
        .filter(|l| l.contains("\"mode\": \"threshold\""))
        .find(|l| json_number(l, "", "threads") == Some(threads as f64))
        .and_then(|l| json_number(l, "", "match_ms"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_PR6.json".to_owned());
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_PR5.json".to_owned());

    // The large pair: a noisy Google-Scholar-style source, scaled from
    // `small` toward the paper's 64k-entry regime. Seed pinned so every
    // CI run benches the identical workload.
    let mut cfg = WorldConfig::small();
    cfg.gs_noise_entries = 8_000;
    cfg.seed = SEED;
    let t0 = Instant::now();
    let s = Scenario::generate(cfg);
    let datagen_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (dblp, gs) = (s.ids.pub_dblp, s.ids.pub_gs);
    let dblp_len = s.registry.lds(dblp).len();
    let gs_len = s.registry.lds(gs).len();
    eprintln!("scenario: DBLP ({dblp_len}) × GS ({gs_len}), t={THRESHOLD}, seed {SEED}");

    let matcher = |blocking: Blocking| {
        AttributeMatcher::new("title", "title", SimFn::Trigram, THRESHOLD).with_blocking(blocking)
    };

    // --- exactness gate: one all-pairs reference ----------------------
    let ctx4 = MatchContext::new(&s.registry).with_parallelism(Parallelism::new(4));
    eprintln!("computing all-pairs trigram reference (exactness gate)...");
    let t0 = Instant::now();
    let reference = matcher(Blocking::AllPairs)
        .execute(&ctx4, dblp, gs)
        .unwrap();
    let allpairs_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "  all-pairs: {} rows in {allpairs_ms:.0} ms",
        reference.len()
    );

    // --- candidate counts (shared across thread counts) ---------------
    let domain_vals: Vec<(u32, String)> = s
        .registry
        .lds(dblp)
        .project("title")
        .unwrap()
        .into_iter()
        .map(|(i, v)| (i, v.to_match_string()))
        .collect();
    let range_vals: Vec<(u32, String)> = s
        .registry
        .lds(gs)
        .project("title")
        .unwrap()
        .into_iter()
        .map(|(i, v)| (i, v.to_match_string()))
        .collect();
    let par1 = Parallelism::sequential();

    let (prefix_index, _) = time(|| TrigramIndex::build_par(&range_vals, &par1));
    let (threshold_index, _) =
        time(|| ThresholdIndex::build_par(QgramMeasure::Dice, 3, THRESHOLD, &range_vals, &par1));
    let count =
        |f: &dyn Fn(&str) -> usize| -> usize { domain_vals.iter().map(|(_, v)| f(v)).sum() };
    let prefix_candidates = count(&|v| prefix_index.candidates(v, THRESHOLD).len());
    let threshold_candidates = count(&|v| threshold_index.candidates(v).len());
    let allpairs_candidates = domain_vals.len() * range_vals.len();
    eprintln!(
        "candidates scored: all-pairs {allpairs_candidates}, prefix {prefix_candidates}, threshold {threshold_candidates}"
    );
    assert!(
        threshold_candidates <= prefix_candidates,
        "threshold blocking scored more candidates ({threshold_candidates}) than the prefix filter ({prefix_candidates})"
    );
    let candidate_ratio = prefix_candidates as f64 / (threshold_candidates.max(1)) as f64;
    let allpairs_ratio = allpairs_candidates as f64 / (threshold_candidates.max(1)) as f64;
    assert!(
        candidate_ratio >= 3.0,
        "threshold blocking must prune ≥3× harder than the prefix filter at t={THRESHOLD}, got {candidate_ratio:.2}x"
    );

    // --- per-stage wall times at 1 and 4 threads -----------------------
    let mut stages: Vec<StageTimes> = Vec::new();
    let mut wall_speedups: Vec<(usize, f64)> = Vec::new();
    for threads in [1usize, 4] {
        let par = Parallelism::new(threads);
        let ctx = MatchContext::new(&s.registry).with_parallelism(par);

        let (_, prefix_build_s) = time(|| TrigramIndex::build_par(&range_vals, &par));
        let (_, prefix_gen_s) = time(|| count(&|v| prefix_index.candidates(v, THRESHOLD).len()));
        let (prefix_mapping, prefix_match_s) = time(|| {
            matcher(Blocking::TrigramPrefix)
                .execute(&ctx, dblp, gs)
                .unwrap()
        });

        let (_, thr_build_s) =
            time(|| ThresholdIndex::build_par(QgramMeasure::Dice, 3, THRESHOLD, &range_vals, &par));
        let (_, thr_gen_s) = time(|| count(&|v| threshold_index.candidates(v).len()));
        let (thr_mapping, thr_match_s) = time(|| {
            matcher(Blocking::Threshold)
                .execute(&ctx, dblp, gs)
                .unwrap()
        });

        // Exactness gate: every mode, every thread count, row-for-row.
        assert_eq!(
            reference.table.rows(),
            prefix_mapping.table.rows(),
            "prefix-filtered mapping diverged from all-pairs at {threads} threads"
        );
        assert_eq!(
            reference.table.rows(),
            thr_mapping.table.rows(),
            "threshold-exact mapping diverged from all-pairs at {threads} threads"
        );

        let wall = prefix_match_s / thr_match_s.max(1e-12);
        eprintln!(
            "threads {threads}: prefix match {:.0} ms, threshold match {:.0} ms ({wall:.1}x wall, {candidate_ratio:.1}x candidates)",
            prefix_match_s * 1e3,
            thr_match_s * 1e3,
        );
        assert!(
            wall >= 3.0,
            "threshold blocking must be ≥3× faster than the prefix filter at t={THRESHOLD} ({threads} threads), got {wall:.2}x"
        );
        wall_speedups.push((threads, wall));
        stages.push(StageTimes {
            mode: "trigram_prefix",
            threads,
            index_build_ms: prefix_build_s * 1e3,
            candidate_gen_ms: prefix_gen_s * 1e3,
            match_ms: prefix_match_s * 1e3,
        });
        stages.push(StageTimes {
            mode: "threshold",
            threads,
            index_build_ms: thr_build_s * 1e3,
            candidate_gen_ms: thr_gen_s * 1e3,
            match_ms: thr_match_s * 1e3,
        });
    }

    // --- TF-IDF: weighted-prefix Threshold plan vs all-pairs -----------
    // Mirror the matcher's scoring path: a corpus over both columns,
    // cached vectors, and a weighted-prefix index over the range side.
    eprintln!("building TF-IDF corpus + weighted-prefix index...");
    let corpus = TfIdfCorpus::build(
        domain_vals
            .iter()
            .map(|(_, v)| v.as_str())
            .chain(range_vals.iter().map(|(_, v)| v.as_str())),
    );
    let d_vecs: Vec<Vec<(u32, f64)>> = domain_vals.iter().map(|(_, v)| corpus.vector(v)).collect();
    let r_vecs: Vec<Vec<(u32, f64)>> = range_vals.iter().map(|(_, v)| corpus.vector(v)).collect();
    let (tfidf_index, tfidf_build_s) = time(|| {
        TfIdfIndex::build(
            THRESHOLD,
            r_vecs
                .iter()
                .enumerate()
                .map(|(p, v)| (p as u32, v.as_slice())),
        )
    });
    let (tfidf_candidates, tfidf_gen_s) = time(|| {
        d_vecs
            .iter()
            .map(|v| tfidf_index.candidates(v).len())
            .sum::<usize>()
    });
    let tfidf_candidate_ratio = allpairs_candidates as f64 / (tfidf_candidates.max(1)) as f64;
    eprintln!(
        "TF-IDF candidates scored: all-pairs {allpairs_candidates}, weighted-prefix {tfidf_candidates} ({tfidf_candidate_ratio:.1}x)"
    );
    assert!(
        tfidf_candidate_ratio >= 10.0,
        "TF-IDF weighted-prefix pruning must score ≥10× fewer candidates than all-pairs at t={THRESHOLD}, got {tfidf_candidate_ratio:.2}x"
    );

    let tfidf_matcher = |blocking: Blocking| {
        AttributeMatcher::tfidf("title", "title", THRESHOLD).with_blocking(blocking)
    };
    let mut tfidf_stages: Vec<StageTimes> = Vec::new();
    let mut tfidf_wall_speedups: Vec<(usize, f64)> = Vec::new();
    let mut tfidf_reference = None;
    for threads in [1usize, 4] {
        let ctx = MatchContext::new(&s.registry).with_parallelism(Parallelism::new(threads));
        // All-pairs is the expensive leg: single run, no best-of-three.
        let t0 = Instant::now();
        let ap_mapping = tfidf_matcher(Blocking::AllPairs)
            .execute(&ctx, dblp, gs)
            .unwrap();
        let ap_match_s = t0.elapsed().as_secs_f64();
        let (thr_mapping, thr_match_s) = time(|| {
            tfidf_matcher(Blocking::Threshold)
                .execute(&ctx, dblp, gs)
                .unwrap()
        });
        assert_eq!(
            ap_mapping.table.rows(),
            thr_mapping.table.rows(),
            "TF-IDF Threshold mapping diverged from all-pairs at {threads} threads"
        );
        let wall = ap_match_s / thr_match_s.max(1e-12);
        eprintln!(
            "TF-IDF threads {threads}: all-pairs {:.0} ms, threshold {:.0} ms ({wall:.1}x wall)",
            ap_match_s * 1e3,
            thr_match_s * 1e3,
        );
        assert!(
            wall >= 3.0,
            "TF-IDF Threshold plan must be ≥3× faster than all-pairs at t={THRESHOLD} ({threads} threads), got {wall:.2}x"
        );
        tfidf_wall_speedups.push((threads, wall));
        tfidf_stages.push(StageTimes {
            mode: "tfidf_all_pairs",
            threads,
            index_build_ms: 0.0,
            candidate_gen_ms: 0.0,
            match_ms: ap_match_s * 1e3,
        });
        tfidf_stages.push(StageTimes {
            mode: "tfidf_threshold",
            threads,
            index_build_ms: tfidf_build_s * 1e3,
            candidate_gen_ms: tfidf_gen_s * 1e3,
            match_ms: thr_match_s * 1e3,
        });
        tfidf_reference.get_or_insert(ap_mapping);
    }
    let tfidf_rows = tfidf_reference.expect("tfidf reference computed").len();

    // --- trend gate vs the committed baseline --------------------------
    let mut trend_checked = false;
    match std::fs::read_to_string(&baseline_path) {
        Ok(base) => {
            let base_candidates = json_number(&base, "\"candidates\"", "threshold");
            if let Some(bc) = base_candidates {
                assert!(
                    threshold_candidates as f64 <= bc,
                    "q-gram threshold candidates regressed: {threshold_candidates} now vs {bc} in {baseline_path} (deterministic workload — this is a real pruning regression)"
                );
            }
            for &(threads, _) in &wall_speedups {
                let now = stages
                    .iter()
                    .find(|st| st.mode == "threshold" && st.threads == threads)
                    .map(|st| st.match_ms)
                    .expect("threshold stage recorded");
                if let Some(then) = baseline_threshold_match_ms(&base, threads) {
                    assert!(
                        now <= then * TREND_TOLERANCE,
                        "q-gram threshold match wall regressed at {threads} threads: {now:.0} ms now vs {then:.0} ms in {baseline_path} (tolerance {TREND_TOLERANCE}x)"
                    );
                    eprintln!("trend {threads} threads: {now:.0} ms vs baseline {then:.0} ms — ok");
                }
            }
            trend_checked = true;
        }
        Err(e) => {
            eprintln!("warning: baseline {baseline_path} unreadable ({e}); skipping trend gate");
        }
    }

    // --- JSON report ---------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"bench\": \"threshold-exact candidate pruning, q-gram + TF-IDF (PR6)\","
    );
    let _ = writeln!(
        json,
        "  \"scenario\": {{\"seed\": {SEED}, \"threshold\": {THRESHOLD}, \"dblp_entries\": {dblp_len}, \"gs_entries\": {gs_len}, \"datagen_ms\": {datagen_ms:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"exactness\": {{\"bit_identical\": true, \"rows\": {}, \"tfidf_rows\": {tfidf_rows}, \"allpairs_reference_ms\": {allpairs_ms:.1}}},",
        reference.len()
    );
    let _ = writeln!(
        json,
        "  \"candidates\": {{\"all_pairs\": {allpairs_candidates}, \"trigram_prefix\": {prefix_candidates}, \"threshold\": {threshold_candidates}, \"threshold_vs_prefix_ratio\": {candidate_ratio:.3}, \"threshold_vs_allpairs_ratio\": {allpairs_ratio:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"tfidf_candidates\": {{\"all_pairs\": {allpairs_candidates}, \"weighted_prefix\": {tfidf_candidates}, \"weighted_prefix_vs_allpairs_ratio\": {tfidf_candidate_ratio:.3}}},"
    );
    let _ = writeln!(json, "  \"stages\": [");
    let all_stages: Vec<&StageTimes> = stages.iter().chain(tfidf_stages.iter()).collect();
    for (i, st) in all_stages.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"index_build_ms\": {:.2}, \"candidate_gen_ms\": {:.2}, \"match_ms\": {:.2}}}{}",
            st.mode,
            st.threads,
            st.index_build_ms,
            st.candidate_gen_ms,
            st.match_ms,
            if i + 1 < all_stages.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"wall_speedup\": {{");
    for (threads, speedup) in wall_speedups.iter() {
        let _ = writeln!(json, "    \"threads_{threads}\": {speedup:.3},");
    }
    for (i, (threads, speedup)) in tfidf_wall_speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"tfidf_threads_{threads}\": {speedup:.3}{}",
            if i + 1 < tfidf_wall_speedups.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"trend\": {{\"baseline\": \"{baseline_path}\", \"checked\": {trend_checked}, \"tolerance\": {TREND_TOLERANCE}}}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
    println!("{json}");
}
