//! Machine-readable perf snapshot of the candidate-pruning engine —
//! the artifact behind CI's `perf-smoke` job.
//!
//! ```bash
//! cargo run --release -p moma-bench --bin bench_report              # writes BENCH_PR5.json
//! cargo run --release -p moma-bench --bin bench_report -- out.json
//! ```
//!
//! Runs the large datagen scenario (fixed seed) and matches
//! Publication@DBLP × Publication@GS with trigram Dice at t = 0.8 under
//! prefix-filtered and threshold-exact blocking, at 1 and 4 threads.
//! The report records per-stage wall times (index build, candidate
//! generation, full match), candidate counts and the pruned-vs-naive
//! speedup ratio. Two gates hold on any hardware (the win is
//! algorithmic, not parallel):
//!
//! * **bit-identity** — all-pairs, prefix-filtered and threshold-exact
//!   execution produce row-for-row identical mappings,
//! * **pruning dominance** — the threshold engine never generates (and
//!   therefore never scores) more candidates than the prefix filter.
//!
//! The headline gate — threshold-exact ≥ 3× faster than the prefix
//! filter at t = 0.8 — is asserted on both the candidate-count ratio
//! and the end-to-end match wall clock at every thread count (observed
//! ~600× fewer candidates and ~9× wall on the reference container; the
//! 3× floor leaves room for noisy CI hardware).

use std::fmt::Write as _;
use std::time::Instant;

use moma_core::blocking::{Blocking, ThresholdIndex, TrigramIndex};
use moma_core::exec::Parallelism;
use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma_datagen::{Scenario, WorldConfig};
use moma_simstring::QgramMeasure;
use moma_simstring::SimFn;

const THRESHOLD: f64 = 0.8;
const SEED: u64 = 7;

fn time<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    // One warm-up, then best of three (robust against scheduler noise).
    f();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.expect("at least one run"), best)
}

struct StageTimes {
    mode: &'static str,
    threads: usize,
    index_build_ms: f64,
    candidate_gen_ms: f64,
    match_ms: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR5.json".to_owned());

    // The large pair: a noisy Google-Scholar-style source, scaled from
    // `small` toward the paper's 64k-entry regime. Seed pinned so every
    // CI run benches the identical workload.
    let mut cfg = WorldConfig::small();
    cfg.gs_noise_entries = 8_000;
    cfg.seed = SEED;
    let t0 = Instant::now();
    let s = Scenario::generate(cfg);
    let datagen_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (dblp, gs) = (s.ids.pub_dblp, s.ids.pub_gs);
    let dblp_len = s.registry.lds(dblp).len();
    let gs_len = s.registry.lds(gs).len();
    eprintln!("scenario: DBLP ({dblp_len}) × GS ({gs_len}), trigram t={THRESHOLD}, seed {SEED}");

    let matcher = |blocking: Blocking| {
        AttributeMatcher::new("title", "title", SimFn::Trigram, THRESHOLD).with_blocking(blocking)
    };

    // --- exactness gate: one all-pairs reference ----------------------
    let ctx4 = MatchContext::new(&s.registry).with_parallelism(Parallelism::new(4));
    eprintln!("computing all-pairs reference (exactness gate)...");
    let t0 = Instant::now();
    let reference = matcher(Blocking::AllPairs)
        .execute(&ctx4, dblp, gs)
        .unwrap();
    let allpairs_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "  all-pairs: {} rows in {allpairs_ms:.0} ms",
        reference.len()
    );

    // --- candidate counts (shared across thread counts) ---------------
    let domain_vals: Vec<(u32, String)> = s
        .registry
        .lds(dblp)
        .project("title")
        .unwrap()
        .into_iter()
        .map(|(i, v)| (i, v.to_match_string()))
        .collect();
    let range_vals: Vec<(u32, String)> = s
        .registry
        .lds(gs)
        .project("title")
        .unwrap()
        .into_iter()
        .map(|(i, v)| (i, v.to_match_string()))
        .collect();
    let par1 = Parallelism::sequential();

    let (prefix_index, _) = time(|| TrigramIndex::build_par(&range_vals, &par1));
    let (threshold_index, _) =
        time(|| ThresholdIndex::build_par(QgramMeasure::Dice, 3, THRESHOLD, &range_vals, &par1));
    let count =
        |f: &dyn Fn(&str) -> usize| -> usize { domain_vals.iter().map(|(_, v)| f(v)).sum() };
    let prefix_candidates = count(&|v| prefix_index.candidates(v, THRESHOLD).len());
    let threshold_candidates = count(&|v| threshold_index.candidates(v).len());
    let allpairs_candidates = domain_vals.len() * range_vals.len();
    eprintln!(
        "candidates scored: all-pairs {allpairs_candidates}, prefix {prefix_candidates}, threshold {threshold_candidates}"
    );
    assert!(
        threshold_candidates <= prefix_candidates,
        "threshold blocking scored more candidates ({threshold_candidates}) than the prefix filter ({prefix_candidates})"
    );
    let candidate_ratio = prefix_candidates as f64 / (threshold_candidates.max(1)) as f64;
    let allpairs_ratio = allpairs_candidates as f64 / (threshold_candidates.max(1)) as f64;
    assert!(
        candidate_ratio >= 3.0,
        "threshold blocking must prune ≥3× harder than the prefix filter at t={THRESHOLD}, got {candidate_ratio:.2}x"
    );

    // --- per-stage wall times at 1 and 4 threads -----------------------
    let mut stages: Vec<StageTimes> = Vec::new();
    let mut wall_speedups: Vec<(usize, f64)> = Vec::new();
    for threads in [1usize, 4] {
        let par = Parallelism::new(threads);
        let ctx = MatchContext::new(&s.registry).with_parallelism(par);

        let (_, prefix_build_s) = time(|| TrigramIndex::build_par(&range_vals, &par));
        let (_, prefix_gen_s) = time(|| count(&|v| prefix_index.candidates(v, THRESHOLD).len()));
        let (prefix_mapping, prefix_match_s) = time(|| {
            matcher(Blocking::TrigramPrefix)
                .execute(&ctx, dblp, gs)
                .unwrap()
        });

        let (_, thr_build_s) =
            time(|| ThresholdIndex::build_par(QgramMeasure::Dice, 3, THRESHOLD, &range_vals, &par));
        let (_, thr_gen_s) = time(|| count(&|v| threshold_index.candidates(v).len()));
        let (thr_mapping, thr_match_s) = time(|| {
            matcher(Blocking::Threshold)
                .execute(&ctx, dblp, gs)
                .unwrap()
        });

        // Exactness gate: every mode, every thread count, row-for-row.
        assert_eq!(
            reference.table.rows(),
            prefix_mapping.table.rows(),
            "prefix-filtered mapping diverged from all-pairs at {threads} threads"
        );
        assert_eq!(
            reference.table.rows(),
            thr_mapping.table.rows(),
            "threshold-exact mapping diverged from all-pairs at {threads} threads"
        );

        let wall = prefix_match_s / thr_match_s.max(1e-12);
        eprintln!(
            "threads {threads}: prefix match {:.0} ms, threshold match {:.0} ms ({wall:.1}x wall, {candidate_ratio:.1}x candidates)",
            prefix_match_s * 1e3,
            thr_match_s * 1e3,
        );
        assert!(
            wall >= 3.0,
            "threshold blocking must be ≥3× faster than the prefix filter at t={THRESHOLD} ({threads} threads), got {wall:.2}x"
        );
        wall_speedups.push((threads, wall));
        stages.push(StageTimes {
            mode: "trigram_prefix",
            threads,
            index_build_ms: prefix_build_s * 1e3,
            candidate_gen_ms: prefix_gen_s * 1e3,
            match_ms: prefix_match_s * 1e3,
        });
        stages.push(StageTimes {
            mode: "threshold",
            threads,
            index_build_ms: thr_build_s * 1e3,
            candidate_gen_ms: thr_gen_s * 1e3,
            match_ms: thr_match_s * 1e3,
        });
    }

    // --- JSON report ---------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"bench\": \"threshold-exact candidate pruning (PR5)\","
    );
    let _ = writeln!(
        json,
        "  \"scenario\": {{\"seed\": {SEED}, \"threshold\": {THRESHOLD}, \"dblp_entries\": {dblp_len}, \"gs_entries\": {gs_len}, \"datagen_ms\": {datagen_ms:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"exactness\": {{\"bit_identical\": true, \"rows\": {}, \"allpairs_reference_ms\": {allpairs_ms:.1}}},",
        reference.len()
    );
    let _ = writeln!(
        json,
        "  \"candidates\": {{\"all_pairs\": {allpairs_candidates}, \"trigram_prefix\": {prefix_candidates}, \"threshold\": {threshold_candidates}, \"threshold_vs_prefix_ratio\": {candidate_ratio:.3}, \"threshold_vs_allpairs_ratio\": {allpairs_ratio:.3}}},"
    );
    let _ = writeln!(json, "  \"stages\": [");
    for (i, st) in stages.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"index_build_ms\": {:.2}, \"candidate_gen_ms\": {:.2}, \"match_ms\": {:.2}}}{}",
            st.mode,
            st.threads,
            st.index_build_ms,
            st.candidate_gen_ms,
            st.match_ms,
            if i + 1 < stages.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"wall_speedup\": {{");
    for (i, (threads, speedup)) in wall_speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"threads_{threads}\": {speedup:.3}{}",
            if i + 1 < wall_speedups.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
    println!("{json}");
}
