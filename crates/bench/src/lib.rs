//! # moma-bench — benchmarks and experiment regeneration for MOMA
//!
//! * `benches/` — Criterion micro/macro benchmarks: similarity kernels,
//!   merge/compose operators, join strategies, attribute matching with
//!   and without blocking, neighborhood matching, script interpretation.
//! * `src/bin/repro.rs` — regenerates every table and figure of the
//!   paper: `cargo run --release -p moma-bench --bin repro -- all`.
//!
//! Shared helpers for benchmark data generation live here.

use moma_core::Mapping;
use moma_model::LdsId;
use moma_table::MappingTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random mapping with `rows` correspondences over a
/// `keys × keys` id space.
pub fn random_mapping(seed: u64, keys: u32, rows: usize) -> Mapping {
    let mut rng = StdRng::seed_from_u64(seed);
    let table = MappingTable::from_triples((0..rows).map(|_| {
        (
            rng.gen_range(0..keys),
            rng.gen_range(0..keys),
            rng.gen::<f64>(),
        )
    }));
    Mapping::same(format!("random({seed})"), LdsId(0), LdsId(1), table)
}

/// Deterministic random mapping whose range side is a different LDS id
/// space, for compose chains.
pub fn random_chain_mapping(seed: u64, keys: u32, rows: usize, from: u32, to: u32) -> Mapping {
    let mut rng = StdRng::seed_from_u64(seed);
    let table = MappingTable::from_triples((0..rows).map(|_| {
        (
            rng.gen_range(0..keys),
            rng.gen_range(0..keys),
            rng.gen::<f64>(),
        )
    }));
    Mapping::same(
        format!("chain({from}->{to})"),
        LdsId(from),
        LdsId(to),
        table,
    )
}

/// Sample publication-title-like strings for similarity benches.
pub fn sample_titles(n: usize, seed: u64) -> Vec<String> {
    let openers = ["Efficient", "Scalable", "Adaptive", "Robust", "Incremental"];
    let topics = [
        "Query Processing",
        "Schema Matching",
        "Data Cleaning",
        "Similarity Search",
        "Join Processing",
    ];
    let contexts = [
        "Data Warehouses",
        "XML Data",
        "Sensor Networks",
        "the Web",
        "P2P Systems",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            format!(
                "{} {} for {}",
                openers[rng.gen_range(0..openers.len())],
                topics[rng.gen_range(0..topics.len())],
                contexts[rng.gen_range(0..contexts.len())]
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_mapping_is_deterministic() {
        let a = random_mapping(1, 100, 500);
        let b = random_mapping(1, 100, 500);
        assert_eq!(a.table, b.table);
        assert!(a.len() <= 500);
        assert!(a.sims_valid());
    }

    #[test]
    fn titles_deterministic() {
        assert_eq!(sample_titles(5, 9), sample_titles(5, 9));
        assert_eq!(sample_titles(5, 9).len(), 5);
    }
}
