//! Information fusion across same-mappings (paper Sections 1, 4).
//!
//! "The generated mappings allow us to traverse between peers and to
//! fuse together and enhance information on equivalent objects for data
//! analysis and query answering. … DBLP publications can be combined
//! with their matching publications in ACM DL and Google Scholar to
//! obtain additional attribute values like the number of citations."

use moma_core::Mapping;
use moma_model::{AttrValue, SourceRegistry};
use moma_table::FxHashMap;

/// How multiple matched range values fuse into one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseCombine {
    /// Keep the first (highest-similarity correspondence) value.
    First,
    /// Sum numeric values (e.g. citation counts over duplicate GS
    /// entries).
    Sum,
    /// Maximum numeric value.
    Max,
    /// Count matched instances regardless of value.
    Count,
}

/// Fuse a range attribute onto domain instances through a same-mapping.
///
/// Returns `domain index → fused value`. Non-numeric values under
/// `Sum`/`Max` are skipped; `Count` counts correspondences with any
/// present value.
pub fn fuse_attribute(
    registry: &SourceRegistry,
    same: &Mapping,
    range_attr: &str,
    combine: FuseCombine,
) -> moma_model::Result<FxHashMap<u32, AttrValue>> {
    let r_lds = registry.lds(same.range);
    let slot = r_lds.attr_slot(range_attr)?;

    // Highest-similarity-first ordering so `First` is deterministic.
    let mut rows: Vec<(u32, u32, f64)> = same
        .table
        .iter()
        .map(|c| (c.domain, c.range, c.sim))
        .collect();
    rows.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
    });

    let mut out: FxHashMap<u32, AttrValue> = FxHashMap::default();
    for (d, r, _) in rows {
        let Some(value) = r_lds.get(r).and_then(|inst| inst.value(slot)) else {
            continue;
        };
        match combine {
            FuseCombine::First => {
                out.entry(d).or_insert_with(|| value.clone());
            }
            FuseCombine::Sum => {
                let add = numeric(value);
                if let Some(add) = add {
                    let cur = out.entry(d).or_insert(AttrValue::Int(0));
                    if let Some(c) = numeric(cur) {
                        *cur = AttrValue::Int(c + add);
                    }
                }
            }
            FuseCombine::Max => {
                if let Some(v) = numeric(value) {
                    let cur = out.entry(d).or_insert(AttrValue::Int(v));
                    if let Some(c) = numeric(cur) {
                        *cur = AttrValue::Int(c.max(v));
                    }
                }
            }
            FuseCombine::Count => {
                let cur = out.entry(d).or_insert(AttrValue::Int(0));
                if let Some(c) = numeric(cur) {
                    *cur = AttrValue::Int(c + 1);
                }
            }
        }
    }
    Ok(out)
}

fn numeric(v: &AttrValue) -> Option<i64> {
    match v {
        AttrValue::Int(i) => Some(*i),
        AttrValue::Year(y) => Some(*y as i64),
        AttrValue::Real(r) => Some(*r as i64),
        _ => None,
    }
}

/// A fused multi-source view of one domain instance: its own attributes
/// plus, per matched range instance, the range attributes.
#[derive(Debug, Clone)]
pub struct FusedView {
    /// Domain instance index.
    pub domain_index: u32,
    /// Domain instance id.
    pub domain_id: String,
    /// `(range id, similarity)` of matched instances.
    pub matches: Vec<(String, f64)>,
}

/// Materialize fused views for every domain instance of a same-mapping.
pub fn fused_views(registry: &SourceRegistry, same: &Mapping) -> Vec<FusedView> {
    let d_lds = registry.lds(same.domain);
    let r_lds = registry.lds(same.range);
    let mut per_domain: FxHashMap<u32, Vec<(String, f64)>> = FxHashMap::default();
    for c in same.table.iter() {
        if let Some(inst) = r_lds.get(c.range) {
            per_domain
                .entry(c.domain)
                .or_default()
                .push((inst.id.clone(), c.sim));
        }
    }
    let mut out: Vec<FusedView> = per_domain
        .into_iter()
        .filter_map(|(d, mut matches)| {
            matches.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            d_lds.get(d).map(|inst| FusedView {
                domain_index: d,
                domain_id: inst.id.clone(),
                matches,
            })
        })
        .collect();
    out.sort_by_key(|v| v.domain_index);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LogicalSource, ObjectType};
    use moma_table::MappingTable;

    fn setup() -> (SourceRegistry, Mapping) {
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        dblp.insert_record("d0", vec![("title", "Paper A".into())])
            .unwrap();
        dblp.insert_record("d1", vec![("title", "Paper B".into())])
            .unwrap();
        let mut gs = LogicalSource::new(
            "GS",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::int("citations")],
        );
        gs.insert_record(
            "g0",
            vec![("title", "Paper A".into()), ("citations", 10i64.into())],
        )
        .unwrap();
        gs.insert_record(
            "g1",
            vec![
                ("title", "Paper A (dup)".into()),
                ("citations", 5i64.into()),
            ],
        )
        .unwrap();
        gs.insert_record(
            "g2",
            vec![("title", "Paper B".into()), ("citations", 7i64.into())],
        )
        .unwrap();
        gs.insert_record("g3", vec![("title", "no citations".into())])
            .unwrap();
        let d = reg.register(dblp).unwrap();
        let g = reg.register(gs).unwrap();
        let same = Mapping::same(
            "DG",
            d,
            g,
            MappingTable::from_triples([(0, 0, 1.0), (0, 1, 0.8), (1, 2, 0.9), (1, 3, 0.7)]),
        );
        (reg, same)
    }

    #[test]
    fn sum_citations_over_duplicates() {
        let (reg, same) = setup();
        let fused = fuse_attribute(&reg, &same, "citations", FuseCombine::Sum).unwrap();
        assert_eq!(fused[&0], AttrValue::Int(15));
        assert_eq!(fused[&1], AttrValue::Int(7));
    }

    #[test]
    fn max_citations() {
        let (reg, same) = setup();
        let fused = fuse_attribute(&reg, &same, "citations", FuseCombine::Max).unwrap();
        assert_eq!(fused[&0], AttrValue::Int(10));
    }

    #[test]
    fn first_takes_best_match() {
        let (reg, same) = setup();
        let fused = fuse_attribute(&reg, &same, "citations", FuseCombine::First).unwrap();
        // d0's best match is g0 (sim 1.0) -> 10.
        assert_eq!(fused[&0], AttrValue::Int(10));
    }

    #[test]
    fn count_matches_with_values() {
        let (reg, same) = setup();
        let fused = fuse_attribute(&reg, &same, "citations", FuseCombine::Count).unwrap();
        assert_eq!(fused[&0], AttrValue::Int(2));
        // g3 has no citations value -> only g2 counts for d1.
        assert_eq!(fused[&1], AttrValue::Int(1));
    }

    #[test]
    fn unknown_attr_errors() {
        let (reg, same) = setup();
        assert!(fuse_attribute(&reg, &same, "nope", FuseCombine::Sum).is_err());
    }

    #[test]
    fn fused_views_sorted_by_sim() {
        let (reg, same) = setup();
        let views = fused_views(&reg, &same);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].domain_id, "d0");
        assert_eq!(views[0].matches[0].0, "g0");
        assert_eq!(views[0].matches[1].0, "g1");
        assert_eq!(views[1].matches.len(), 2);
    }
}
