//! iFuice instance/mapping operators (paper Section 4).
//!
//! "iFuice supports other operators for querying data sources, accessing
//! object instances based on their ids, traversing mappings, and
//! aggregating objects interconnected by same-mappings."

use moma_core::Mapping;
use moma_table::{FxHashSet, MappingTable};

/// Traverse a mapping from a set of domain instances: the reached range
/// instances (deduplicated, sorted).
pub fn traverse(mapping: &Mapping, domain_ids: &[u32]) -> Vec<u32> {
    let wanted: FxHashSet<u32> = domain_ids.iter().copied().collect();
    let mut out: Vec<u32> = mapping
        .table
        .iter()
        .filter(|c| wanted.contains(&c.domain))
        .map(|c| c.range)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Restrict a mapping to a set of domain instances.
pub fn restrict_domain(mapping: &Mapping, domain_ids: &[u32]) -> Mapping {
    let wanted: FxHashSet<u32> = domain_ids.iter().copied().collect();
    Mapping {
        name: format!("restrict({})", mapping.name),
        kind: mapping.kind.clone(),
        domain: mapping.domain,
        range: mapping.range,
        table: mapping.table.filtered(|c| wanted.contains(&c.domain)),
    }
}

/// Restrict a mapping to a set of range instances.
pub fn restrict_range(mapping: &Mapping, range_ids: &[u32]) -> Mapping {
    let wanted: FxHashSet<u32> = range_ids.iter().copied().collect();
    Mapping {
        name: format!("restrict({})", mapping.name),
        kind: mapping.kind.clone(),
        domain: mapping.domain,
        range: mapping.range,
        table: mapping.table.filtered(|c| wanted.contains(&c.range)),
    }
}

/// Distinct domain instances of a mapping, sorted.
pub fn domain_instances(mapping: &Mapping) -> Vec<u32> {
    let mut v: Vec<u32> = mapping.table.iter().map(|c| c.domain).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Distinct range instances of a mapping, sorted.
pub fn range_instances(mapping: &Mapping) -> Vec<u32> {
    let mut v: Vec<u32> = mapping.table.iter().map(|c| c.range).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Build an association mapping table from explicit `(domain, range)`
/// pairs with similarity 1 — how source-provided association data (e.g.
/// DBLP publication lists per venue) enters the system.
pub fn association_from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> MappingTable {
    MappingTable::from_triples(pairs.into_iter().map(|(a, b)| (a, b, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::LdsId;

    fn mapping() -> Mapping {
        Mapping::association(
            "VenuePub",
            "publications of venue",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([
                (0, 10, 1.0),
                (0, 11, 1.0),
                (1, 11, 1.0),
                (1, 12, 1.0),
                (2, 13, 1.0),
            ]),
        )
    }

    #[test]
    fn traverse_reaches_ranges() {
        let m = mapping();
        assert_eq!(traverse(&m, &[0]), vec![10, 11]);
        assert_eq!(traverse(&m, &[0, 1]), vec![10, 11, 12]);
        assert_eq!(traverse(&m, &[9]), Vec::<u32>::new());
        assert_eq!(traverse(&m, &[]), Vec::<u32>::new());
    }

    #[test]
    fn restrictions() {
        let m = mapping();
        let d = restrict_domain(&m, &[1]);
        assert_eq!(d.len(), 2);
        assert!(d.table.sim_of(1, 11).is_some());
        let r = restrict_range(&m, &[11]);
        assert_eq!(r.len(), 2);
        assert!(r.table.sim_of(0, 11).is_some());
        assert!(r.table.sim_of(1, 11).is_some());
    }

    #[test]
    fn instance_sets() {
        let m = mapping();
        assert_eq!(domain_instances(&m), vec![0, 1, 2]);
        assert_eq!(range_instances(&m), vec![10, 11, 12, 13]);
    }

    #[test]
    fn association_builder() {
        let t = association_from_pairs([(0, 1), (0, 1), (2, 3)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.sim_of(0, 1), Some(1.0));
    }
}
