//! Data-source access layer.
//!
//! The paper distinguishes sources that "can be completely downloaded"
//! (DBLP) from web sources that "can both be accessed by queries" only
//! (ACM DL, Google Scholar) — Section 5.1. A [`DataSource`] wraps one
//! logical source with an access policy; full scans of query-only
//! sources are rejected, forcing workflows through the query interface
//! exactly as real integration scenarios do.

use moma_model::{AttrValue, LdsId, SourceRegistry};
use moma_simstring::normalize::normalize;

/// Errors from source access.
#[derive(Debug, PartialEq, Eq)]
pub enum SourceError {
    /// A full scan was requested on a query-only source.
    FullScanUnsupported(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::FullScanUnsupported(s) => {
                write!(f, "source `{s}` is query-only; full scans unsupported")
            }
        }
    }
}

impl std::error::Error for SourceError {}

/// Access interface over one logical data source.
pub trait DataSource: Send + Sync {
    /// The logical source this adapter serves.
    fn lds(&self) -> LdsId;

    /// Whether all instances may be enumerated.
    fn supports_full_scan(&self) -> bool;

    /// All instance indexes (errors on query-only sources).
    fn scan(&self, registry: &SourceRegistry) -> Result<Vec<u32>, SourceError>;

    /// Keyword query: instances whose text attributes contain every
    /// keyword token.
    fn query(&self, registry: &SourceRegistry, keywords: &str) -> Vec<u32>;

    /// Resolve source ids to instance indexes (unknown ids skipped).
    fn get(&self, registry: &SourceRegistry, ids: &[&str]) -> Vec<u32>;
}

/// In-memory adapter over a registry LDS.
#[derive(Debug, Clone)]
pub struct InMemorySource {
    lds: LdsId,
    query_only: bool,
}

impl InMemorySource {
    /// Downloadable source (full scans allowed).
    pub fn downloadable(lds: LdsId) -> Self {
        Self {
            lds,
            query_only: false,
        }
    }

    /// Query-only web source.
    pub fn query_only(lds: LdsId) -> Self {
        Self {
            lds,
            query_only: true,
        }
    }
}

fn value_text(v: &AttrValue) -> Option<String> {
    match v {
        AttrValue::Text(_) | AttrValue::TextList(_) => Some(v.to_match_string()),
        _ => None,
    }
}

impl DataSource for InMemorySource {
    fn lds(&self) -> LdsId {
        self.lds
    }

    fn supports_full_scan(&self) -> bool {
        !self.query_only
    }

    fn scan(&self, registry: &SourceRegistry) -> Result<Vec<u32>, SourceError> {
        if self.query_only {
            return Err(SourceError::FullScanUnsupported(
                registry.lds(self.lds).name(),
            ));
        }
        Ok(registry.lds(self.lds).iter().map(|(i, _)| i).collect())
    }

    fn query(&self, registry: &SourceRegistry, keywords: &str) -> Vec<u32> {
        let needles: Vec<String> = normalize(keywords)
            .split(' ')
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect();
        if needles.is_empty() {
            return Vec::new();
        }
        let lds = registry.lds(self.lds);
        lds.iter()
            .filter(|(_, inst)| {
                let haystack: String = inst
                    .values
                    .iter()
                    .flatten()
                    .filter_map(value_text)
                    .collect::<Vec<_>>()
                    .join(" ");
                let haystack = normalize(&haystack);
                needles.iter().all(|n| haystack.contains(n.as_str()))
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn get(&self, registry: &SourceRegistry, ids: &[&str]) -> Vec<u32> {
        let lds = registry.lds(self.lds);
        ids.iter().filter_map(|id| lds.index_of(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LogicalSource, ObjectType};

    fn setup() -> (SourceRegistry, LdsId) {
        let mut reg = SourceRegistry::new();
        let mut lds = LogicalSource::new(
            "GS",
            ObjectType::new("Publication"),
            vec![
                AttrDef::text("title"),
                AttrDef::text_list("authors"),
                AttrDef::year("year"),
            ],
        );
        lds.insert_record(
            "g0",
            vec![
                (
                    "title",
                    "Robust fuzzy match for online data cleaning".into(),
                ),
                (
                    "authors",
                    vec!["S. Chaudhuri".to_owned(), "K. Ganjam".to_owned()].into(),
                ),
                ("year", 2003u16.into()),
            ],
        )
        .unwrap();
        lds.insert_record(
            "g1",
            vec![("title", "Potter's wheel interactive data cleaning".into())],
        )
        .unwrap();
        lds.insert_record("g2", vec![("title", "Generic schema matching".into())])
            .unwrap();
        let id = reg.register(lds).unwrap();
        (reg, id)
    }

    #[test]
    fn downloadable_scans() {
        let (reg, id) = setup();
        let src = InMemorySource::downloadable(id);
        assert!(src.supports_full_scan());
        assert_eq!(src.scan(&reg).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn query_only_rejects_scan() {
        let (reg, id) = setup();
        let src = InMemorySource::query_only(id);
        assert!(!src.supports_full_scan());
        let err = src.scan(&reg).unwrap_err();
        assert_eq!(
            err,
            SourceError::FullScanUnsupported("Publication@GS".into())
        );
        assert!(err.to_string().contains("query-only"));
    }

    #[test]
    fn keyword_query_conjunctive() {
        let (reg, id) = setup();
        let src = InMemorySource::query_only(id);
        assert_eq!(src.query(&reg, "data cleaning"), vec![0, 1]);
        assert_eq!(src.query(&reg, "fuzzy cleaning"), vec![0]);
        assert_eq!(src.query(&reg, "nothing matches this"), Vec::<u32>::new());
        assert_eq!(src.query(&reg, ""), Vec::<u32>::new());
    }

    #[test]
    fn query_searches_author_lists() {
        let (reg, id) = setup();
        let src = InMemorySource::query_only(id);
        assert_eq!(src.query(&reg, "chaudhuri"), vec![0]);
    }

    #[test]
    fn get_by_ids() {
        let (reg, id) = setup();
        let src = InMemorySource::downloadable(id);
        assert_eq!(src.get(&reg, &["g2", "ghost", "g0"]), vec![2, 0]);
    }
}
