//! Loading logical sources and association mappings from TSV files.
//!
//! Downstream users bring their own data; this module gives them the
//! plain-text on-ramp. A source file is a TSV table whose header declares
//! the schema:
//!
//! ```text
//! #source Publication@DBLP
//! id  title:text  authors:list  year:year  citations:int
//! conf/vldb/X01   Generic Schema Matching with Cupid  J. Madhavan|P. Bernstein|E. Rahm    2001    69
//! ```
//!
//! `list` values separate items with `|`. An association file is a
//! two-column TSV of `domain_id range_id` (see
//! [`load_association`]).

use std::path::Path;

use moma_core::Mapping;
use moma_model::{AttrDef, AttrKind, AttrValue, LdsId, LogicalSource, ObjectType, SourceRegistry};
use moma_table::MappingTable;

/// Errors raised while loading TSV data.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file content.
    Format {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        msg: String,
    },
    /// Propagated model error (duplicate ids, schema mismatch, …).
    Model(moma_model::ModelError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "load io error: {e}"),
            LoadError::Format { line, msg } => write!(f, "load error at line {line}: {msg}"),
            LoadError::Model(e) => write!(f, "load error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<moma_model::ModelError> for LoadError {
    fn from(e: moma_model::ModelError) -> Self {
        LoadError::Model(e)
    }
}

fn parse_kind(s: &str, line: usize) -> Result<AttrKind, LoadError> {
    match s.to_ascii_lowercase().as_str() {
        "text" | "str" | "string" => Ok(AttrKind::Text),
        "list" | "textlist" => Ok(AttrKind::TextList),
        "int" | "integer" => Ok(AttrKind::Int),
        "year" => Ok(AttrKind::Year),
        "real" | "float" => Ok(AttrKind::Real),
        other => Err(LoadError::Format {
            line,
            msg: format!("unknown attribute kind `{other}`"),
        }),
    }
}

fn parse_value(kind: AttrKind, raw: &str, line: usize) -> Result<AttrValue, LoadError> {
    Ok(match kind {
        AttrKind::Text => AttrValue::Text(raw.to_owned()),
        AttrKind::TextList => {
            AttrValue::TextList(raw.split('|').map(|s| s.trim().to_owned()).collect())
        }
        AttrKind::Int => AttrValue::Int(raw.parse().map_err(|e| LoadError::Format {
            line,
            msg: format!("bad int `{raw}`: {e}"),
        })?),
        AttrKind::Year => AttrValue::Year(raw.parse().map_err(|e| LoadError::Format {
            line,
            msg: format!("bad year `{raw}`: {e}"),
        })?),
        AttrKind::Real => AttrValue::Real(raw.parse().map_err(|e| LoadError::Format {
            line,
            msg: format!("bad real `{raw}`: {e}"),
        })?),
    })
}

/// Parse a source from TSV text (see module docs for the format).
pub fn parse_source(text: &str) -> Result<LogicalSource, LoadError> {
    let mut lines = text.lines().enumerate();

    // `#source Type@PDS` directive.
    let (type_name, pds) = loop {
        let Some((no, line)) = lines.next() else {
            return Err(LoadError::Format {
                line: 0,
                msg: "missing `#source Type@PDS` line".into(),
            });
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(rest) = line.strip_prefix("#source") else {
            return Err(LoadError::Format {
                line: no + 1,
                msg: "first line must be `#source Type@PDS`".into(),
            });
        };
        let name = rest.trim();
        let Some((ty, pds)) = name.split_once('@') else {
            return Err(LoadError::Format {
                line: no + 1,
                msg: format!("bad source name `{name}` (expected Type@PDS)"),
            });
        };
        break (ty.to_owned(), pds.to_owned());
    };

    // Header row: `id  attr:kind ...`.
    let (header_no, header) =
        lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or(LoadError::Format {
                line: 0,
                msg: "missing header row".into(),
            })?;
    let mut cols = header.split('\t');
    match cols.next() {
        Some("id") => {}
        _ => {
            return Err(LoadError::Format {
                line: header_no + 1,
                msg: "header must start with `id`".into(),
            })
        }
    }
    let mut schema = Vec::new();
    for col in cols {
        let Some((name, kind)) = col.split_once(':') else {
            return Err(LoadError::Format {
                line: header_no + 1,
                msg: format!("bad header column `{col}` (expected name:kind)"),
            });
        };
        schema.push(AttrDef::new(
            name.trim(),
            parse_kind(kind.trim(), header_no + 1)?,
        ));
    }

    let mut lds = LogicalSource::new(pds, ObjectType::new(type_name), schema.clone());
    for (no, line) in lines {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let id = fields
            .next()
            .filter(|s| !s.is_empty())
            .ok_or(LoadError::Format {
                line: no + 1,
                msg: "missing id".into(),
            })?;
        let mut values: Vec<(usize, AttrValue)> = Vec::new();
        for (slot, raw) in fields.enumerate() {
            if slot >= schema.len() {
                return Err(LoadError::Format {
                    line: no + 1,
                    msg: format!("too many columns (schema has {})", schema.len()),
                });
            }
            if raw.is_empty() {
                continue; // missing value
            }
            values.push((slot, parse_value(schema[slot].kind, raw, no + 1)?));
        }
        let mut inst = moma_model::ObjectInstance::new(id, schema.len());
        for (slot, v) in values {
            inst.set(slot, v);
        }
        lds.insert(inst)?;
    }
    Ok(lds)
}

/// Load a source file and register it.
pub fn load_source(
    registry: &mut SourceRegistry,
    path: impl AsRef<Path>,
) -> Result<LdsId, LoadError> {
    let text = std::fs::read_to_string(path)?;
    let lds = parse_source(&text)?;
    Ok(registry.register(lds)?)
}

/// Parse an association mapping from two-column TSV
/// (`domain_id \t range_id [\t sim]`), resolving ids through the given
/// sources. Unknown ids produce an error (associations are source data
/// and must be consistent).
pub fn parse_association(
    text: &str,
    registry: &SourceRegistry,
    name: &str,
    assoc_type: &str,
    domain: LdsId,
    range: LdsId,
) -> Result<Mapping, LoadError> {
    let d_lds = registry.lds(domain);
    let r_lds = registry.lds(range);
    let mut table = MappingTable::new();
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(d), Some(r)) = (parts.next(), parts.next()) else {
            return Err(LoadError::Format {
                line: no + 1,
                msg: "expected two columns".into(),
            });
        };
        let sim: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|e| LoadError::Format {
                line: no + 1,
                msg: format!("bad sim `{s}`: {e}"),
            })?,
            None => 1.0,
        };
        let di = d_lds.index_of(d).ok_or_else(|| LoadError::Format {
            line: no + 1,
            msg: format!("unknown domain id `{d}`"),
        })?;
        let ri = r_lds.index_of(r).ok_or_else(|| LoadError::Format {
            line: no + 1,
            msg: format!("unknown range id `{r}`"),
        })?;
        table.push(di, ri, sim);
    }
    table.dedup_max();
    Ok(Mapping::association(name, assoc_type, domain, range, table))
}

/// Load an association file.
#[allow(clippy::too_many_arguments)]
pub fn load_association(
    registry: &SourceRegistry,
    path: impl AsRef<Path>,
    name: &str,
    assoc_type: &str,
    domain: LdsId,
    range: LdsId,
) -> Result<Mapping, LoadError> {
    let text = std::fs::read_to_string(path)?;
    parse_association(&text, registry, name, assoc_type, domain, range)
}

/// Serialize a mapping result with string ids
/// (`domain_id \t range_id \t sim`), the inverse of [`parse_association`].
pub fn mapping_to_tsv(registry: &SourceRegistry, mapping: &Mapping) -> String {
    let d_lds = registry.lds(mapping.domain);
    let r_lds = registry.lds(mapping.range);
    let mut out = format!("# {} ({} correspondences)\n", mapping.name, mapping.len());
    for c in mapping.table.iter() {
        if let (Some(d), Some(r)) = (d_lds.get(c.domain), r_lds.get(c.range)) {
            out.push_str(&format!("{}\t{}\t{}\n", d.id, r.id, c.sim));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "\
#source Publication@DBLP
id\ttitle:text\tauthors:list\tyear:year\tcitations:int
p1\tGeneric Schema Matching with Cupid\tJ. Madhavan|P. Bernstein|E. Rahm\t2001\t69
p2\tPotter's Wheel\tV. Raman|J. Hellerstein\t2001\t
p3\tNo attrs at all\t\t\t
";

    #[test]
    fn parse_source_full() {
        let lds = parse_source(SOURCE).unwrap();
        assert_eq!(lds.name(), "Publication@DBLP");
        assert_eq!(lds.len(), 3);
        let p1 = lds.by_id("p1").unwrap();
        assert_eq!(
            p1.value(0).unwrap().as_text(),
            Some("Generic Schema Matching with Cupid")
        );
        assert_eq!(p1.value(1).unwrap().as_text_list().unwrap().len(), 3);
        assert_eq!(p1.value(2).unwrap().as_year(), Some(2001));
        assert_eq!(p1.value(3).unwrap().as_int(), Some(69));
        // Missing trailing values stay missing.
        let p2 = lds.by_id("p2").unwrap();
        assert!(p2.value(3).is_none());
        // p3 has only its title; the three empty columns stay missing.
        let p3 = lds.by_id("p3").unwrap();
        assert_eq!(p3.present_count(), 1);
    }

    #[test]
    fn parse_source_errors() {
        assert!(matches!(parse_source(""), Err(LoadError::Format { .. })));
        assert!(matches!(
            parse_source("#source NoAtSign\nid\tt:text\n"),
            Err(LoadError::Format { .. })
        ));
        assert!(matches!(
            parse_source("#source A@B\nwrong\tt:text\n"),
            Err(LoadError::Format { .. })
        ));
        assert!(matches!(
            parse_source("#source A@B\nid\tt:nokind\n"),
            Err(LoadError::Format { .. })
        ));
        let dup = "#source A@B\nid\tt:text\nx\ta\nx\tb\n";
        assert!(matches!(parse_source(dup), Err(LoadError::Model(_))));
        let bad_year = "#source A@B\nid\ty:year\nx\tnope\n";
        assert!(matches!(
            parse_source(bad_year),
            Err(LoadError::Format { .. })
        ));
    }

    #[test]
    fn association_roundtrip() {
        let mut reg = SourceRegistry::new();
        let pubs = parse_source(SOURCE).unwrap();
        let d = reg.register(pubs).unwrap();
        let mut venues = LogicalSource::new(
            "DBLP",
            ObjectType::new("Venue"),
            vec![AttrDef::text("name")],
        );
        venues
            .insert_record("v1", vec![("name", "VLDB 2001".into())])
            .unwrap();
        let r = reg.register(venues).unwrap();

        let assoc_text = "p1\tv1\np2\tv1\t0.9\n";
        let m =
            parse_association(assoc_text, &reg, "PubVenue", "venue of publication", d, r).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.table.sim_of(0, 0), Some(1.0));
        assert_eq!(m.table.sim_of(1, 0), Some(0.9));

        let tsv = mapping_to_tsv(&reg, &m);
        assert!(tsv.contains("p1\tv1\t1"));
        assert!(tsv.contains("p2\tv1\t0.9"));

        // Unknown ids rejected.
        assert!(matches!(
            parse_association("ghost\tv1\n", &reg, "x", "t", d, r),
            Err(LoadError::Format { .. })
        ));
    }

    #[test]
    fn file_loading() {
        let dir = std::env::temp_dir().join("moma_loader_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("pubs.tsv"), SOURCE).unwrap();
        let mut reg = SourceRegistry::new();
        let id = load_source(&mut reg, dir.join("pubs.tsv")).unwrap();
        assert_eq!(reg.lds(id).len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
