//! # moma-ifuice — a miniature iFuice data-integration platform
//!
//! MOMA "has been implemented within the iFuice data integration
//! platform" (paper Section 4): iFuice contributes operators for querying
//! data sources, accessing object instances by id, traversing mappings,
//! and aggregating (fusing) objects interconnected by same-mappings, plus
//! a *script* facility in which match workflows are written.
//!
//! This crate rebuilds exactly those capabilities:
//!
//! * [`source`] — the [`source::DataSource`] access layer distinguishing
//!   downloadable sources (DBLP) from query-only web sources (ACM DL,
//!   Google Scholar),
//! * [`ops`] — query / get / traverse / map-range operators,
//! * [`fusion`] — attribute fusion across same-mappings (e.g. enriching
//!   DBLP publications with Google Scholar citation counts),
//! * [`script`] — the iFuice script language: lexer, parser and
//!   interpreter able to run the paper's own listings, e.g. the
//!   Section 4.3 duplicate-author workflow:
//!
//! ```text
//! $CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);
//! $NameSim   = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]");
//! $Merged    = merge($CoAuthSim, $NameSim, Average);
//! $Result    = select($Merged, "[domain.id]<>[range.id]");
//! RETURN $Result;
//! ```

pub mod fusion;
pub mod loader;
pub mod ops;
pub mod script;
pub mod source;

pub use script::interp::{Interpreter, Value};
pub use script::{run_script, run_script_with};
pub use source::{DataSource, InMemorySource};
