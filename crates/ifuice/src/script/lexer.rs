//! Tokenizer for the iFuice script language.

use std::fmt;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `$Name` variable.
    Var(String),
    /// Bare identifier / keyword.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `;`
    Semi,
    /// `.`
    Dot,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Var(v) => write!(f, "${v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Dot => write!(f, "."),
        }
    }
}

/// A lexing error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a script.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let ident_char = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc) = (line, col);
        let advance = |n: usize, i: &mut usize, col: &mut usize| {
            *i += n;
            *col += n;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => advance(1, &mut i, &mut col),
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    line: tl,
                    col: tc,
                });
                advance(1, &mut i, &mut col);
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    line: tl,
                    col: tc,
                });
                advance(1, &mut i, &mut col);
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    line: tl,
                    col: tc,
                });
                advance(1, &mut i, &mut col);
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    line: tl,
                    col: tc,
                });
                advance(1, &mut i, &mut col);
            }
            ';' => {
                out.push(Token {
                    kind: TokenKind::Semi,
                    line: tl,
                    col: tc,
                });
                advance(1, &mut i, &mut col);
            }
            '.' if !chars
                .get(i + 1)
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false) =>
            {
                out.push(Token {
                    kind: TokenKind::Dot,
                    line: tl,
                    col: tc,
                });
                advance(1, &mut i, &mut col);
            }
            '$' => {
                let start = i + 1;
                let mut end = start;
                while end < chars.len() && ident_char(chars[end]) {
                    end += 1;
                }
                if end == start {
                    return Err(LexError {
                        msg: "`$` without variable name".into(),
                        line: tl,
                        col: tc,
                    });
                }
                let name: String = chars[start..end].iter().collect();
                advance(end - i, &mut i, &mut col);
                out.push(Token {
                    kind: TokenKind::Var(name),
                    line: tl,
                    col: tc,
                });
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    match chars[j] {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' if j + 1 < chars.len() => {
                            s.push(chars[j + 1]);
                            j += 2;
                        }
                        '\n' => {
                            return Err(LexError {
                                msg: "unterminated string".into(),
                                line: tl,
                                col: tc,
                            })
                        }
                        c => {
                            s.push(c);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(LexError {
                        msg: "unterminated string".into(),
                        line: tl,
                        col: tc,
                    });
                }
                advance(j + 1 - i, &mut i, &mut col);
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_digit()
                || (c == '.'
                    && chars
                        .get(i + 1)
                        .map(|c| c.is_ascii_digit())
                        .unwrap_or(false)) =>
            {
                let start = i;
                let mut end = i;
                let mut seen_dot = false;
                while end < chars.len()
                    && (chars[end].is_ascii_digit() || (chars[end] == '.' && !seen_dot))
                {
                    if chars[end] == '.' {
                        // Only treat as decimal point if a digit follows.
                        if !chars
                            .get(end + 1)
                            .map(|c| c.is_ascii_digit())
                            .unwrap_or(false)
                        {
                            break;
                        }
                        seen_dot = true;
                    }
                    end += 1;
                }
                let text: String = chars[start..end].iter().collect();
                let n: f64 = text.parse().map_err(|_| LexError {
                    msg: format!("bad number `{text}`"),
                    line: tl,
                    col: tc,
                })?;
                advance(end - i, &mut i, &mut col);
                out.push(Token {
                    kind: TokenKind::Number(n),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i;
                while end < chars.len() && ident_char(chars[end]) {
                    end += 1;
                }
                let name: String = chars[start..end].iter().collect();
                advance(end - i, &mut i, &mut col);
                out.push(Token {
                    kind: TokenKind::Ident(name),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(LexError {
                    msg: format!("unexpected character `{other}`"),
                    line: tl,
                    col: tc,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_assignment() {
        assert_eq!(
            kinds("$X = merge($A, $B, Average);"),
            vec![
                TokenKind::Var("X".into()),
                TokenKind::Eq,
                TokenKind::Ident("merge".into()),
                TokenKind::LParen,
                TokenKind::Var("A".into()),
                TokenKind::Comma,
                TokenKind::Var("B".into()),
                TokenKind::Comma,
                TokenKind::Ident("Average".into()),
                TokenKind::RParen,
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn dotted_refs_and_numbers() {
        assert_eq!(
            kinds("attrMatch(DBLP.Author, 0.5)"),
            vec![
                TokenKind::Ident("attrMatch".into()),
                TokenKind::LParen,
                TokenKind::Ident("DBLP".into()),
                TokenKind::Dot,
                TokenKind::Ident("Author".into()),
                TokenKind::Comma,
                TokenKind::Number(0.5),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""[domain.id]<>[range.id]" "a\"b""#),
            vec![
                TokenKind::Str("[domain.id]<>[range.id]".into()),
                TokenKind::Str("a\"b".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(kinds("# full line\n$X = 1; // trailing\n$Y = 2;").len(), 8);
    }

    #[test]
    fn integer_then_dot() {
        // `1.` followed by non-digit: number then Dot token.
        assert_eq!(
            kinds("bestN(2)"),
            vec![
                TokenKind::Ident("bestN".into()),
                TokenKind::LParen,
                TokenKind::Number(2.0),
                TokenKind::RParen
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("$X = @;").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 6);
        let err = lex("\n  \"unterminated").unwrap_err();
        assert_eq!(err.line, 2);
        let err = lex("$ = 1;").unwrap_err();
        assert!(err.msg.contains("variable name"));
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("$A = 1;\n$B = 2;").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Var("B".into()))
            .unwrap();
        assert_eq!(b.line, 2);
        assert_eq!(b.col, 1);
    }
}
