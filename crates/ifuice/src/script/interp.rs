//! Interpreter for the iFuice script language.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use moma_core::exec::Parallelism;
use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma_core::ops::compose::{compose_with, PathAgg, PathCombine};
use moma_core::ops::merge::{merge, MergeFn, MissingPolicy};
use moma_core::ops::select::{select, select_constraint, Selection, Side};
use moma_core::ops::setops;
use moma_core::{CoreError, Mapping, MappingRepository};
use moma_model::{AttrValue, LdsId, SourceRegistry};
use moma_simstring::SimFn;

use super::ast::{Expr, Script, Stmt};
use super::parser::ParseError;
use crate::source::{DataSource, InMemorySource};

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// An instance mapping.
    Mapping(Arc<Mapping>),
    /// A logical source handle.
    Source(LdsId),
    /// A set of instances of one source.
    Instances {
        /// The owning source.
        lds: LdsId,
        /// Instance indexes.
        ids: Vec<u32>,
    },
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// A bare symbol, e.g. `Min`.
    Sym(String),
    /// A selection object (from `threshold(...)`, `bestN(...)`, …).
    Selection(Selection),
    /// No value.
    Unit,
}

impl Value {
    /// The mapping inside, if any.
    pub fn as_mapping(&self) -> Option<&Mapping> {
        match self {
            Value::Mapping(m) => Some(m),
            _ => None,
        }
    }

    /// The number inside, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The instance set inside, or a typed [`ScriptError::Type`] naming
    /// the mismatch — so callers surface a diagnostic instead of
    /// panicking on an unexpected value shape.
    pub fn expect_instances(&self, context: &str) -> Result<(LdsId, &[u32]), ScriptError> {
        match self {
            Value::Instances { lds, ids } => Ok((*lds, ids)),
            other => Err(ScriptError::Type {
                context: context.to_owned(),
                expected: "instances",
                got: other.type_name(),
            }),
        }
    }

    /// The type label used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Mapping(_) => "mapping",
            Value::Source(_) => "source",
            Value::Instances { .. } => "instances",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Sym(_) => "symbol",
            Value::Selection(_) => "selection",
            Value::Unit => "unit",
        }
    }
}

/// Script execution error.
#[derive(Debug)]
pub enum ScriptError {
    /// Parse-phase failure.
    Parse(ParseError),
    /// Runtime failure with message.
    Runtime(String),
    /// A builtin received a value of the wrong type — the script is
    /// malformed; the diagnostic names the call site and both types.
    Type {
        /// The builtin or call site, e.g. `"traverse"`.
        context: String,
        /// The type the builtin needs, e.g. `"instances"`.
        expected: &'static str,
        /// The type it received.
        got: &'static str,
    },
    /// Propagated core error.
    Core(CoreError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse(e) => write!(f, "{e}"),
            ScriptError::Runtime(msg) => write!(f, "script runtime error: {msg}"),
            ScriptError::Type {
                context,
                expected,
                got,
            } => write!(
                f,
                "script type error: `{context}` expects {expected}, got {got}"
            ),
            ScriptError::Core(e) => write!(f, "script runtime error: {e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<ParseError> for ScriptError {
    fn from(e: ParseError) -> Self {
        ScriptError::Parse(e)
    }
}

impl From<CoreError> for ScriptError {
    fn from(e: CoreError) -> Self {
        ScriptError::Core(e)
    }
}

impl From<moma_model::ModelError> for ScriptError {
    fn from(e: moma_model::ModelError) -> Self {
        ScriptError::Core(CoreError::Model(e))
    }
}

fn rt(msg: impl Into<String>) -> ScriptError {
    ScriptError::Runtime(msg.into())
}

type Procedure = (Vec<String>, Vec<Stmt>);

/// The interpreter: variables, procedures and the execution environment.
pub struct Interpreter<'a> {
    registry: &'a SourceRegistry,
    repository: &'a MappingRepository,
    vars: HashMap<String, Value>,
    procs: HashMap<String, Procedure>,
    parallelism: Parallelism,
    /// Candidate-generation override for `attrMatch`/`multiAttrMatch`;
    /// `None` picks per-measure ([`moma_core::blocking::Blocking::auto_for`]).
    blocking: Option<moma_core::blocking::Blocking>,
}

enum Flow {
    Normal(Value),
    Return(Value),
}

impl<'a> Interpreter<'a> {
    /// New interpreter over a registry and repository. Matchers and the
    /// compose builtin execute with [`Parallelism::from_env`]
    /// (`MOMA_THREADS` or one thread per CPU) unless overridden with
    /// [`with_parallelism`](Self::with_parallelism).
    pub fn new(registry: &'a SourceRegistry, repository: &'a MappingRepository) -> Self {
        Self {
            registry,
            repository,
            vars: HashMap::new(),
            procs: HashMap::new(),
            parallelism: Parallelism::from_env(),
            blocking: None,
        }
    }

    /// Override the parallel-execution configuration (builder style).
    /// Results are identical at every thread count.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Pin one candidate-generation strategy for every
    /// `attrMatch`/`multiAttrMatch` in the script (builder style; the
    /// CLI's `--blocking` flag). Default: per-measure auto-selection —
    /// threshold-exact for q-gram measures, prefix-filtered otherwise.
    pub fn with_blocking(mut self, blocking: moma_core::blocking::Blocking) -> Self {
        self.blocking = Some(blocking);
        self
    }

    /// Pre-bind a variable (e.g. inputs computed in Rust).
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Run a script; returns the `RETURN` value or the last statement's
    /// value.
    pub fn run(&mut self, script: &Script) -> Result<Value, ScriptError> {
        match self.exec_block(&script.stmts)? {
            Flow::Normal(v) | Flow::Return(v) => Ok(v),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, ScriptError> {
        let mut last = Value::Unit;
        for stmt in stmts {
            match stmt {
                Stmt::Assign { var, expr } => {
                    let v = self.eval(expr)?;
                    self.vars.insert(var.clone(), v.clone());
                    last = v;
                }
                Stmt::Return(expr) => {
                    let v = self.eval(expr)?;
                    return Ok(Flow::Return(v));
                }
                Stmt::Expr(expr) => {
                    last = self.eval(expr)?;
                }
                Stmt::Procedure { name, params, body } => {
                    self.procs
                        .insert(name.clone(), (params.clone(), body.clone()));
                }
            }
        }
        Ok(Flow::Normal(last))
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, ScriptError> {
        match expr {
            Expr::Var(name) => self
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| rt(format!("undefined variable `${name}`"))),
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Sym(s) => Ok(Value::Sym(s.clone())),
            Expr::Ref(pds, member) => self.resolve_ref(pds, member),
            Expr::Call { name, args } => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<_, _>>()?;
                self.call(name, argv)
            }
        }
    }

    /// `DBLP.CoAuthor`: repository mapping `DBLP.CoAuthor` if present,
    /// else logical source `CoAuthor@DBLP`.
    fn resolve_ref(&self, pds: &str, member: &str) -> Result<Value, ScriptError> {
        let repo_key = format!("{pds}.{member}");
        if let Some(m) = self.repository.get(&repo_key) {
            return Ok(Value::Mapping(m));
        }
        let lds_name = format!("{member}@{pds}");
        if let Ok(id) = self.registry.resolve(&lds_name) {
            return Ok(Value::Source(id));
        }
        Err(rt(format!(
            "`{repo_key}` is neither a repository mapping nor a source `{lds_name}`"
        )))
    }

    fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Value, ScriptError> {
        // User-defined procedures shadow builtins (the paper defines
        // nhMatch as a procedure; scripts may bring their own).
        if let Some((params, body)) = self.procs.get(name).cloned() {
            if params.len() != args.len() {
                return Err(rt(format!(
                    "procedure `{name}` expects {} arguments, got {}",
                    params.len(),
                    args.len()
                )));
            }
            let saved = std::mem::take(&mut self.vars);
            for (p, v) in params.iter().zip(args) {
                self.vars.insert(p.clone(), v);
            }
            let flow = self.exec_block(&body);
            self.vars = saved;
            return match flow? {
                Flow::Normal(v) | Flow::Return(v) => Ok(v),
            };
        }
        match name {
            "attrMatch" => self.builtin_attr_match(args),
            "multiAttrMatch" => self.builtin_multi_attr_match(args),
            "merge" => self.builtin_merge(args),
            "compose" => self.builtin_compose(args),
            "nhMatch" => self.builtin_nh_match(args),
            "select" => self.builtin_select(args),
            "threshold" => {
                let t = self.num_arg(&args, 0, "threshold")?;
                Ok(Value::Selection(Selection::Threshold(t)))
            }
            "bestN" => {
                let n = self.num_arg(&args, 0, "bestN")? as usize;
                let side = match args.get(1) {
                    Some(v) => parse_side(v)?,
                    None => Side::Domain,
                };
                Ok(Value::Selection(Selection::BestN { n, side }))
            }
            "best1delta" => {
                let d = self.num_arg(&args, 0, "best1delta")?;
                let relative = match args.get(1) {
                    Some(Value::Str(s)) | Some(Value::Sym(s)) => s.eq_ignore_ascii_case("rel"),
                    None => false,
                    Some(v) => {
                        return Err(rt(format!(
                            "best1delta mode must be abs/rel, got {}",
                            v.type_name()
                        )))
                    }
                };
                let side = match args.get(2) {
                    Some(v) => parse_side(v)?,
                    None => Side::Domain,
                };
                Ok(Value::Selection(Selection::Best1Delta {
                    delta: d,
                    relative,
                    side,
                }))
            }
            "inverse" => {
                let m = self.mapping_arg(&args, 0, "inverse")?;
                Ok(Value::Mapping(Arc::new(m.inverse())))
            }
            "identity" => {
                let lds = self.source_arg(&args, 0, "identity")?;
                let count = self.registry.lds(lds).len() as u32;
                Ok(Value::Mapping(Arc::new(Mapping::identity(lds, count))))
            }
            "union" | "intersect" | "diff" => {
                let a = self.mapping_arg(&args, 0, name)?;
                let b = self.mapping_arg(&args, 1, name)?;
                let r = match name {
                    "union" => setops::union(&a, &b)?,
                    "intersect" => setops::intersection(&a, &b)?,
                    _ => setops::difference(&a, &b)?,
                };
                Ok(Value::Mapping(Arc::new(r)))
            }
            "query" => {
                let lds = self.source_arg(&args, 0, "query")?;
                let keywords = match args.get(1) {
                    Some(Value::Str(s)) => s.clone(),
                    _ => return Err(rt("query needs a keyword string")),
                };
                let src = InMemorySource::downloadable(lds);
                let ids = src.query(self.registry, &keywords);
                Ok(Value::Instances { lds, ids })
            }
            "traverse" => {
                let m = self.mapping_arg(&args, 0, "traverse")?;
                let (_, ids) = args
                    .get(1)
                    .ok_or_else(|| rt("`traverse` missing instance-set argument 1"))?
                    .expect_instances("traverse")?;
                let reached = crate::ops::traverse(&m, ids);
                Ok(Value::Instances {
                    lds: m.range,
                    ids: reached,
                })
            }
            "store" => {
                let m = self.mapping_arg(&args, 0, "store")?;
                let name = match args.get(1) {
                    Some(Value::Str(s)) => s.clone(),
                    _ => return Err(rt("store needs a name string")),
                };
                self.repository.store_as(name, (*m).clone());
                Ok(Value::Unit)
            }
            "get" => {
                let name = match args.first() {
                    Some(Value::Str(s)) => s.clone(),
                    _ => return Err(rt("get needs a name string")),
                };
                let m = self
                    .repository
                    .get(&name)
                    .ok_or_else(|| rt(format!("no repository mapping `{name}`")))?;
                Ok(Value::Mapping(m))
            }
            other => Err(rt(format!("unknown function `{other}`"))),
        }
    }

    fn num_arg(&self, args: &[Value], i: usize, ctx: &str) -> Result<f64, ScriptError> {
        args.get(i)
            .and_then(|v| v.as_num())
            .ok_or_else(|| rt(format!("`{ctx}` expects a number at position {i}")))
    }

    fn mapping_arg(
        &self,
        args: &[Value],
        i: usize,
        ctx: &str,
    ) -> Result<Arc<Mapping>, ScriptError> {
        match args.get(i) {
            Some(Value::Mapping(m)) => Ok(Arc::clone(m)),
            Some(v) => Err(ScriptError::Type {
                context: format!("{ctx} (argument {i})"),
                expected: "mapping",
                got: v.type_name(),
            }),
            None => Err(rt(format!("`{ctx}` missing mapping argument {i}"))),
        }
    }

    fn source_arg(&self, args: &[Value], i: usize, ctx: &str) -> Result<LdsId, ScriptError> {
        match args.get(i) {
            Some(Value::Source(id)) => Ok(*id),
            Some(v) => Err(ScriptError::Type {
                context: format!("{ctx} (argument {i})"),
                expected: "source",
                got: v.type_name(),
            }),
            None => Err(rt(format!("`{ctx}` missing source argument {i}"))),
        }
    }

    /// `attrMatch(Source1, Source2, SimFn, threshold, "[attr1]", "[attr2]")`
    ///
    /// `SimFn` may also be `TfIdf` for the corpus-based cosine measure.
    /// Matching uses threshold-exact blocking for q-gram measures and
    /// TF-IDF (results identical to all-pairs, candidates pruned before
    /// scoring); other measures use the lossy prefix filter.
    fn builtin_attr_match(&mut self, args: Vec<Value>) -> Result<Value, ScriptError> {
        let domain = self.source_arg(&args, 0, "attrMatch")?;
        let range = self.source_arg(&args, 1, "attrMatch")?;
        let threshold = self.num_arg(&args, 3, "attrMatch")?;
        let attr = |i: usize| -> Result<String, ScriptError> {
            match args.get(i) {
                Some(Value::Str(s)) => Ok(s.trim_matches(['[', ']']).to_owned()),
                _ => Err(rt("attrMatch expects \"[attr]\" strings")),
            }
        };
        let matcher = match args.get(2) {
            Some(Value::Sym(s)) | Some(Value::Str(s)) if s.eq_ignore_ascii_case("tfidf") => {
                AttributeMatcher::tfidf(attr(4)?, attr(5)?, threshold)
            }
            Some(Value::Sym(s)) | Some(Value::Str(s)) => {
                let sim = SimFn::parse(s)
                    .ok_or_else(|| rt(format!("unknown similarity function `{s}`")))?;
                AttributeMatcher::new(attr(4)?, attr(5)?, sim, threshold)
            }
            _ => return Err(rt("attrMatch expects a similarity function symbol")),
        };
        // Pick the best blocking for the measure unless the caller
        // pinned one: threshold-exact for q-gram measures and TF-IDF
        // (identical results, pruned before scoring — TF-IDF gained an
        // exact weighted-prefix bound over its frozen match corpus), the
        // historical lossy prefix filter for the remaining non-q-gram
        // measures, whose script results are unchanged.
        let blocking = self.blocking.unwrap_or_else(|| match &matcher.sim {
            moma_core::matchers::MatcherSim::Fixed(sim) => {
                moma_core::blocking::Blocking::auto_for(sim)
            }
            moma_core::matchers::MatcherSim::TfIdf => moma_core::blocking::Blocking::Threshold,
        });
        let matcher = matcher.with_blocking(blocking);
        let ctx = MatchContext::with_repository(self.registry, self.repository)
            .with_parallelism(self.parallelism);
        let mapping = matcher.execute(&ctx, domain, range)?;
        Ok(Value::Mapping(Arc::new(mapping)))
    }

    /// `multiAttrMatch(Source1, Source2, threshold, "[a]~[b]:sim:weight", ...)`
    ///
    /// Each trailing string describes one attribute pair; the weight is
    /// optional (default 1).
    fn builtin_multi_attr_match(&mut self, args: Vec<Value>) -> Result<Value, ScriptError> {
        use moma_core::matchers::multi_attribute::{AttrPair, MultiAttributeMatcher};
        let domain = self.source_arg(&args, 0, "multiAttrMatch")?;
        let range = self.source_arg(&args, 1, "multiAttrMatch")?;
        let threshold = self.num_arg(&args, 2, "multiAttrMatch")?;
        let mut pairs = Vec::new();
        for spec in &args[3..] {
            let Value::Str(text) = spec else {
                return Err(rt(
                    "multiAttrMatch expects \"[a]~[b]:sim[:weight]\" strings",
                ));
            };
            let (attrs, rest) = text
                .split_once(':')
                .ok_or_else(|| rt(format!("bad attribute spec `{text}`")))?;
            let (da, ra) = attrs
                .split_once('~')
                .ok_or_else(|| rt(format!("bad attribute spec `{text}` (missing `~`)")))?;
            let (sim_name, weight) = match rest.rsplit_once(':') {
                Some((s, w)) => match w.parse::<f64>() {
                    Ok(weight) => (s, weight),
                    // `year:1` style parameterized sims have a colon too;
                    // if the tail is not a number, the whole rest is the
                    // sim name with weight 1.
                    Err(_) => (rest, 1.0),
                },
                None => (rest, 1.0),
            };
            let sim = SimFn::parse(sim_name)
                .ok_or_else(|| rt(format!("unknown similarity function `{sim_name}`")))?;
            pairs.push(AttrPair::new(
                da.trim_matches(['[', ']']),
                ra.trim_matches(['[', ']']),
                sim,
                weight,
            ));
        }
        if pairs.is_empty() {
            return Err(rt("multiAttrMatch needs at least one attribute spec"));
        }
        // Threshold-exact blocking when the primary measure admits exact
        // bounds (identical to all-pairs, just pruned), the historical
        // prefix filter otherwise; a caller-pinned strategy wins.
        let blocking = self
            .blocking
            .unwrap_or_else(|| moma_core::blocking::Blocking::auto_for(&pairs[0].sim));
        let matcher = MultiAttributeMatcher::new(pairs, threshold).with_blocking(blocking);
        let ctx = MatchContext::with_repository(self.registry, self.repository)
            .with_parallelism(self.parallelism);
        let mapping = matcher.execute(&ctx, domain, range)?;
        Ok(Value::Mapping(Arc::new(mapping)))
    }

    /// `merge($m1, …, $mn, Fn [, Zero])`; `Prefer` takes a 1-based index:
    /// `merge($a, $b, Prefer, 1)`.
    fn builtin_merge(&mut self, args: Vec<Value>) -> Result<Value, ScriptError> {
        let mut maps: Vec<Arc<Mapping>> = Vec::new();
        let mut rest = args.into_iter().peekable();
        while let Some(Value::Mapping(_)) = rest.peek() {
            match rest.next() {
                Some(Value::Mapping(m)) => maps.push(m),
                _ => unreachable!(),
            }
        }
        let f_sym = match rest.next() {
            Some(Value::Sym(s)) | Some(Value::Str(s)) => s,
            _ => {
                return Err(rt(
                    "merge expects a combination function after the mappings",
                ))
            }
        };
        let mut missing = MissingPolicy::Ignore;
        let f = match f_sym.to_ascii_lowercase().as_str() {
            "avg" | "average" => MergeFn::Avg,
            "min" => MergeFn::Min,
            "max" => MergeFn::Max,
            "prefer" => {
                let idx = match rest.next() {
                    Some(Value::Num(n)) => n as usize,
                    _ => return Err(rt("merge Prefer needs a 1-based mapping index")),
                };
                if idx == 0 || idx > maps.len() {
                    return Err(rt(format!("merge Prefer index {idx} out of range")));
                }
                MergeFn::Prefer(idx - 1)
            }
            other => return Err(rt(format!("unknown merge function `{other}`"))),
        };
        if let Some(Value::Sym(s)) | Some(Value::Str(s)) = rest.next() {
            if s.eq_ignore_ascii_case("zero") {
                missing = MissingPolicy::Zero;
            } else {
                return Err(rt(format!("unknown merge option `{s}`")));
            }
        }
        let refs: Vec<&Mapping> = maps.iter().map(|m| m.as_ref()).collect();
        Ok(Value::Mapping(Arc::new(merge(&refs, f, missing)?)))
    }

    /// `compose($m1, $m2, F, G)`
    fn builtin_compose(&mut self, args: Vec<Value>) -> Result<Value, ScriptError> {
        let m1 = self.mapping_arg(&args, 0, "compose")?;
        let m2 = self.mapping_arg(&args, 1, "compose")?;
        let f = match args.get(2) {
            Some(Value::Sym(s)) | Some(Value::Str(s)) => parse_path_combine(s)?,
            _ => PathCombine::Min,
        };
        let g = match args.get(3) {
            Some(Value::Sym(s)) | Some(Value::Str(s)) => parse_path_agg(s)?,
            _ => PathAgg::Avg,
        };
        // Same parallelism the interpreter's match contexts use; the
        // parallel join is bit-identical to the sequential one.
        Ok(Value::Mapping(Arc::new(compose_with(
            &m1,
            &m2,
            f,
            g,
            &self.parallelism,
        )?)))
    }

    /// `nhMatch($asso1, $same, $asso2 [, G])` builtin (used when the
    /// script has not defined its own procedure).
    fn builtin_nh_match(&mut self, args: Vec<Value>) -> Result<Value, ScriptError> {
        let a1 = self.mapping_arg(&args, 0, "nhMatch")?;
        let same = self.mapping_arg(&args, 1, "nhMatch")?;
        let a2 = self.mapping_arg(&args, 2, "nhMatch")?;
        let g = match args.get(3) {
            Some(Value::Sym(s)) | Some(Value::Str(s)) => parse_path_agg(s)?,
            None => PathAgg::Relative,
            Some(v) => {
                return Err(rt(format!(
                    "nhMatch aggregation must be a symbol, got {}",
                    v.type_name()
                )))
            }
        };
        let r = moma_core::matchers::neighborhood::nh_match(&a1, &same, &a2, g)?;
        Ok(Value::Mapping(Arc::new(r)))
    }

    /// `select($m, selection-or-constraint-string)`
    fn builtin_select(&mut self, args: Vec<Value>) -> Result<Value, ScriptError> {
        let m = self.mapping_arg(&args, 0, "select")?;
        match args.get(1) {
            Some(Value::Selection(sel)) => Ok(Value::Mapping(Arc::new(select(&m, sel)))),
            Some(Value::Num(t)) => Ok(Value::Mapping(Arc::new(select(
                &m,
                &Selection::Threshold(*t),
            )))),
            Some(Value::Str(constraint)) => {
                let r = self.apply_constraint(&m, constraint)?;
                Ok(Value::Mapping(Arc::new(r)))
            }
            _ => Err(rt(
                "select expects a selection, number, or constraint string",
            )),
        }
    }

    /// Object-value constraints:
    /// * `[domain.id]<>[range.id]` / `[domain.id]=[range.id]`
    /// * `|[domain.attr]-[range.attr]|<=N` (numeric tolerance, e.g. the
    ///   paper's ±1 publication-year constraint)
    fn apply_constraint(&self, m: &Mapping, text: &str) -> Result<Mapping, ScriptError> {
        let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        let d_lds = self.registry.lds(m.domain);
        let r_lds = self.registry.lds(m.range);

        if let Some(rest) = compact.strip_prefix("[domain.id]") {
            let (op, rhs) = if let Some(r) = rest.strip_prefix("<>") {
                ("<>", r)
            } else if let Some(r) = rest.strip_prefix('=') {
                ("=", r)
            } else {
                return Err(rt(format!("unsupported constraint `{text}`")));
            };
            if rhs != "[range.id]" {
                return Err(rt(format!("unsupported constraint `{text}`")));
            }
            let keep_equal = op == "=";
            let same_source = m.domain == m.range;
            return Ok(select_constraint(m, |d, r, _| {
                let equal = if same_source {
                    d == r
                } else {
                    d_lds.get(d).map(|i| i.id.as_str()) == r_lds.get(r).map(|i| i.id.as_str())
                };
                equal == keep_equal
            }));
        }

        // |[domain.attr]-[range.attr]|<=N
        if let Some(rest) = compact.strip_prefix("|[domain.") {
            let (d_attr, rest) = rest
                .split_once("]-[range.")
                .ok_or_else(|| rt(format!("unsupported constraint `{text}`")))?;
            let (r_attr, rest) = rest
                .split_once("]|<=")
                .ok_or_else(|| rt(format!("unsupported constraint `{text}`")))?;
            let tol: f64 = rest
                .parse()
                .map_err(|_| rt(format!("bad tolerance in constraint `{text}`")))?;
            let d_slot = d_lds.attr_slot(d_attr)?;
            let r_slot = r_lds.attr_slot(r_attr)?;
            let num = |v: Option<&AttrValue>| -> Option<f64> {
                match v {
                    Some(AttrValue::Int(i)) => Some(*i as f64),
                    Some(AttrValue::Year(y)) => Some(*y as f64),
                    Some(AttrValue::Real(r)) => Some(*r),
                    _ => None,
                }
            };
            return Ok(select_constraint(m, |d, r, _| {
                let dv = num(d_lds.get(d).and_then(|i| i.value(d_slot)));
                let rv = num(r_lds.get(r).and_then(|i| i.value(r_slot)));
                match (dv, rv) {
                    (Some(a), Some(b)) => (a - b).abs() <= tol,
                    // Missing values pass (they cannot violate the bound).
                    _ => true,
                }
            }));
        }
        Err(rt(format!("unsupported constraint `{text}`")))
    }
}

fn parse_side(v: &Value) -> Result<Side, ScriptError> {
    match v {
        Value::Str(s) | Value::Sym(s) => match s.to_ascii_lowercase().as_str() {
            "domain" => Ok(Side::Domain),
            "range" => Ok(Side::Range),
            "both" => Ok(Side::Both),
            other => Err(rt(format!("unknown side `{other}`"))),
        },
        other => Err(rt(format!(
            "side must be a symbol, got {}",
            other.type_name()
        ))),
    }
}

fn parse_path_combine(s: &str) -> Result<PathCombine, ScriptError> {
    match s.to_ascii_lowercase().as_str() {
        "avg" | "average" => Ok(PathCombine::Avg),
        "min" => Ok(PathCombine::Min),
        "max" => Ok(PathCombine::Max),
        "product" => Ok(PathCombine::Product),
        other => Err(rt(format!("unknown path combine function `{other}`"))),
    }
}

fn parse_path_agg(s: &str) -> Result<PathAgg, ScriptError> {
    match s.to_ascii_lowercase().as_str() {
        "avg" | "average" => Ok(PathAgg::Avg),
        "min" => Ok(PathAgg::Min),
        "max" => Ok(PathAgg::Max),
        "relative" => Ok(PathAgg::Relative),
        "relativeleft" => Ok(PathAgg::RelativeLeft),
        "relativeright" => Ok(PathAgg::RelativeRight),
        other => Err(rt(format!("unknown aggregation function `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::parser::parse;
    use moma_model::{AttrDef, LogicalSource, ObjectType};
    use moma_table::MappingTable;

    /// Registry with a small DBLP author source (incl. a duplicate) and a
    /// repository holding the co-author association + identity mapping as
    /// the paper's Section 4.3 script expects.
    fn setup() -> (SourceRegistry, MappingRepository) {
        let mut reg = SourceRegistry::new();
        let mut authors = LogicalSource::new(
            "DBLP",
            ObjectType::new("Author"),
            vec![AttrDef::text("name")],
        );
        // 0/1 are duplicates sharing co-authors 2 and 3; 4 unrelated.
        for (id, name) in [
            ("a0", "Agathoniki Trigoni"),
            ("a1", "Niki Trigoni"),
            ("a2", "Alan Smith"),
            ("a3", "Beth Jones"),
            ("a4", "Carl Unrelated"),
        ] {
            authors
                .insert_record(id, vec![("name", name.into())])
                .unwrap();
        }
        let lds = reg.register(authors).unwrap();
        let repo = MappingRepository::new();
        repo.store_as(
            "DBLP.CoAuthor",
            Mapping::association(
                "DBLP.CoAuthor",
                "co-authors",
                lds,
                lds,
                MappingTable::from_triples([
                    (0, 2, 1.0),
                    (0, 3, 1.0),
                    (1, 2, 1.0),
                    (1, 3, 1.0),
                    (2, 0, 1.0),
                    (2, 1, 1.0),
                    (3, 0, 1.0),
                    (3, 1, 1.0),
                    (4, 2, 1.0),
                    (2, 4, 1.0),
                ]),
            ),
        );
        repo.store_as("DBLP.AuthorAuthor", Mapping::identity(lds, 5));
        (reg, repo)
    }

    #[test]
    fn paper_section_4_3_script_runs() {
        let (reg, repo) = setup();
        let script = parse(
            r#"
            $CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);
            $NameSim = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]");
            $Merged = merge($CoAuthSim, $NameSim, Average);
            $Result = select($Merged, "[domain.id]<>[range.id]");
            RETURN $Result;
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(&reg, &repo);
        let result = interp.run(&script).unwrap();
        let m = result.as_mapping().unwrap();
        // No trivial self-correspondences.
        assert!(m.table.iter().all(|c| c.domain != c.range));
        // The Trigoni duplicate pair surfaces with a solid merged score.
        let s = m.table.sim_of(0, 1).unwrap();
        assert!(s > 0.5, "duplicate pair scored {s}");
        // Unrelated author scores lower (or is absent).
        let s4 = m.table.sim_of(0, 4).unwrap_or(0.0);
        assert!(s4 < s);
    }

    #[test]
    fn user_procedure_shadows_builtin() {
        let (reg, repo) = setup();
        // Paper Section 4.2 procedure — identical semantics to the
        // builtin; defining it must not break anything.
        let script = parse(
            r#"
            PROCEDURE nhMatch ( $Asso1, $Same, $Asso2)
               $Temp = compose ( $Asso1 , $Same , Min, Average )
               $Result = compose ( $Temp , $Asso2 , Min, Relative )
               RETURN $Result
            END
            $Sim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);
            RETURN $Sim;
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(&reg, &repo);
        let via_proc = interp.run(&script).unwrap();

        let script2 =
            parse("RETURN nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);").unwrap();
        let mut interp2 = Interpreter::new(&reg, &repo);
        let via_builtin = interp2.run(&script2).unwrap();

        let (a, b) = (
            via_proc.as_mapping().unwrap(),
            via_builtin.as_mapping().unwrap(),
        );
        assert_eq!(a.table.pair_set(), b.table.pair_set());
        for c in a.table.iter() {
            let s = b.table.sim_of(c.domain, c.range).unwrap();
            assert!((s - c.sim).abs() < 1e-12);
        }
    }

    #[test]
    fn selection_builders() {
        let (reg, repo) = setup();
        repo.store_as(
            "M",
            Mapping::same(
                "M",
                LdsId(0),
                LdsId(0),
                MappingTable::from_triples([(0, 1, 0.9), (0, 2, 0.5), (1, 2, 0.7)]),
            ),
        );
        let run = |src: &str| {
            let script = parse(src).unwrap();
            Interpreter::new(&reg, &repo).run(&script).unwrap()
        };
        let v = run(r#"RETURN select(get("M"), threshold(0.8));"#);
        assert_eq!(v.as_mapping().unwrap().len(), 1);
        let v = run(r#"RETURN select(get("M"), bestN(1, domain));"#);
        assert_eq!(v.as_mapping().unwrap().len(), 2);
        let v = run(r#"RETURN select(get("M"), best1delta(0.4, abs, domain));"#);
        assert_eq!(v.as_mapping().unwrap().len(), 3);
        let v = run(r#"RETURN select(get("M"), 0.6);"#);
        assert_eq!(v.as_mapping().unwrap().len(), 2);
    }

    #[test]
    fn store_get_inverse_identity_setops() {
        let (reg, repo) = setup();
        let script = parse(
            r#"
            $Id = identity(DBLP.Author);
            store($Id, "stored");
            $Back = get("stored");
            $Inv = inverse($Back);
            $U = union($Back, $Inv);
            $I = intersect($Back, $Inv);
            $D = diff($U, $I);
            RETURN $D;
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(&reg, &repo);
        let v = interp.run(&script).unwrap();
        // Identity is symmetric: union == intersection -> empty diff.
        assert!(v.as_mapping().unwrap().is_empty());
        assert!(repo.contains("stored"));
    }

    #[test]
    fn query_and_traverse() {
        let (reg, repo) = setup();
        let script = parse(
            r#"
            $Hits = query(DBLP.Author, "trigoni");
            $Co = traverse(get("DBLP.CoAuthor"), $Hits);
            RETURN $Co;
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(&reg, &repo);
        let v = interp.run(&script).unwrap();
        let (_, ids) = v.expect_instances("query_and_traverse test").unwrap();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn malformed_script_yields_typed_error_not_panic() {
        // Regression: handing `traverse` a mapping where instances are
        // required must fail with a ScriptError::Type diagnostic, not
        // abort the process.
        let (reg, repo) = setup();
        let script = parse(r#"RETURN traverse(DBLP.CoAuthor, DBLP.CoAuthor);"#).unwrap();
        let err = Interpreter::new(&reg, &repo).run(&script).unwrap_err();
        match &err {
            ScriptError::Type {
                context,
                expected,
                got,
            } => {
                assert_eq!(*expected, "instances");
                assert_eq!(*got, "mapping");
                assert!(context.contains("traverse"));
            }
            other => panic!("expected ScriptError::Type, got {other:?}"),
        }
        assert!(err.to_string().contains("expects instances, got mapping"));

        // Same for mapping- and source-typed arguments.
        let script = parse(r#"RETURN inverse(42);"#).unwrap();
        let err = Interpreter::new(&reg, &repo).run(&script).unwrap_err();
        assert!(matches!(
            err,
            ScriptError::Type {
                expected: "mapping",
                got: "number",
                ..
            }
        ));
        let script = parse(r#"RETURN identity(DBLP.CoAuthor);"#).unwrap();
        let err = Interpreter::new(&reg, &repo).run(&script).unwrap_err();
        assert!(matches!(
            err,
            ScriptError::Type {
                expected: "source",
                got: "mapping",
                ..
            }
        ));
    }

    #[test]
    fn year_tolerance_constraint() {
        let mut reg = SourceRegistry::new();
        let mut pubs = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::year("year")],
        );
        pubs.insert_record("p0", vec![("year", 2001u16.into())])
            .unwrap();
        pubs.insert_record("p1", vec![("year", 2002u16.into())])
            .unwrap();
        pubs.insert_record("p2", vec![("year", 2005u16.into())])
            .unwrap();
        pubs.insert_record("p3", vec![]).unwrap();
        let lds = reg.register(pubs).unwrap();
        let repo = MappingRepository::new();
        repo.store_as(
            "M",
            Mapping::same(
                "M",
                lds,
                lds,
                MappingTable::from_triples([
                    (0, 1, 0.9), // Δyear 1 -> keep
                    (0, 2, 0.9), // Δyear 4 -> drop
                    (0, 3, 0.9), // missing year -> keep
                ]),
            ),
        );
        let script =
            parse(r#"RETURN select(get("M"), "|[domain.year]-[range.year]|<=1");"#).unwrap();
        let v = Interpreter::new(&reg, &repo).run(&script).unwrap();
        let m = v.as_mapping().unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.table.sim_of(0, 2).is_none());
    }

    #[test]
    fn runtime_errors() {
        let (reg, repo) = setup();
        let run_err = |src: &str| {
            let script = parse(src).unwrap();
            Interpreter::new(&reg, &repo)
                .run(&script)
                .unwrap_err()
                .to_string()
        };
        assert!(run_err("RETURN $missing;").contains("undefined variable"));
        assert!(run_err("RETURN frobnicate(1);").contains("unknown function"));
        assert!(run_err("RETURN DBLP.Nothing;").contains("neither"));
        assert!(run_err(r#"RETURN merge(get("DBLP.CoAuthor"), Bogus);"#).contains("unknown merge"));
        assert!(
            run_err(r#"RETURN select(get("DBLP.CoAuthor"), "[weird]");"#)
                .contains("unsupported constraint")
        );
        assert!(run_err(
            "RETURN attrMatch(DBLP.Author, DBLP.Author, NoSuchSim, 0.5, \"[name]\", \"[name]\");"
        )
        .contains("unknown similarity"));
    }

    #[test]
    fn prebound_variables() {
        let (reg, repo) = setup();
        let mut interp = Interpreter::new(&reg, &repo);
        interp.bind("X", Value::Num(0.75));
        let script = parse("RETURN $X;").unwrap();
        assert_eq!(interp.run(&script).unwrap().as_num(), Some(0.75));
    }

    #[test]
    fn multi_attr_match_in_script() {
        let mut reg = SourceRegistry::new();
        let mut pubs = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        pubs.insert_record(
            "p0",
            vec![("title", "Same Title".into()), ("year", 2001u16.into())],
        )
        .unwrap();
        pubs.insert_record(
            "p1",
            vec![("title", "Same Title".into()), ("year", 2003u16.into())],
        )
        .unwrap();
        let _ = reg.register(pubs).unwrap();
        let repo = MappingRepository::new();
        // Title alone cannot separate p0 from p1; adding the year feature
        // demotes the cross pairs below the threshold.
        let script = parse(
            r#"RETURN multiAttrMatch(DBLP.Publication, DBLP.Publication, 0.8,
                   "[title]~[title]:trigram:2", "[year]~[year]:year:1");"#,
        )
        .unwrap();
        let v = Interpreter::new(&reg, &repo).run(&script).unwrap();
        let m = v.as_mapping().unwrap();
        assert_eq!(m.table.sim_of(0, 0), Some(1.0));
        assert_eq!(m.table.sim_of(1, 1), Some(1.0));
        assert_eq!(m.table.sim_of(0, 1), None);
    }

    #[test]
    fn tfidf_attr_match_in_script() {
        let (reg, repo) = setup();
        let script = parse(
            r#"RETURN attrMatch(DBLP.Author, DBLP.Author, TfIdf, 0.95, "[name]", "[name]");"#,
        )
        .unwrap();
        let v = Interpreter::new(&reg, &repo).run(&script).unwrap();
        let m = v.as_mapping().unwrap();
        // Every author matches itself under TF-IDF cosine.
        for i in 0..5u32 {
            assert!(m.table.sim_of(i, i).unwrap() > 0.99);
        }
    }

    #[test]
    fn prefer_merge_in_script() {
        let (reg, repo) = setup();
        repo.store_as(
            "A",
            Mapping::same(
                "A",
                LdsId(0),
                LdsId(0),
                MappingTable::from_triples([(0, 1, 1.0)]),
            ),
        );
        repo.store_as(
            "B",
            Mapping::same(
                "B",
                LdsId(0),
                LdsId(0),
                MappingTable::from_triples([(0, 2, 0.9), (3, 3, 0.8)]),
            ),
        );
        let script = parse(r#"RETURN merge(get("A"), get("B"), Prefer, 1);"#).unwrap();
        let v = Interpreter::new(&reg, &repo).run(&script).unwrap();
        let m = v.as_mapping().unwrap();
        assert_eq!(m.table.sim_of(0, 1), Some(1.0));
        assert_eq!(m.table.sim_of(0, 2), None); // 0 covered by preferred
        assert_eq!(m.table.sim_of(3, 3), Some(0.8));
    }
}
