//! Abstract syntax tree of the iFuice script language.

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference `$X`.
    Var(String),
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Bare symbol, e.g. `Min`, `Average`, `Trigram`.
    Sym(String),
    /// Qualified reference `DBLP.CoAuthor` — a repository mapping or a
    /// logical source, resolved at runtime.
    Ref(String, String),
    /// Function / procedure call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `$X = expr;`
    Assign {
        /// Target variable.
        var: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `RETURN expr;`
    Return(Expr),
    /// Bare expression statement.
    Expr(Expr),
    /// `PROCEDURE name($a, $b) … END`
    Procedure {
        /// Procedure name.
        name: String,
        /// Parameter names (without `$`).
        params: Vec<String>,
        /// Body statements.
        body: Vec<Stmt>,
    },
}

/// A parsed script.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}
