//! Recursive-descent parser for the iFuice script language.

use std::fmt;

use super::ast::{Expr, Script, Stmt};
use super::lexer::{lex, LexError, Token, TokenKind};

/// A parse error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub msg: String,
    /// 1-based line (0 if end of input).
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error at end of input: {}", self.msg)
        } else {
            write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse a full script.
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
    }
    Ok(Script { stmts })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(t) => ParseError {
                msg: msg.into(),
                line: t.line,
                col: t.col,
            },
            None => ParseError {
                msg: msg.into(),
                line: 0,
                col: 0,
            },
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected `{kind}`, found `{}`", t.kind))),
            None => Err(self.error(format!("expected `{kind}`, found end of input"))),
        }
    }

    /// Optional semicolon (the paper's listings omit them).
    fn opt_semi(&mut self) {
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Semi)) {
            self.pos += 1;
        }
    }

    fn is_keyword(t: Option<&Token>, kw: &str) -> bool {
        matches!(t, Some(Token { kind: TokenKind::Ident(s), .. }) if s.eq_ignore_ascii_case(kw))
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if Self::is_keyword(self.peek(), "PROCEDURE") {
            return self.procedure();
        }
        if Self::is_keyword(self.peek(), "RETURN") {
            self.pos += 1;
            let expr = self.expr()?;
            self.opt_semi();
            return Ok(Stmt::Return(expr));
        }
        if let Some(Token {
            kind: TokenKind::Var(name),
            ..
        }) = self.peek().cloned()
        {
            // Lookahead for `=` to distinguish assignment from bare var.
            if matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Eq)
            ) {
                self.pos += 2;
                let expr = self.expr()?;
                self.opt_semi();
                return Ok(Stmt::Assign { var: name, expr });
            }
        }
        let expr = self.expr()?;
        self.opt_semi();
        Ok(Stmt::Expr(expr))
    }

    fn procedure(&mut self) -> Result<Stmt, ParseError> {
        self.pos += 1; // PROCEDURE
        let name = match self.next() {
            Some(Token {
                kind: TokenKind::Ident(n),
                ..
            }) => n,
            _ => return Err(self.error("expected procedure name")),
        };
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek().map(|t| &t.kind), Some(TokenKind::RParen)) {
            loop {
                match self.next() {
                    Some(Token {
                        kind: TokenKind::Var(p),
                        ..
                    }) => params.push(p),
                    _ => return Err(self.error("expected `$param`")),
                }
                match self.peek().map(|t| &t.kind) {
                    Some(TokenKind::Comma) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let mut body = Vec::new();
        while !Self::is_keyword(self.peek(), "END") {
            if self.at_end() {
                return Err(self.error("unterminated PROCEDURE (missing END)"));
            }
            body.push(self.statement()?);
        }
        self.pos += 1; // END
        self.opt_semi();
        Ok(Stmt::Procedure { name, params, body })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Var(v),
                ..
            }) => Ok(Expr::Var(v)),
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => Ok(Expr::Num(n)),
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Ok(Expr::Str(s)),
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => match self.peek().map(|t| &t.kind) {
                Some(TokenKind::LParen) => {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !matches!(self.peek().map(|t| &t.kind), Some(TokenKind::RParen)) {
                        loop {
                            args.push(self.expr()?);
                            match self.peek().map(|t| &t.kind) {
                                Some(TokenKind::Comma) => {
                                    self.pos += 1;
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { name, args })
                }
                Some(TokenKind::Dot) => {
                    self.pos += 1;
                    match self.next() {
                        Some(Token {
                            kind: TokenKind::Ident(member),
                            ..
                        }) => Ok(Expr::Ref(name, member)),
                        _ => Err(self.error("expected identifier after `.`")),
                    }
                }
                _ => Ok(Expr::Sym(name)),
            },
            Some(t) => Err(ParseError {
                msg: format!("unexpected token `{}`", t.kind),
                line: t.line,
                col: t.col,
            }),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_assignment_chain() {
        let s = parse(
            r#"
            $CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);
            $NameSim = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]");
            $Merged = merge($CoAuthSim, $NameSim, Average);
            $Result = select($Merged, "[domain.id]<>[range.id]");
            RETURN $Result;
            "#,
        )
        .unwrap();
        assert_eq!(s.stmts.len(), 5);
        match &s.stmts[0] {
            Stmt::Assign {
                var,
                expr: Expr::Call { name, args },
            } => {
                assert_eq!(var, "CoAuthSim");
                assert_eq!(name, "nhMatch");
                assert_eq!(args.len(), 3);
                assert_eq!(args[0], Expr::Ref("DBLP".into(), "CoAuthor".into()));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
        assert!(matches!(&s.stmts[4], Stmt::Return(Expr::Var(v)) if v == "Result"));
    }

    #[test]
    fn parses_paper_nhmatch_procedure() {
        // Paper Section 4.2 listing (semicolons optional).
        let s = parse(
            r#"
            PROCEDURE nhMatch ( $Asso1, $Same, $Asso2)
               $Temp = compose ( $Asso1 , $Same , Min, Average )
               $Result = compose ( $Temp , $Asso2 , Min, Relative )
               RETURN $Result
            END
            "#,
        )
        .unwrap();
        match &s.stmts[0] {
            Stmt::Procedure { name, params, body } => {
                assert_eq!(name, "nhMatch");
                assert_eq!(params, &["Asso1".to_owned(), "Same".into(), "Asso2".into()]);
                assert_eq!(body.len(), 3);
                assert!(matches!(&body[2], Stmt::Return(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_calls() {
        let s = parse("$X = select(merge($A, $B, Max), threshold(0.8));").unwrap();
        match &s.stmts[0] {
            Stmt::Assign {
                expr: Expr::Call { name, args },
                ..
            } => {
                assert_eq!(name, "select");
                assert!(matches!(&args[0], Expr::Call { name, .. } if name == "merge"));
                assert!(matches!(&args[1], Expr::Call { name, .. } if name == "threshold"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_args() {
        let s = parse("$X = identity();").unwrap();
        match &s.stmts[0] {
            Stmt::Assign {
                expr: Expr::Call { args, .. },
                ..
            } => assert!(args.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_expression_statement() {
        let s = parse("store($M, \"name\");").unwrap();
        assert!(matches!(&s.stmts[0], Stmt::Expr(Expr::Call { .. })));
    }

    #[test]
    fn error_reporting() {
        let err = parse("$X = ;").unwrap_err();
        assert!(err.to_string().contains("unexpected token"));
        let err = parse("PROCEDURE p($a) $x = 1;").unwrap_err();
        assert!(err.msg.contains("unterminated PROCEDURE"));
        let err = parse("$X = foo(1,").unwrap_err();
        assert!(err.line == 0 || err.msg.contains("unexpected"));
        let err = parse("$X = DBLP.;").unwrap_err();
        assert!(err.msg.contains("after `.`"));
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = parse("return 1;").unwrap();
        assert!(matches!(&s.stmts[0], Stmt::Return(Expr::Num(n)) if *n == 1.0));
    }
}
