//! The iFuice script language.
//!
//! MOMA match workflows are written "within script programs" executed on
//! the iFuice platform (paper Section 4). The language is small:
//! variables (`$Result`), calls (`merge(...)`, `compose(...)`,
//! `attrMatch(...)`, `nhMatch(...)`, `select(...)`), qualified source /
//! mapping references (`DBLP.CoAuthor`), `PROCEDURE name($a, $b) … END`
//! definitions and `RETURN`.
//!
//! ```
//! # use moma_model::{SourceRegistry, LogicalSource, ObjectType, AttrDef};
//! # use moma_core::MappingRepository;
//! # use moma_ifuice::script::run_script;
//! # let mut reg = SourceRegistry::new();
//! # let mut lds = LogicalSource::new("DBLP", ObjectType::new("Author"),
//! #     vec![AttrDef::text("name")]);
//! # lds.insert_record("a0", vec![("name", "Erhard Rahm".into())]).unwrap();
//! # lds.insert_record("a1", vec![("name", "Erhard Rahms".into())]).unwrap();
//! # reg.register(lds).unwrap();
//! # let repo = MappingRepository::new();
//! let value = run_script(
//!     r#"
//!     $NameSim = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]");
//!     $Result  = select($NameSim, "[domain.id]<>[range.id]");
//!     RETURN $Result;
//!     "#,
//!     &reg,
//!     &repo,
//! ).unwrap();
//! assert_eq!(value.as_mapping().unwrap().len(), 2); // (a0,a1) and (a1,a0)
//! ```

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;

use moma_core::exec::Parallelism;
use moma_core::MappingRepository;
use moma_model::SourceRegistry;

pub use interp::{Interpreter, ScriptError, Value};

/// Parse and run a script against a registry and repository; returns the
/// `RETURN` value (or the value of the last statement). Matchers and
/// composes execute with [`Parallelism::from_env`]; use
/// [`run_script_with`] to configure parallelism programmatically.
pub fn run_script(
    source: &str,
    registry: &SourceRegistry,
    repository: &MappingRepository,
) -> Result<Value, ScriptError> {
    run_script_with(source, registry, repository, Parallelism::from_env())
}

/// [`run_script`] with an explicit [`Parallelism`] for the script's
/// matchers, joins and composes. Results are identical at every thread
/// count.
pub fn run_script_with(
    source: &str,
    registry: &SourceRegistry,
    repository: &MappingRepository,
    parallelism: Parallelism,
) -> Result<Value, ScriptError> {
    let script = parser::parse(source)?;
    let mut interp = Interpreter::new(registry, repository).with_parallelism(parallelism);
    interp.run(&script)
}
