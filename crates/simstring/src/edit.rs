//! Edit-distance measures: Levenshtein and Damerau–Levenshtein.

/// Levenshtein distance (unit costs) between two strings, by characters.
///
/// Two-row dynamic program; O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the shorter string as the row to halve memory.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Damerau–Levenshtein distance (optimal string alignment variant, i.e.
/// adjacent transpositions count 1 but no substring is edited twice).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let w = m + 1;
    let mut d = vec![0usize; (n + 1) * w];
    for i in 0..=n {
        d[i * w] = i;
    }
    for (j, cell) in d.iter_mut().enumerate().take(m + 1) {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * w + j] + 1)
                .min(d[i * w + j - 1] + 1)
                .min(d[(i - 1) * w + j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * w + j - 2] + 1);
            }
            d[i * w + j] = best;
        }
    }
    d[n * w + m]
}

/// Normalized Levenshtein similarity: `1 - dist / max_len` (1 for two
/// empty strings).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Normalized Damerau–Levenshtein similarity.
pub fn damerau_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn transpositions() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("schema", "shcema"), 1);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn normalized_range() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("a", "a"), 1.0);
        assert_eq!(levenshtein_sim("a", "b"), 0.0);
        let s = levenshtein_sim("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        for (a, b) in [
            ("ca", "ac"),
            ("hello", "hlelo"),
            ("x", "yx"),
            ("abcd", "badc"),
        ] {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b));
        }
    }

    #[test]
    fn unicode_chars_counted_once() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(damerau_levenshtein("naïve", "naive"), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn symmetry(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn identity(a in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(levenshtein_sim(&a, &a), 1.0);
        }

        #[test]
        fn triangle_inequality(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn sim_in_range(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let s = levenshtein_sim(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            let d = damerau_sim(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
