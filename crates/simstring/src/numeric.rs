//! Numeric and year proximity measures.
//!
//! The paper's third attribute matcher in Table 2 "compares publication
//! years"; object-value constraints also bound the admissible year
//! difference ("the publication year of matching publications should not
//! differ by more than one year", Section 2.2).

/// Exact year equality: 1.0 if equal, else 0.0.
pub fn year_equal(a: u16, b: u16) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

/// Windowed year similarity: linear falloff to 0 at `window + 1` years of
/// difference. `window = 0` degenerates to [`year_equal`].
pub fn year_window(a: u16, b: u16, window: u16) -> f64 {
    let diff = a.abs_diff(b);
    if diff > window {
        0.0
    } else {
        1.0 - diff as f64 / (window as f64 + 1.0)
    }
}

/// Relative numeric similarity: `1 - |a-b| / max(|a|,|b|)`, 1.0 when both
/// are 0.
pub fn relative_num(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).max(0.0)
}

/// Parse a year out of free text (first 4-digit group in 1500..=2100).
pub fn parse_year(s: &str) -> Option<u16> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i - start == 4 {
                if let Ok(y) = s[start..i].parse::<u16>() {
                    if (1500..=2100).contains(&y) {
                        return Some(y);
                    }
                }
            }
        } else {
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality() {
        assert_eq!(year_equal(2001, 2001), 1.0);
        assert_eq!(year_equal(2001, 2002), 0.0);
    }

    #[test]
    fn window_falloff() {
        assert_eq!(year_window(2000, 2000, 1), 1.0);
        assert_eq!(year_window(2000, 2001, 1), 0.5);
        assert_eq!(year_window(2000, 2002, 1), 0.0);
        assert_eq!(year_window(2000, 2002, 2), 1.0 - 2.0 / 3.0);
        assert_eq!(year_window(2000, 2001, 0), 0.0);
    }

    #[test]
    fn relative_numbers() {
        assert_eq!(relative_num(0.0, 0.0), 1.0);
        assert_eq!(relative_num(10.0, 10.0), 1.0);
        assert_eq!(relative_num(10.0, 5.0), 0.5);
        assert_eq!(relative_num(-4.0, 4.0), 0.0);
    }

    #[test]
    fn year_parsing() {
        assert_eq!(parse_year("VLDB 2002"), Some(2002));
        assert_eq!(parse_year("pp. 59-68, 2001."), Some(2001));
        assert_eq!(parse_year("no year here"), None);
        assert_eq!(parse_year("12345"), None); // 5-digit group is not a year
        assert_eq!(parse_year("year 0999"), None); // out of range
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn window_sim_properties(a in 1990u16..2010, b in 1990u16..2010, w in 0u16..5) {
            let s = year_window(a, b, w);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert_eq!(s, year_window(b, a, w));
            if a == b { prop_assert_eq!(s, 1.0); }
        }

        #[test]
        fn relative_range(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let s = relative_num(a, b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
