//! TF-IDF weighted cosine similarity.
//!
//! One of the three similarity functions the paper names for the generic
//! attribute matcher (Section 2.2). Weights are learned from a corpus —
//! typically the union of both attribute columns being matched — so that
//! frequent tokens ("the", "conference", "data") contribute little and
//! rare tokens dominate.
//!
//! Tokens are interned to dense `u32` handles
//! ([`moma_table::StringInterner`]) and vectors are sorted
//! `(token id, weight)` pairs, so a cosine evaluation is a linear merge
//! over two sorted slices — no per-call `String`-keyed maps. Callers
//! that score one value many times (the attribute matcher) cache the
//! [`TfIdfCorpus::vector`] output per value and combine them with
//! [`cosine_vectors`] directly; both paths run the *same* merge
//! arithmetic, which is what lets threshold pruning in `moma-core`
//! promise bit-identical scores to all-pairs evaluation.

use moma_table::{FxHashMap, StringInterner};

use crate::tokenize::words;

/// A token-frequency corpus providing IDF weights.
#[derive(Debug, Clone, Default)]
pub struct TfIdfCorpus {
    /// Token string ↔ dense handle; `doc_freq[handle]` is its df.
    tokens: StringInterner,
    doc_freq: Vec<u32>,
    docs: u32,
}

impl TfIdfCorpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a corpus from an iterator of documents.
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a str>) -> Self {
        let mut c = Self::new();
        for d in docs {
            c.add_document(d);
        }
        c
    }

    /// Add one document's tokens to the document-frequency table.
    pub fn add_document(&mut self, doc: &str) {
        self.docs += 1;
        let mut seen: Vec<String> = words(doc);
        seen.sort_unstable();
        seen.dedup();
        for t in seen {
            let id = self.tokens.intern(&t) as usize;
            if id == self.doc_freq.len() {
                self.doc_freq.push(0);
            }
            self.doc_freq[id] += 1;
        }
    }

    /// Number of documents.
    pub fn doc_count(&self) -> u32 {
        self.docs
    }

    /// Number of distinct corpus tokens. Handles below this count are
    /// corpus tokens; [`TfIdfCorpus::vector`] assigns out-of-corpus
    /// tokens call-local handles at or above it.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Handle of a corpus token, if seen by any document.
    pub fn token_id(&self, token: &str) -> Option<u32> {
        self.tokens.get(token)
    }

    /// Smoothed inverse document frequency of a token:
    /// `ln(1 + N / (1 + df))`.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self
            .tokens
            .get(token)
            .map(|id| self.doc_freq[id as usize])
            .unwrap_or(0);
        self.idf_from_df(df)
    }

    /// Smoothed idf by token handle (df 0 for out-of-corpus handles).
    pub fn idf_by_id(&self, id: u32) -> f64 {
        let df = self.doc_freq.get(id as usize).copied().unwrap_or(0);
        self.idf_from_df(df)
    }

    fn idf_from_df(&self, df: u32) -> f64 {
        (1.0 + self.docs as f64 / (1.0 + df as f64)).ln()
    }

    /// TF-IDF vector of a string (term frequency × idf), L2-normalized,
    /// as `(token id, weight)` pairs sorted by token id. Out-of-corpus
    /// tokens get fresh call-local ids starting at
    /// [`TfIdfCorpus::token_count`] — they carry the unseen-token idf
    /// but are never shared between separate `vector` calls (inside one
    /// [`TfIdfCorpus::cosine`] the two sides do share them).
    pub fn vector(&self, s: &str) -> Vec<(u32, f64)> {
        let mut extra = FxHashMap::default();
        self.vector_with(s, &mut extra)
    }

    /// As [`TfIdfCorpus::vector`], with out-of-corpus token ids drawn
    /// from (and recorded in) `extra`, so multiple strings in one
    /// scoring call agree on them.
    fn vector_with(&self, s: &str, extra: &mut FxHashMap<String, u32>) -> Vec<(u32, f64)> {
        let toks = words(s);
        let mut ids: Vec<u32> = Vec::with_capacity(toks.len());
        for t in &toks {
            let id = match self.tokens.get(t) {
                Some(id) => id,
                None => {
                    let next = (self.tokens.len() + extra.len()) as u32;
                    *extra.entry(t.clone()).or_insert(next)
                }
            };
            ids.push(id);
        }
        ids.sort_unstable();
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(ids.len());
        let mut norm = 0.0;
        let mut i = 0;
        while i < ids.len() {
            let id = ids[i];
            let mut count = 0u32;
            while i < ids.len() && ids[i] == id {
                count += 1;
                i += 1;
            }
            let w = count as f64 * self.idf_by_id(id);
            norm += w * w;
            out.push((id, w));
        }
        let norm = norm.sqrt();
        if norm > 0.0 {
            for (_, w) in &mut out {
                *w /= norm;
            }
        }
        out
    }

    /// TF-IDF cosine similarity between two strings.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let mut extra = FxHashMap::default();
        let va = self.vector_with(a, &mut extra);
        if va.is_empty() {
            return if words(b).is_empty() { 1.0 } else { 0.0 };
        }
        let vb = self.vector_with(b, &mut extra);
        if vb.is_empty() {
            return 0.0;
        }
        dot(&va, &vb).clamp(0.0, 1.0)
    }
}

/// Dot product of two id-sorted sparse vectors — a linear merge.
pub fn dot(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut acc = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Cosine of two cached unit vectors from the *same* corpus and token
/// numbering, with the empty-value edges of [`TfIdfCorpus::cosine`]:
/// two empty vectors (token-free values) score 1.0, one empty scores
/// 0.0. The attribute matcher evaluates every pair — pruned or not —
/// through this one function.
pub fn cosine_vectors(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    if a.is_empty() {
        return if b.is_empty() { 1.0 } else { 0.0 };
    }
    if b.is_empty() {
        return 0.0;
    }
    dot(a, b).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> TfIdfCorpus {
        TfIdfCorpus::build([
            "a formal perspective on the view selection problem",
            "generic schema matching with cupid",
            "the merge purge problem for large databases",
            "robust and efficient fuzzy match for online data cleaning",
            "data cleaning problems and current approaches",
        ])
    }

    #[test]
    fn identical_docs_cosine_one() {
        let c = corpus();
        let s = c.cosine(
            "generic schema matching with cupid",
            "generic schema matching with cupid",
        );
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_docs_cosine_zero() {
        let c = corpus();
        assert_eq!(c.cosine("cupid", "fuzzy"), 0.0);
    }

    #[test]
    fn rare_terms_dominate() {
        let c = corpus();
        // "cupid" is rare, "the" is frequent: sharing the rare term scores
        // higher than sharing the frequent one.
        let rare = c.cosine("cupid system", "cupid engine");
        let common = c.cosine("the system", "the engine");
        assert!(rare > common, "rare {rare} <= common {common}");
    }

    #[test]
    fn idf_monotone_in_rarity() {
        let c = corpus();
        assert!(c.idf("cupid") > c.idf("the"));
        assert!(c.idf("unseen-token") >= c.idf("cupid"));
    }

    #[test]
    fn empty_strings() {
        let c = corpus();
        assert_eq!(c.cosine("", ""), 1.0);
        assert_eq!(c.cosine("", "cupid"), 0.0);
        assert_eq!(c.cosine("cupid", ""), 0.0);
    }

    #[test]
    fn doc_count_tracks() {
        let c = corpus();
        assert_eq!(c.doc_count(), 5);
    }

    #[test]
    fn vector_is_normalized_and_sorted() {
        let c = corpus();
        let v = c.vector("generic schema matching");
        let norm: f64 = v.iter().map(|(_, w)| w * w).sum();
        assert!((norm - 1.0).abs() < 1e-9);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0), "ids not sorted");
        // All corpus tokens resolve to in-corpus handles.
        assert!(v.iter().all(|&(id, _)| (id as usize) < c.token_count()));
    }

    #[test]
    fn unknown_tokens_shared_within_one_cosine() {
        let c = corpus();
        // "zzz" is out of corpus on both sides: still a perfect match
        // when both sides are the same unknown-token string.
        assert!((c.cosine("zzz", "zzz") - 1.0).abs() < 1e-9);
        // Shared unknown token contributes; disjoint unknowns score 0.
        assert!(c.cosine("zzz cupid", "zzz engine") > 0.0);
        assert_eq!(c.cosine("zzz", "yyy"), 0.0);
    }

    #[test]
    fn cached_vectors_reproduce_cosine() {
        let c = corpus();
        let values = [
            "generic schema matching with cupid",
            "data cleaning problems",
            "",
            "the view selection problem",
        ];
        let vecs: Vec<_> = values.iter().map(|v| c.vector(v)).collect();
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                assert_eq!(
                    cosine_vectors(&vecs[i], &vecs[j]),
                    c.cosine(a, b),
                    "({a}, {b})"
                );
            }
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cosine_range_and_symmetry(
            a in "[a-z]{1,8}( [a-z]{1,8}){0,4}",
            b in "[a-z]{1,8}( [a-z]{1,8}){0,4}",
        ) {
            let c = TfIdfCorpus::build([a.as_str(), b.as_str(), "common background text"]);
            let s1 = c.cosine(&a, &b);
            let s2 = c.cosine(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&s1));
            prop_assert!(c.cosine(&a, &a) > 0.999);
        }

        /// Cached corpus vectors score every pair exactly like the
        /// string-level path — the identity the matcher's cached-vector
        /// scoring relies on.
        #[test]
        fn cached_vectors_match_string_path(
            docs in prop::collection::vec("[a-d]{1,4}( [a-d]{1,4}){0,3}", 2..8),
        ) {
            let c = TfIdfCorpus::build(docs.iter().map(|s| s.as_str()));
            let vecs: Vec<_> = docs.iter().map(|d| c.vector(d)).collect();
            for (i, a) in docs.iter().enumerate() {
                for (j, b) in docs.iter().enumerate() {
                    prop_assert_eq!(cosine_vectors(&vecs[i], &vecs[j]), c.cosine(a, b));
                }
            }
        }
    }
}
