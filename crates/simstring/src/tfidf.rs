//! TF-IDF weighted cosine similarity.
//!
//! One of the three similarity functions the paper names for the generic
//! attribute matcher (Section 2.2). Weights are learned from a corpus —
//! typically the union of both attribute columns being matched — so that
//! frequent tokens ("the", "conference", "data") contribute little and
//! rare tokens dominate.

use moma_table::FxHashMap;

use crate::tokenize::words;

/// A token-frequency corpus providing IDF weights.
#[derive(Debug, Clone, Default)]
pub struct TfIdfCorpus {
    doc_freq: FxHashMap<String, u32>,
    docs: u32,
}

impl TfIdfCorpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a corpus from an iterator of documents.
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a str>) -> Self {
        let mut c = Self::new();
        for d in docs {
            c.add_document(d);
        }
        c
    }

    /// Add one document's tokens to the document-frequency table.
    pub fn add_document(&mut self, doc: &str) {
        self.docs += 1;
        let mut seen: Vec<String> = words(doc);
        seen.sort_unstable();
        seen.dedup();
        for t in seen {
            *self.doc_freq.entry(t).or_insert(0) += 1;
        }
    }

    /// Number of documents.
    pub fn doc_count(&self) -> u32 {
        self.docs
    }

    /// Smoothed inverse document frequency of a token:
    /// `ln(1 + N / (1 + df))`.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        (1.0 + self.docs as f64 / (1.0 + df as f64)).ln()
    }

    /// TF-IDF vector of a string (term frequency × idf), L2-normalized.
    pub fn vector(&self, s: &str) -> FxHashMap<String, f64> {
        let toks = words(s);
        let mut tf: FxHashMap<String, f64> = FxHashMap::default();
        for t in toks {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        let mut norm = 0.0;
        for (t, v) in tf.iter_mut() {
            *v *= self.idf(t);
            norm += *v * *v;
        }
        let norm = norm.sqrt();
        if norm > 0.0 {
            for v in tf.values_mut() {
                *v /= norm;
            }
        }
        tf
    }

    /// TF-IDF cosine similarity between two strings.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = self.vector(a);
        if va.is_empty() {
            return if words(b).is_empty() { 1.0 } else { 0.0 };
        }
        let vb = self.vector(b);
        if vb.is_empty() {
            return 0.0;
        }
        let (small, large) = if va.len() <= vb.len() {
            (&va, &vb)
        } else {
            (&vb, &va)
        };
        let mut dot = 0.0;
        for (t, w) in small {
            if let Some(w2) = large.get(t) {
                dot += w * w2;
            }
        }
        dot.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> TfIdfCorpus {
        TfIdfCorpus::build([
            "a formal perspective on the view selection problem",
            "generic schema matching with cupid",
            "the merge purge problem for large databases",
            "robust and efficient fuzzy match for online data cleaning",
            "data cleaning problems and current approaches",
        ])
    }

    #[test]
    fn identical_docs_cosine_one() {
        let c = corpus();
        let s = c.cosine(
            "generic schema matching with cupid",
            "generic schema matching with cupid",
        );
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_docs_cosine_zero() {
        let c = corpus();
        assert_eq!(c.cosine("cupid", "fuzzy"), 0.0);
    }

    #[test]
    fn rare_terms_dominate() {
        let c = corpus();
        // "cupid" is rare, "the" is frequent: sharing the rare term scores
        // higher than sharing the frequent one.
        let rare = c.cosine("cupid system", "cupid engine");
        let common = c.cosine("the system", "the engine");
        assert!(rare > common, "rare {rare} <= common {common}");
    }

    #[test]
    fn idf_monotone_in_rarity() {
        let c = corpus();
        assert!(c.idf("cupid") > c.idf("the"));
        assert!(c.idf("unseen-token") >= c.idf("cupid"));
    }

    #[test]
    fn empty_strings() {
        let c = corpus();
        assert_eq!(c.cosine("", ""), 1.0);
        assert_eq!(c.cosine("", "cupid"), 0.0);
        assert_eq!(c.cosine("cupid", ""), 0.0);
    }

    #[test]
    fn doc_count_tracks() {
        let c = corpus();
        assert_eq!(c.doc_count(), 5);
    }

    #[test]
    fn vector_is_normalized() {
        let c = corpus();
        let v = c.vector("generic schema matching");
        let norm: f64 = v.values().map(|w| w * w).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cosine_range_and_symmetry(
            a in "[a-z]{1,8}( [a-z]{1,8}){0,4}",
            b in "[a-z]{1,8}( [a-z]{1,8}){0,4}",
        ) {
            let c = TfIdfCorpus::build([a.as_str(), b.as_str(), "common background text"]);
            let s1 = c.cosine(&a, &b);
            let s2 = c.cosine(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&s1));
            prop_assert!(c.cosine(&a, &a) > 0.999);
        }
    }
}
