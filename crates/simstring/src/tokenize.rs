//! Tokenizers: word tokens and character q-grams.

use crate::normalize::normalize;

/// Split into normalized word tokens.
pub fn words(s: &str) -> Vec<String> {
    normalize(s)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Character q-grams of the *normalized* string, padded with `q - 1`
/// leading/trailing `#` sentinels (standard for trigram matching: padding
/// gives prefix/suffix grams weight).
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    debug_assert!(q >= 1);
    let norm = normalize(s);
    if norm.is_empty() {
        return Vec::new();
    }
    let pad = "#".repeat(q.saturating_sub(1));
    let padded: Vec<char> = format!("{pad}{norm}{pad}").chars().collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Trigrams (`q = 3`), the paper's work-horse metric input.
pub fn trigrams(s: &str) -> Vec<String> {
    qgrams(s, 3)
}

/// Sorted q-gram profile with multiplicities: `(gram, count)`.
pub fn qgram_profile(s: &str, q: usize) -> Vec<(String, u32)> {
    let mut grams = qgrams(s, q);
    grams.sort_unstable();
    let mut profile: Vec<(String, u32)> = Vec::with_capacity(grams.len());
    for g in grams {
        match profile.last_mut() {
            Some((last, n)) if *last == g => *n += 1,
            _ => profile.push((g, 1)),
        }
    }
    profile
}

/// Size of the multiset intersection of two sorted profiles.
pub fn profile_intersection(a: &[(String, u32)], b: &[(String, u32)]) -> u32 {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += a[i].1.min(b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Total multiplicity of a profile.
pub fn profile_size(p: &[(String, u32)]) -> u32 {
    p.iter().map(|(_, n)| *n).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_basic() {
        assert_eq!(
            words("A Formal, Perspective!"),
            vec!["a", "formal", "perspective"]
        );
        assert!(words("").is_empty());
    }

    #[test]
    fn trigrams_padded() {
        let g = trigrams("ab");
        // "##ab##" -> ##a, #ab, ab#, b##
        assert_eq!(g, vec!["##a", "#ab", "ab#", "b##"]);
    }

    #[test]
    fn qgrams_q1_is_chars() {
        assert_eq!(qgrams("abc", 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_string_no_grams() {
        assert!(trigrams("").is_empty());
        assert!(trigrams("!!!").is_empty());
    }

    #[test]
    fn profile_counts_multiplicity() {
        let p = qgram_profile("aaaa", 2); // #a aa aa aa a#
        let aa = p.iter().find(|(g, _)| g == "aa").unwrap();
        assert_eq!(aa.1, 3);
    }

    #[test]
    fn profile_intersection_multiset() {
        let a = qgram_profile("aaaa", 2);
        let b = qgram_profile("aaa", 2);
        // a: {#a:1, aa:3, a#:1}, b: {#a:1, aa:2, a#:1} -> 1+2+1 = 4
        assert_eq!(profile_intersection(&a, &b), 4);
        assert_eq!(profile_size(&b), 4);
    }

    #[test]
    fn intersection_disjoint_is_zero() {
        let a = qgram_profile("abc", 3);
        let b = qgram_profile("xyz", 3);
        assert_eq!(profile_intersection(&a, &b), 0);
    }
}
