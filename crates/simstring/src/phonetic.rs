//! Phonetic codes and person-name similarity.
//!
//! Author matching across DBLP and Google Scholar must cope with "GS
//! reduces authors' first names to their first letter leading to
//! ambiguous author representations" (paper Section 5.4.3). The
//! [`person_name_sim`] measure treats an initial as compatible with any
//! full name sharing that initial and scores surnames with Jaro–Winkler.

use crate::jaro::jaro_winkler;
use crate::normalize::normalize_keep_periods;

/// American Soundex code (letter + 3 digits) of a word; empty input gives
/// an empty code.
pub fn soundex(word: &str) -> String {
    let chars: Vec<char> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    if chars.is_empty() {
        return String::new();
    }
    fn digit(c: char) -> Option<char> {
        match c {
            'B' | 'F' | 'P' | 'V' => Some('1'),
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => Some('2'),
            'D' | 'T' => Some('3'),
            'L' => Some('4'),
            'M' | 'N' => Some('5'),
            'R' => Some('6'),
            _ => None, // vowels + H, W, Y
        }
    }
    let mut code = String::with_capacity(4);
    code.push(chars[0]);
    let mut last = digit(chars[0]);
    for &c in &chars[1..] {
        let d = digit(c);
        match d {
            Some(d) => {
                // H and W do not reset the previous code; vowels do.
                if Some(d) != last {
                    code.push(d);
                    if code.len() == 4 {
                        break;
                    }
                }
                last = Some(d);
            }
            None => {
                if c != 'H' && c != 'W' {
                    last = None;
                }
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    code
}

/// Soundex equality as a 0/1 similarity over the last token (surname).
pub fn soundex_sim(a: &str, b: &str) -> f64 {
    let last = |s: &str| {
        normalize_keep_periods(s)
            .split(' ')
            .rfind(|t| !t.is_empty())
            .map(soundex)
            .unwrap_or_default()
    };
    let (sa, sb) = (last(a), last(b));
    // Two empty codes (both inputs nameless) compare equal as well.
    if sa == sb {
        1.0
    } else {
        0.0
    }
}

/// Parsed person name: given tokens + surname.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PersonName {
    given: Vec<String>,
    surname: String,
}

fn parse_name(s: &str) -> Option<PersonName> {
    let norm = normalize_keep_periods(s);
    let toks: Vec<&str> = norm.split(' ').filter(|t| !t.is_empty()).collect();
    let (&surname, given) = toks.split_last()?;
    Some(PersonName {
        given: given
            .iter()
            .map(|t| t.trim_end_matches('.').to_owned())
            .collect(),
        surname: surname.trim_end_matches('.').to_owned(),
    })
}

/// Whether a given-name token is an initial (single letter).
fn is_initial(t: &str) -> bool {
    t.chars().count() == 1
}

/// Similarity of two given-name token lists, initials-aware:
/// an initial matches any name with the same first letter (score 0.85, a
/// deliberate discount: "J." is compatible with but not equal to "John").
fn given_sim(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        // One side has no given names at all (e.g. mononym): neutral-ish.
        return 0.6;
    }
    let pairs = a.len().min(b.len());
    let mut total = 0.0;
    for i in 0..pairs {
        let (x, y) = (&a[i], &b[i]);
        total += if x == y {
            1.0
        } else if (is_initial(x) || is_initial(y)) && x.chars().next() == y.chars().next() {
            0.85
        } else {
            jaro_winkler(x, y) * 0.8
        };
    }
    // Unmatched extra tokens (e.g. a middle name on one side) dilute mildly.
    total / (pairs as f64 + 0.3 * (a.len().max(b.len()) - pairs) as f64)
}

/// Initials-aware person-name similarity.
///
/// Surnames are compared with Jaro–Winkler (weight 0.6); given names with
/// the initials-aware given-name comparison (weight 0.4). `"J. Smith"` vs
/// `"John Smith"` scores ≈ 0.94 while `"J. Smith"` vs `"Jane Smyth"`
/// stays lower.
pub fn person_name_sim(a: &str, b: &str) -> f64 {
    match (parse_name(a), parse_name(b)) {
        (Some(na), Some(nb)) => {
            let s_sur = jaro_winkler(&na.surname, &nb.surname);
            if s_sur < 0.75 {
                // Different surnames dominate: do not let given names rescue.
                return s_sur * 0.55;
            }
            let s_giv = given_sim(&na.given, &nb.given);
            0.6 * s_sur + 0.4 * s_giv
        }
        (None, None) => 1.0,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soundex_textbook() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Honeyman"), "H555");
    }

    #[test]
    fn soundex_empty() {
        assert_eq!(soundex(""), "");
        assert_eq!(soundex("123"), "");
    }

    #[test]
    fn soundex_sim_on_surnames() {
        assert_eq!(soundex_sim("John Smith", "J. Smyth"), 1.0);
        assert_eq!(soundex_sim("John Smith", "John Müller"), 0.0);
    }

    #[test]
    fn initial_matches_full_name() {
        let s = person_name_sim("J. Smith", "John Smith");
        assert!(s > 0.9, "got {s}");
        let exact = person_name_sim("John Smith", "John Smith");
        assert_eq!(exact, 1.0);
        assert!(s < exact);
    }

    #[test]
    fn initial_mismatch_penalized() {
        let s_match = person_name_sim("J. Smith", "John Smith");
        let s_clash = person_name_sim("K. Smith", "John Smith");
        assert!(s_clash < s_match);
    }

    #[test]
    fn different_surnames_dominate() {
        let s = person_name_sim("John Smith", "John Miller");
        assert!(s < 0.5, "got {s}");
    }

    #[test]
    fn paper_duplicate_candidates_score_moderately() {
        // Table 9 style pairs: similar names, not identical.
        let s1 = person_name_sim("Agathoniki Trigoni", "Niki Trigoni");
        assert!(s1 > 0.5 && s1 < 1.0, "trigoni {s1}");
        let s2 = person_name_sim("Amir M. Zarkesh", "Amir Zarkesh");
        assert!(s2 > 0.75 && s2 < 1.0, "zarkesh {s2}");
        let s3 = person_name_sim("M. Barczyk", "M. Barczyc");
        assert!(s3 > 0.7 && s3 < 1.0, "barczyk {s3}");
    }

    #[test]
    fn mononyms() {
        assert!(person_name_sim("Madonna", "Madonna") > 0.8);
        assert_eq!(person_name_sim("", ""), 1.0);
        assert_eq!(person_name_sim("", "X"), 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn name_sim_range_symmetry(a in "[A-Za-z. ]{0,20}", b in "[A-Za-z. ]{0,20}") {
            let s = person_name_sim(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            prop_assert!((s - person_name_sim(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn soundex_format(w in "[A-Za-z]{1,12}") {
            let c = soundex(&w);
            prop_assert_eq!(c.len(), 4);
            prop_assert!(c.chars().next().unwrap().is_ascii_uppercase());
            prop_assert!(c.chars().skip(1).all(|d| d.is_ascii_digit()));
        }
    }
}
