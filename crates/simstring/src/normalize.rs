//! Text normalization shared by all measures.
//!
//! Matching "real, dirty data" (paper Section 1) starts with a canonical
//! form: lowercase, punctuation folded to spaces, whitespace collapsed.

/// Normalize for matching: lowercase, non-alphanumerics → space,
/// whitespace runs collapsed, trimmed.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        let c = if ch.is_alphanumeric() {
            Some(ch.to_ascii_lowercase())
        } else {
            None
        };
        match c {
            Some(c) => {
                out.push(c);
                last_space = false;
            }
            None => {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            }
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Normalize but keep periods (useful for abbreviated person names where
/// `"J."` is meaningful).
pub fn normalize_keep_periods(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() || ch == '.' {
            out.push(ch.to_ascii_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips() {
        assert_eq!(
            normalize("Generic Schema Matching, with Cupid!"),
            "generic schema matching with cupid"
        );
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(normalize("  a   b\t\nc  "), "a b c");
    }

    #[test]
    fn empty_and_punct_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("---"), "");
    }

    #[test]
    fn unicode_lowering() {
        assert_eq!(normalize("VLDB–2002"), "vldb 2002");
    }

    #[test]
    fn keep_periods_preserves_initials() {
        assert_eq!(normalize_keep_periods("J. Smith"), "j. smith");
        assert_eq!(normalize("J. Smith"), "j smith");
    }
}
