//! Name-indexed registry of similarity measures.
//!
//! Match workflows, the iFuice script language (`attrMatch(..., Trigram,
//! 0.5, ...)`) and the self-tuner all select measures dynamically; the
//! [`SimFn`] enum is the closed set of built-ins and [`Similarity`] the
//! open extension point.

use crate::affix::{affix_containment_sim, affix_sim};
use crate::edit::{damerau_sim, levenshtein_sim};
use crate::jaro::{jaro, jaro_winkler};
use crate::ngram::{qgram_cosine, qgram_dice, qgram_jaccard, qgram_overlap, trigram};
use crate::normalize::normalize;
use crate::numeric::{parse_year, year_window};
use crate::phonetic::{person_name_sim, soundex_sim};
use crate::tfidf::TfIdfCorpus;
use crate::token::{monge_elkan_sym, token_cosine, token_dice, token_jaccard};

/// A similarity measure over two strings, yielding a value in `[0, 1]`.
pub trait Similarity: Send + Sync {
    /// Compute the similarity of `a` and `b`.
    fn sim(&self, a: &str, b: &str) -> f64;

    /// Human-readable name.
    fn name(&self) -> &str;
}

/// Built-in similarity functions, selectable by name.
#[derive(Debug, Clone, PartialEq)]
pub enum SimFn {
    /// Exact equality on normalized text.
    Exact,
    /// Trigram Dice — the paper's default metric.
    Trigram,
    /// Character q-gram Dice with chosen q.
    QgramDice(usize),
    /// Character q-gram Jaccard with chosen q.
    QgramJaccard(usize),
    /// Character q-gram cosine with chosen q.
    QgramCosine(usize),
    /// Character q-gram overlap coefficient with chosen q.
    QgramOverlap(usize),
    /// Normalized Levenshtein.
    Levenshtein,
    /// Normalized Damerau–Levenshtein.
    Damerau,
    /// Jaro.
    Jaro,
    /// Jaro–Winkler.
    JaroWinkler,
    /// Word-token Jaccard.
    TokenJaccard,
    /// Word-token Dice.
    TokenDice,
    /// Word-token cosine (unweighted).
    TokenCosine,
    /// Symmetric Monge–Elkan with Jaro–Winkler base.
    MongeElkan,
    /// Affix (best of prefix/suffix ratio).
    Affix,
    /// Containment-aware affix.
    AffixContainment,
    /// Soundex equality of surnames.
    Soundex,
    /// Initials-aware person-name measure.
    PersonName,
    /// Year proximity parsed from text, with window in years.
    Year(u16),
}

impl SimFn {
    /// Evaluate the measure on two raw strings.
    pub fn eval(&self, a: &str, b: &str) -> f64 {
        match self {
            SimFn::Exact => {
                if normalize(a) == normalize(b) {
                    1.0
                } else {
                    0.0
                }
            }
            SimFn::Trigram => trigram(a, b),
            SimFn::QgramDice(q) => qgram_dice(a, b, *q),
            SimFn::QgramJaccard(q) => qgram_jaccard(a, b, *q),
            SimFn::QgramCosine(q) => qgram_cosine(a, b, *q),
            SimFn::QgramOverlap(q) => qgram_overlap(a, b, *q),
            SimFn::Levenshtein => levenshtein_sim(&normalize(a), &normalize(b)),
            SimFn::Damerau => damerau_sim(&normalize(a), &normalize(b)),
            SimFn::Jaro => jaro(&normalize(a), &normalize(b)),
            SimFn::JaroWinkler => jaro_winkler(&normalize(a), &normalize(b)),
            SimFn::TokenJaccard => token_jaccard(a, b),
            SimFn::TokenDice => token_dice(a, b),
            SimFn::TokenCosine => token_cosine(a, b),
            SimFn::MongeElkan => monge_elkan_sym(a, b),
            SimFn::Affix => affix_sim(a, b),
            SimFn::AffixContainment => affix_containment_sim(a, b),
            SimFn::Soundex => soundex_sim(a, b),
            SimFn::PersonName => person_name_sim(a, b),
            SimFn::Year(window) => match (parse_year(a), parse_year(b)) {
                (Some(x), Some(y)) => year_window(x, y, *window),
                _ => 0.0,
            },
        }
    }

    /// Parse a measure name as used in scripts (case-insensitive);
    /// parameterized forms use `name:param` (e.g. `qgram:2`, `year:1`).
    pub fn parse(name: &str) -> Option<SimFn> {
        let lower = name.to_ascii_lowercase();
        let (base, param) = match lower.split_once(':') {
            Some((b, p)) => (b, Some(p)),
            None => (lower.as_str(), None),
        };
        Some(match base {
            "exact" => SimFn::Exact,
            "trigram" | "ngram" => SimFn::Trigram,
            "qgram" | "qgramdice" => SimFn::QgramDice(param?.parse().ok()?),
            "qgramjaccard" => SimFn::QgramJaccard(param?.parse().ok()?),
            "qgramcosine" => SimFn::QgramCosine(param?.parse().ok()?),
            "qgramoverlap" => SimFn::QgramOverlap(param?.parse().ok()?),
            "levenshtein" | "editdistance" => SimFn::Levenshtein,
            "damerau" => SimFn::Damerau,
            "jaro" => SimFn::Jaro,
            "jarowinkler" => SimFn::JaroWinkler,
            "tokenjaccard" | "jaccard" => SimFn::TokenJaccard,
            "tokendice" | "dice" => SimFn::TokenDice,
            "tokencosine" | "cosine" => SimFn::TokenCosine,
            "mongeelkan" => SimFn::MongeElkan,
            "affix" => SimFn::Affix,
            "affixcontainment" => SimFn::AffixContainment,
            "soundex" => SimFn::Soundex,
            "personname" | "name" => SimFn::PersonName,
            "year" => SimFn::Year(param.map(|p| p.parse().unwrap_or(0)).unwrap_or(0)),
            _ => return None,
        })
    }

    /// Canonical name of the measure.
    pub fn name(&self) -> String {
        match self {
            SimFn::Exact => "exact".into(),
            SimFn::Trigram => "trigram".into(),
            SimFn::QgramDice(q) => format!("qgram:{q}"),
            SimFn::QgramJaccard(q) => format!("qgramjaccard:{q}"),
            SimFn::QgramCosine(q) => format!("qgramcosine:{q}"),
            SimFn::QgramOverlap(q) => format!("qgramoverlap:{q}"),
            SimFn::Levenshtein => "levenshtein".into(),
            SimFn::Damerau => "damerau".into(),
            SimFn::Jaro => "jaro".into(),
            SimFn::JaroWinkler => "jarowinkler".into(),
            SimFn::TokenJaccard => "tokenjaccard".into(),
            SimFn::TokenDice => "tokendice".into(),
            SimFn::TokenCosine => "tokencosine".into(),
            SimFn::MongeElkan => "mongeelkan".into(),
            SimFn::Affix => "affix".into(),
            SimFn::AffixContainment => "affixcontainment".into(),
            SimFn::Soundex => "soundex".into(),
            SimFn::PersonName => "personname".into(),
            SimFn::Year(w) => format!("year:{w}"),
        }
    }

    /// All parameter-free built-ins (used by the self-tuner's search
    /// space).
    pub fn all_basic() -> Vec<SimFn> {
        vec![
            SimFn::Exact,
            SimFn::Trigram,
            SimFn::Levenshtein,
            SimFn::Damerau,
            SimFn::Jaro,
            SimFn::JaroWinkler,
            SimFn::TokenJaccard,
            SimFn::TokenDice,
            SimFn::TokenCosine,
            SimFn::MongeElkan,
            SimFn::Affix,
            SimFn::AffixContainment,
            SimFn::PersonName,
        ]
    }
}

impl Similarity for SimFn {
    fn sim(&self, a: &str, b: &str) -> f64 {
        self.eval(a, b)
    }

    fn name(&self) -> &str {
        // SimFn::name allocates for parameterized variants; for the trait
        // we return the base name.
        match self {
            SimFn::QgramDice(_) | SimFn::QgramJaccard(_) => "qgram",
            SimFn::QgramCosine(_) => "qgramcosine",
            SimFn::QgramOverlap(_) => "qgramoverlap",
            SimFn::Year(_) => "year",
            SimFn::Exact => "exact",
            SimFn::Trigram => "trigram",
            SimFn::Levenshtein => "levenshtein",
            SimFn::Damerau => "damerau",
            SimFn::Jaro => "jaro",
            SimFn::JaroWinkler => "jarowinkler",
            SimFn::TokenJaccard => "tokenjaccard",
            SimFn::TokenDice => "tokendice",
            SimFn::TokenCosine => "tokencosine",
            SimFn::MongeElkan => "mongeelkan",
            SimFn::Affix => "affix",
            SimFn::AffixContainment => "affixcontainment",
            SimFn::Soundex => "soundex",
            SimFn::PersonName => "personname",
        }
    }
}

/// A TF-IDF measure bound to a prepared corpus (TF-IDF needs corpus
/// statistics, so it cannot be a bare [`SimFn`] variant).
pub struct TfIdfSim {
    corpus: TfIdfCorpus,
}

impl TfIdfSim {
    /// Wrap a prepared corpus.
    pub fn new(corpus: TfIdfCorpus) -> Self {
        Self { corpus }
    }

    /// Access the corpus.
    pub fn corpus(&self) -> &TfIdfCorpus {
        &self.corpus
    }
}

impl Similarity for TfIdfSim {
    fn sim(&self, a: &str, b: &str) -> f64 {
        self.corpus.cosine(a, b)
    }

    fn name(&self) -> &str {
        "tfidf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for f in SimFn::all_basic() {
            let parsed = SimFn::parse(&f.name()).unwrap();
            assert_eq!(parsed, f, "roundtrip of {}", f.name());
        }
        assert_eq!(SimFn::parse("qgram:2"), Some(SimFn::QgramDice(2)));
        assert_eq!(SimFn::parse("qgramcosine:3"), Some(SimFn::QgramCosine(3)));
        assert_eq!(SimFn::parse("qgramoverlap:2"), Some(SimFn::QgramOverlap(2)));
        assert_eq!(SimFn::parse("year:1"), Some(SimFn::Year(1)));
        assert_eq!(SimFn::parse("TRIGRAM"), Some(SimFn::Trigram));
        assert_eq!(SimFn::parse("nope"), None);
        assert_eq!(SimFn::parse("qgram"), None); // missing parameter
    }

    #[test]
    fn exact_ignores_case_and_punct() {
        assert_eq!(SimFn::Exact.eval("VLDB 2002!", "vldb-2002"), 1.0);
        assert_eq!(SimFn::Exact.eval("a", "b"), 0.0);
    }

    #[test]
    fn year_variant() {
        assert_eq!(SimFn::Year(0).eval("2001", "2001"), 1.0);
        assert_eq!(SimFn::Year(1).eval("VLDB 2001", "Proc 2002"), 0.5);
        assert_eq!(SimFn::Year(0).eval("no year", "2001"), 0.0);
    }

    #[test]
    fn all_measures_satisfy_identity() {
        let text = "Generic Schema Matching with Cupid";
        for f in SimFn::all_basic() {
            let s = f.eval(text, text);
            assert!((s - 1.0).abs() < 1e-9, "{} identity gave {s}", f.name());
        }
    }

    #[test]
    fn trait_objects_work() {
        let measures: Vec<Box<dyn Similarity>> = vec![
            Box::new(SimFn::Trigram),
            Box::new(TfIdfSim::new(TfIdfCorpus::build(["a b c", "b c d"]))),
        ];
        for m in &measures {
            let s = m.sim("b c", "b c");
            assert!(s > 0.99, "{} gave {s}", m.name());
        }
    }

    #[test]
    fn trait_name_matches() {
        assert_eq!(Similarity::name(&SimFn::Trigram), "trigram");
        assert_eq!(Similarity::name(&SimFn::QgramDice(2)), "qgram");
    }
}
