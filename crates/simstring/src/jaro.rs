//! Jaro and Jaro–Winkler similarity — strong for short person names.

/// Jaro similarity between two strings.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = vec![false; a.len()];
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                a_matched[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions between the matched subsequences.
    let matched_b: Vec<char> = b_used
        .iter()
        .zip(b.iter())
        .filter(|(u, _)| **u)
        .map(|(_, c)| *c)
        .collect();
    let matched_a: Vec<char> = a_matched
        .iter()
        .zip(a.iter())
        .filter(|(u, _)| **u)
        .map(|(_, c)| *c)
        .collect();
    let t = matched_a
        .iter()
        .zip(matched_b.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale `p = 0.1` and a
/// maximum considered prefix of 4 characters.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro("JELLYFISH", "SMELLYFISH"), 0.896));
    }

    #[test]
    fn winkler_boosts_common_prefix() {
        let j = jaro("MARTHA", "MARHTA");
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!(jw > j);
        assert!(close(jw, 0.961));
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro("", "abc"), 0.0);
    }

    #[test]
    fn single_chars() {
        assert_eq!(jaro("a", "a"), 1.0);
        assert_eq!(jaro("a", "b"), 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn range_and_symmetry(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let s1 = jaro(&a, &b);
            let s2 = jaro(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&s1));
            let w = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&w));
            prop_assert!(w + 1e-12 >= s1);
        }

        #[test]
        fn identity(a in "[a-z]{1,10}") {
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }
}
