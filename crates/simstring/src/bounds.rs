//! Exact threshold bounds for q-gram similarity measures (the
//! SimString / CPMerge *T-occurrence* arithmetic).
//!
//! A pair of strings can only reach similarity threshold `t` under a
//! q-gram measure if (a) their gram-multiset sizes are within a window
//! computable from `t` and the query size alone, and (b) they share a
//! minimum number of grams computable from `t` and both sizes. Turning
//! the threshold into these two *pre-scoring* filters prunes candidates
//! with provably zero loss of matches — the engine behind
//! `moma_core::blocking::Blocking::Threshold`.
//!
//! All bounds are stated over gram **multisets** (the same multisets the
//! scoring functions in [`crate::ngram`] use — sizes count every padded
//! gram occurrence, intersections take `min` multiplicities). With
//! `x = |G(query)|`, `y = |G(candidate)|` and `c = |G(query) ∩ G(candidate)|`:
//!
//! | measure | similarity | min shared grams | size window for `y` |
//! |---|---|---|---|
//! | Dice | `2c/(x+y)` | `⌈t(x+y)/2⌉` | `[x·t/(2−t), x·(2−t)/t]` |
//! | Jaccard | `c/(x+y−c)` | `⌈t(x+y)/(1+t)⌉` | `[x·t, x/t]` |
//! | Cosine | `c/√(xy)` | `⌈t√(xy)⌉` | `[x·t², x/t²]` |
//! | Overlap | `c/min(x,y)` | `⌈t·min(x,y)⌉` | `[1, ∞)` |
//!
//! Each window derives from `c ≤ min(x, y)` plugged into the similarity;
//! each derivation is pinned by the exhaustive-integer property tests at
//! the bottom of this module. Bounds are computed with a tiny epsilon of
//! slack in the *keeping* direction, so IEEE rounding in the scoring path
//! can never disagree with real-valued arithmetic here: a candidate on
//! the boundary is generated (and then scored exactly) rather than
//! pruned.

use crate::registry::SimFn;

/// Slack protecting integer bounds against f64 rounding: bounds are
/// loosened by this amount so a borderline candidate is kept, never
/// dropped. Rounding error in the scoring path is ~1e-16 per operation;
/// 1e-9 dominates it for any realistic gram count.
const EPS: f64 = 1e-9;

/// The q-gram set-similarity family with exact threshold bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QgramMeasure {
    /// Dice coefficient `2c/(x+y)` — the paper's trigram metric.
    Dice,
    /// Jaccard coefficient `c/(x+y−c)`.
    Jaccard,
    /// Cosine coefficient `c/√(xy)`.
    Cosine,
    /// Overlap coefficient `c/min(x,y)`.
    Overlap,
}

impl QgramMeasure {
    /// Candidate gram-count window `[lo, hi]` for a query of gram count
    /// `query_size` at threshold `t`: any string whose similarity to the
    /// query reaches `t` has a gram count inside the window. An empty
    /// window is returned as `lo > hi` (possible for `t > 1`).
    ///
    /// `query_size` must be ≥ 1 (gramless queries can only match
    /// gramless candidates — handle that case before consulting the
    /// window) and `t` must be > 0 (at `t = 0` nothing can be pruned).
    pub fn size_window(self, t: f64, query_size: usize) -> (usize, usize) {
        debug_assert!(query_size >= 1, "size_window needs a non-empty query");
        debug_assert!(t > 0.0, "size_window needs a positive threshold");
        let x = query_size as f64;
        let (lo, hi) = match self {
            QgramMeasure::Dice => (x * t / (2.0 - t), x * (2.0 - t) / t),
            QgramMeasure::Jaccard => (x * t, x / t),
            QgramMeasure::Cosine => (x * t * t, x / (t * t)),
            QgramMeasure::Overlap => return (1, usize::MAX),
        };
        let lo = (lo - EPS).ceil().max(1.0) as usize;
        // A threshold above 1 yields hi < lo: the empty window.
        let hi = if hi.is_finite() && hi < usize::MAX as f64 {
            (hi + EPS).floor() as usize
        } else {
            usize::MAX
        };
        (lo, hi)
    }

    /// Minimum number of shared grams a candidate of gram count
    /// `cand_size` must have with a query of gram count `query_size` to
    /// possibly reach threshold `t`. Always ≥ 1 for `t > 0` (sharing no
    /// grams means similarity 0).
    pub fn min_overlap(self, t: f64, query_size: usize, cand_size: usize) -> usize {
        debug_assert!(t > 0.0, "min_overlap needs a positive threshold");
        let (x, y) = (query_size as f64, cand_size as f64);
        let c = match self {
            QgramMeasure::Dice => t * (x + y) / 2.0,
            QgramMeasure::Jaccard => t * (x + y) / (1.0 + t),
            QgramMeasure::Cosine => t * (x * y).sqrt(),
            QgramMeasure::Overlap => t * x.min(y),
        };
        ((c - EPS).ceil().max(1.0)) as usize
    }

    /// Evaluate the measure from the raw counts (shared grams `c`, sizes
    /// `x`, `y`) — exactly the arithmetic of the string-level scorers in
    /// [`crate::ngram`]. Two empty multisets are identical (1.0).
    pub fn eval_counts(self, c: usize, x: usize, y: usize) -> f64 {
        if x == 0 && y == 0 {
            return 1.0;
        }
        if x == 0 || y == 0 {
            return 0.0;
        }
        let (c, x, y) = (c as f64, x as f64, y as f64);
        match self {
            QgramMeasure::Dice => 2.0 * c / (x + y),
            QgramMeasure::Jaccard => c / (x + y - c),
            QgramMeasure::Cosine => c / (x * y).sqrt(),
            QgramMeasure::Overlap => c / x.min(y),
        }
    }

    /// Short name (for reports and bench output).
    pub fn name(self) -> &'static str {
        match self {
            QgramMeasure::Dice => "dice",
            QgramMeasure::Jaccard => "jaccard",
            QgramMeasure::Cosine => "cosine",
            QgramMeasure::Overlap => "overlap",
        }
    }
}

/// The `(measure, q)` pair a similarity function scores with, when it is
/// a pure q-gram measure — i.e. when the threshold bounds above are
/// *exact* for it. `None` for every other measure (edit distances,
/// token measures, TF-IDF, …), for which threshold pruning would lose
/// matches.
pub fn qgram_measure_of(sim: &SimFn) -> Option<(QgramMeasure, usize)> {
    match sim {
        SimFn::Trigram => Some((QgramMeasure::Dice, 3)),
        SimFn::QgramDice(q) if *q >= 1 => Some((QgramMeasure::Dice, *q)),
        SimFn::QgramJaccard(q) if *q >= 1 => Some((QgramMeasure::Jaccard, *q)),
        SimFn::QgramCosine(q) if *q >= 1 => Some((QgramMeasure::Cosine, *q)),
        SimFn::QgramOverlap(q) if *q >= 1 => Some((QgramMeasure::Overlap, *q)),
        _ => None,
    }
}

/// All four measures (report/bench iteration).
pub const ALL_MEASURES: [QgramMeasure; 4] = [
    QgramMeasure::Dice,
    QgramMeasure::Jaccard,
    QgramMeasure::Cosine,
    QgramMeasure::Overlap,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dice_window_examples() {
        // x = 10, t = 0.8: y in [10*0.8/1.2, 10*1.2/0.8] = [6.66→7, 15].
        assert_eq!(QgramMeasure::Dice.size_window(0.8, 10), (7, 15));
        // t = 1 pins the window to exactly x.
        assert_eq!(QgramMeasure::Dice.size_window(1.0, 10), (10, 10));
    }

    #[test]
    fn jaccard_window_examples() {
        assert_eq!(QgramMeasure::Jaccard.size_window(0.5, 10), (5, 20));
        assert_eq!(QgramMeasure::Jaccard.size_window(1.0, 4), (4, 4));
    }

    #[test]
    fn cosine_window_examples() {
        assert_eq!(QgramMeasure::Cosine.size_window(0.5, 8), (2, 32));
    }

    #[test]
    fn overlap_window_is_unbounded() {
        assert_eq!(QgramMeasure::Overlap.size_window(0.9, 5), (1, usize::MAX));
    }

    #[test]
    fn threshold_above_one_gives_empty_window() {
        for m in [
            QgramMeasure::Dice,
            QgramMeasure::Jaccard,
            QgramMeasure::Cosine,
        ] {
            let (lo, hi) = m.size_window(1.5, 10);
            assert!(lo > hi, "{m:?}: [{lo}, {hi}] should be empty");
        }
    }

    #[test]
    fn min_overlap_examples() {
        // Dice: c >= 0.8*(10+10)/2 = 8.
        assert_eq!(QgramMeasure::Dice.min_overlap(0.8, 10, 10), 8);
        // Jaccard: c >= 0.5*20/1.5 = 6.66 -> 7.
        assert_eq!(QgramMeasure::Jaccard.min_overlap(0.5, 10, 10), 7);
        // Overlap: c >= 0.9*min(5,50) = 4.5 -> 5.
        assert_eq!(QgramMeasure::Overlap.min_overlap(0.9, 5, 50), 5);
        // Never below 1 for positive thresholds.
        assert_eq!(QgramMeasure::Dice.min_overlap(0.01, 3, 3), 1);
    }

    #[test]
    fn simfn_mapping() {
        assert_eq!(
            qgram_measure_of(&SimFn::Trigram),
            Some((QgramMeasure::Dice, 3))
        );
        assert_eq!(
            qgram_measure_of(&SimFn::QgramDice(2)),
            Some((QgramMeasure::Dice, 2))
        );
        assert_eq!(
            qgram_measure_of(&SimFn::QgramJaccard(3)),
            Some((QgramMeasure::Jaccard, 3))
        );
        assert_eq!(
            qgram_measure_of(&SimFn::QgramCosine(3)),
            Some((QgramMeasure::Cosine, 3))
        );
        assert_eq!(
            qgram_measure_of(&SimFn::QgramOverlap(2)),
            Some((QgramMeasure::Overlap, 2))
        );
        // Degenerate q is rejected rather than handed exact bounds.
        assert_eq!(qgram_measure_of(&SimFn::QgramDice(0)), None);
        for f in [SimFn::Jaro, SimFn::Levenshtein, SimFn::TokenJaccard] {
            assert_eq!(qgram_measure_of(&f), None, "{}", f.name());
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Exhaustive-integer soundness: for every (x, y, c) with
        /// c <= min(x, y), if the measure evaluated from counts clears
        /// the threshold then y is inside the window and c clears
        /// min_overlap. This is the no-false-dismissal guarantee at the
        /// arithmetic level, independent of any index.
        #[test]
        fn bounds_never_dismiss_a_true_match(
            x in 1usize..60,
            y in 1usize..60,
            c_frac in 0.0f64..=1.0,
            t in 0.05f64..=1.0,
        ) {
            let c = ((x.min(y) as f64) * c_frac).round() as usize;
            for m in ALL_MEASURES {
                if m.eval_counts(c, x, y) >= t {
                    let (lo, hi) = m.size_window(t, x);
                    prop_assert!(
                        (lo..=hi).contains(&y),
                        "{m:?}: y={y} outside [{lo},{hi}] for x={x} t={t}"
                    );
                    prop_assert!(
                        c >= m.min_overlap(t, x, y),
                        "{m:?}: c={c} < min_overlap for x={x} y={y} t={t}"
                    );
                }
            }
        }

        /// The bounds are symmetric: probing from either side of a pair
        /// gives consistent windows (y in window(x) iff x in window(y))
        /// and the same overlap requirement. This is what lets the delta
        /// engine probe *inversely* through a domain-side index.
        #[test]
        fn bounds_are_symmetric(
            x in 1usize..60,
            y in 1usize..60,
            t in 0.05f64..=1.0,
        ) {
            for m in ALL_MEASURES {
                let (lo_x, hi_x) = m.size_window(t, x);
                let (lo_y, hi_y) = m.size_window(t, y);
                prop_assert_eq!(
                    (lo_x..=hi_x).contains(&y),
                    (lo_y..=hi_y).contains(&x),
                    "{:?}: window asymmetry at x={} y={} t={}", m, x, y, t
                );
                prop_assert_eq!(
                    m.min_overlap(t, x, y),
                    m.min_overlap(t, y, x),
                    "{:?}: overlap asymmetry at x={} y={} t={}", m, x, y, t
                );
            }
        }

        /// min_overlap never exceeds min(x, y) when the pair can
        /// actually reach the threshold with all grams shared — i.e. the
        /// filter is satisfiable exactly when a true match is possible.
        #[test]
        fn min_overlap_satisfiable_iff_reachable(
            x in 1usize..60,
            y in 1usize..60,
            t in 0.05f64..=1.0,
        ) {
            for m in ALL_MEASURES {
                let best = m.eval_counts(x.min(y), x, y);
                let tau = m.min_overlap(t, x, y);
                if best >= t {
                    prop_assert!(tau <= x.min(y),
                        "{m:?}: unsatisfiable tau={tau} though best={best} >= t={t}");
                }
            }
        }
    }
}
