//! Affix similarity — common prefix/suffix based measures.
//!
//! The third named similarity family of the paper's generic attribute
//! matcher ("e.g. n-gram, TF/IDF or affix", Section 2.2). Useful for
//! identifier-ish values where corruption happens at one end (truncated
//! titles in Google Scholar extractions, abbreviated venue names).

use crate::normalize::normalize;

/// Length (in chars) of the longest common prefix.
pub fn common_prefix_len(a: &str, b: &str) -> usize {
    a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count()
}

/// Length (in chars) of the longest common suffix.
pub fn common_suffix_len(a: &str, b: &str) -> usize {
    a.chars()
        .rev()
        .zip(b.chars().rev())
        .take_while(|(x, y)| x == y)
        .count()
}

/// Prefix similarity: `lcp / max(|a|, |b|)` on normalized text.
pub fn prefix_sim(a: &str, b: &str) -> f64 {
    let (a, b) = (normalize(a), normalize(b));
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    common_prefix_len(&a, &b) as f64 / max as f64
}

/// Suffix similarity: `lcs / max(|a|, |b|)` on normalized text.
pub fn suffix_sim(a: &str, b: &str) -> f64 {
    let (a, b) = (normalize(a), normalize(b));
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    common_suffix_len(&a, &b) as f64 / max as f64
}

/// Affix similarity: the better of prefix and suffix similarity. A
/// truncated copy ("A formal perspective on the view…" vs the full title)
/// still scores proportionally to the shared affix.
pub fn affix_sim(a: &str, b: &str) -> f64 {
    prefix_sim(a, b).max(suffix_sim(a, b))
}

/// Containment-aware affix similarity: if one normalized string contains
/// the other, score `|short| / |long|`; otherwise fall back to
/// [`affix_sim`].
pub fn affix_containment_sim(a: &str, b: &str) -> f64 {
    let (na, nb) = (normalize(a), normalize(b));
    if na.is_empty() && nb.is_empty() {
        return 1.0;
    }
    let (short, long) = if na.len() <= nb.len() {
        (&na, &nb)
    } else {
        (&nb, &na)
    };
    if !short.is_empty() && long.contains(short.as_str()) {
        return short.chars().count() as f64 / long.chars().count() as f64;
    }
    affix_sim(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcp_and_lcs() {
        assert_eq!(common_prefix_len("vldb journal", "vldb 2002"), 5);
        assert_eq!(common_suffix_len("acm sigmod", "ieee sigmod"), 7);
        assert_eq!(common_prefix_len("", "x"), 0);
    }

    #[test]
    fn identical() {
        assert_eq!(prefix_sim("same", "same"), 1.0);
        assert_eq!(suffix_sim("same", "same"), 1.0);
        assert_eq!(affix_sim("same", "same"), 1.0);
        assert_eq!(affix_containment_sim("", ""), 1.0);
    }

    #[test]
    fn truncation_scores_by_shared_prefix() {
        let full = "a formal perspective on the view selection problem";
        let cut = "a formal perspective on the view";
        let s = prefix_sim(full, cut);
        assert!(s > 0.6 && s < 1.0);
        assert_eq!(s, affix_sim(full, cut));
    }

    #[test]
    fn containment_uses_length_ratio() {
        let s = affix_containment_sim("view selection", "the view selection problem");
        assert!((s - 14.0 / 26.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(affix_sim("aaa", "zzz"), 0.0);
    }

    #[test]
    fn normalization_applies() {
        assert_eq!(prefix_sim("VLDB!", "vldb"), 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_symmetry(a in "[a-z ]{0,16}", b in "[a-z ]{0,16}") {
            for f in [prefix_sim, suffix_sim, affix_sim, affix_containment_sim] {
                let s = f(&a, &b);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!((s - f(&b, &a)).abs() < 1e-12);
            }
        }

        #[test]
        fn prefix_of_self_scales(a in "[a-z]{2,16}") {
            let half = &a[..a.len() / 2];
            let s = prefix_sim(&a, half);
            prop_assert!(s > 0.0);
        }
    }
}
