//! Character n-gram similarities — including the paper's trigram metric.
//!
//! The evaluation (Section 5) computes publication/author similarity "by
//! the trigram metric": Dice's coefficient over padded character trigram
//! multisets.

use crate::tokenize::{profile_intersection, profile_size, qgram_profile};

/// Dice coefficient over q-gram multisets: `2·|A∩B| / (|A|+|B|)`.
pub fn qgram_dice(a: &str, b: &str, q: usize) -> f64 {
    let pa = qgram_profile(a, q);
    let pb = qgram_profile(b, q);
    let (na, nb) = (profile_size(&pa), profile_size(&pb));
    if na == 0 && nb == 0 {
        return 1.0;
    }
    if na == 0 || nb == 0 {
        return 0.0;
    }
    2.0 * profile_intersection(&pa, &pb) as f64 / (na + nb) as f64
}

/// Jaccard coefficient over q-gram multisets: `|A∩B| / |A∪B|`.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    let pa = qgram_profile(a, q);
    let pb = qgram_profile(b, q);
    let (na, nb) = (profile_size(&pa), profile_size(&pb));
    if na == 0 && nb == 0 {
        return 1.0;
    }
    let inter = profile_intersection(&pa, &pb);
    let union = na + nb - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Cosine coefficient over q-gram multisets: `|A∩B| / √(|A|·|B|)`.
pub fn qgram_cosine(a: &str, b: &str, q: usize) -> f64 {
    let pa = qgram_profile(a, q);
    let pb = qgram_profile(b, q);
    let (na, nb) = (profile_size(&pa), profile_size(&pb));
    if na == 0 && nb == 0 {
        return 1.0;
    }
    if na == 0 || nb == 0 {
        return 0.0;
    }
    profile_intersection(&pa, &pb) as f64 / ((na as f64) * (nb as f64)).sqrt()
}

/// Overlap coefficient over q-gram multisets: `|A∩B| / min(|A|,|B|)`.
pub fn qgram_overlap(a: &str, b: &str, q: usize) -> f64 {
    let pa = qgram_profile(a, q);
    let pb = qgram_profile(b, q);
    let (na, nb) = (profile_size(&pa), profile_size(&pb));
    if na == 0 && nb == 0 {
        return 1.0;
    }
    if na == 0 || nb == 0 {
        return 0.0;
    }
    profile_intersection(&pa, &pb) as f64 / na.min(nb) as f64
}

/// The paper's trigram metric: Dice over padded character trigrams.
pub fn trigram(a: &str, b: &str) -> f64 {
    qgram_dice(a, b, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert_eq!(trigram("schema matching", "schema matching"), 1.0);
        assert_eq!(qgram_jaccard("abc", "abc", 3), 1.0);
        assert_eq!(qgram_overlap("abc", "abc", 3), 1.0);
        assert_eq!(qgram_cosine("abc", "abc", 3), 1.0);
    }

    #[test]
    fn cosine_edges() {
        assert_eq!(qgram_cosine("", "", 3), 1.0);
        assert_eq!(qgram_cosine("", "abc", 3), 0.0);
        assert_eq!(qgram_cosine("aaaa", "zzzz", 3), 0.0);
    }

    #[test]
    fn disjoint_strings() {
        assert_eq!(trigram("aaaa", "zzzz"), 0.0);
        assert_eq!(qgram_jaccard("aaaa", "zzzz", 3), 0.0);
    }

    #[test]
    fn both_empty_equal() {
        assert_eq!(trigram("", ""), 1.0);
        assert_eq!(trigram("", "abc"), 0.0);
    }

    #[test]
    fn case_and_punct_insensitive() {
        // Normalization is inherited from the tokenizer.
        assert_eq!(trigram("Cupid!", "cupid"), 1.0);
    }

    #[test]
    fn near_match_scores_high() {
        let s = trigram(
            "A formal perspective on the view selection problem",
            "A formal perspective on the view selection problem.",
        );
        assert_eq!(s, 1.0);
        let s2 = trigram(
            "Generic Schema Matching with Cupid",
            "Generic Schema Matchng with Cupid", // typo
        );
        assert!(s2 > 0.85 && s2 < 1.0);
    }

    #[test]
    fn unrelated_titles_score_low() {
        let s = trigram("Potter's Wheel", "Reference Reconciliation");
        assert!(s < 0.3);
    }

    #[test]
    fn dice_vs_jaccard_ordering() {
        // Dice >= Jaccard always (2x/(a+b) vs x/(a+b-x)).
        for (a, b) in [
            ("hello", "hallo"),
            ("data", "date"),
            ("vldb", "vldb journal"),
        ] {
            assert!(qgram_dice(a, b, 3) >= qgram_jaccard(a, b, 3));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn trigram_range_symmetry_identity(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
            let s = trigram(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - trigram(&b, &a)).abs() < 1e-12);
            prop_assert_eq!(trigram(&a, &a), 1.0);
        }

        #[test]
        fn jaccard_le_dice_le_cosine_le_overlap(a in "[a-z]{1,15}", b in "[a-z]{1,15}") {
            let j = qgram_jaccard(&a, &b, 2);
            let d = qgram_dice(&a, &b, 2);
            let c = qgram_cosine(&a, &b, 2);
            let o = qgram_overlap(&a, &b, 2);
            prop_assert!(j <= d + 1e-12);
            prop_assert!(d <= c + 1e-12); // AM >= GM on the denominators
            prop_assert!(c <= o + 1e-12);
        }
    }
}
