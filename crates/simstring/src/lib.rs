//! # moma-simstring — similarity measures for object matching
//!
//! MOMA's generic attribute matcher "is provided with a pair of attributes
//! to be matched, a similarity function to be evaluated (e.g. n-gram,
//! TF/IDF or affix) and a similarity threshold" (paper Section 2.2). This
//! crate implements that similarity-function library from scratch:
//!
//! * [`edit`] — Levenshtein and Damerau–Levenshtein distances with
//!   normalized similarities,
//! * [`jaro`] — Jaro and Jaro–Winkler,
//! * [`ngram`] — character q-gram profiles; the *trigram* (Dice) metric
//!   the paper's evaluation uses throughout Section 5,
//! * [`token`] — token-set measures (Jaccard, Dice, overlap, cosine) and
//!   Monge–Elkan with a secondary measure,
//! * [`tfidf`] — corpus-weighted TF-IDF cosine similarity,
//! * [`affix`] — common prefix/suffix similarity,
//! * [`phonetic`] — Soundex and an initials-aware person-name measure
//!   (Google Scholar "reduces authors' first names to their first letter",
//!   Section 5.4.3),
//! * [`numeric`] — year/number proximity,
//! * [`bounds`] — exact threshold bounds (size windows, minimum shared
//!   grams) for the q-gram measures, powering candidate pruning in
//!   `moma-core`,
//! * [`wbounds`] — the weighted (max-weight prefix filter) counterparts
//!   for TF-IDF cosine, powering the exact `Threshold` plan for the
//!   paper's bibliographic workload,
//! * [`normalize`] / [`tokenize`] — shared preprocessing,
//! * [`registry`] — a name-indexed registry ([`SimFn`]) so workflows,
//!   scripts and the self-tuner can select measures dynamically.
//!
//! All similarities return values in `[0, 1]` with `1` meaning equality;
//! property tests assert range, symmetry and identity laws.

pub mod affix;
pub mod bounds;
pub mod edit;
pub mod jaro;
pub mod ngram;
pub mod normalize;
pub mod numeric;
pub mod phonetic;
pub mod registry;
pub mod tfidf;
pub mod token;
pub mod tokenize;
pub mod wbounds;

pub use bounds::{qgram_measure_of, QgramMeasure};
pub use registry::{SimFn, Similarity};
pub use tfidf::TfIdfCorpus;
