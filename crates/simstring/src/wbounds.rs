//! Exact threshold bounds for *weighted* cosine similarity — the
//! max-weight prefix-filter arithmetic (Bayardo et al.'s all-pairs
//! idea) behind TF-IDF threshold pruning.
//!
//! Where [`crate::bounds`] prices q-gram thresholds in *counts*, the
//! weighted bounds price a TF-IDF threshold in the candidate's own
//! weights. Both sides are L2-normalized sparse vectors (see
//! [`crate::tfidf`]); for a query `x` with weights `w₀ ≥ w₁ ≥ …`
//! (descending) and any candidate `y` with `cos(x, y) ≥ t`:
//!
//! * **prefix filter** — `y` must share a token with the shortest
//!   prefix of `x` whose squared mass reaches `1 − t²`
//!   ([`min_prefix_len`]): if all shared tokens sit in the suffix, then
//!   `x·y ≤ ‖x_suffix‖·‖y‖ = √(1 − Σ_prefix wᵢ²) < t`,
//! * **minimum shared tokens** — with `c` shared tokens,
//!   `x·y ≤ c·maxw(x)·maxw(y)` and `x·y ≤ maxw(x)·√c` (Cauchy–Schwarz
//!   over the shared coordinates of a unit vector), so
//!   `c ≥ max(t/(maxw(x)·maxw(y)), (t/maxw(x))²)`
//!   ([`min_shared_tokens`]),
//! * **size window** — `c ≤ |y|` turns the second inequality into a
//!   lower bound on the candidate's token count; there is no upper
//!   bound (a huge near-duplicate vector can still be similar), so the
//!   window is `[⌈(t/maxw(x))²⌉, ∞)` ([`size_window`]) — the same
//!   `(lo, usize::MAX)` shape the Overlap measure has in
//!   [`crate::bounds`].
//!
//! All bounds carry the same `EPS` slack discipline as the unweighted
//! module: loosened in the *keeping* direction, so IEEE rounding can
//! only ever generate a borderline candidate (then score it exactly),
//! never prune one. The brute-force property tests at the bottom pin
//! the no-false-dismissal guarantee over random weight vectors.

/// Slack protecting the bounds against f64 rounding, always applied in
/// the keeping direction. Scoring-path error is ~1e-16 per operation;
/// 1e-9 dominates it for any realistic vector length.
const EPS: f64 = 1e-9;

/// Minimal prefix length `k` of a descending-weight unit vector such
/// that a candidate sharing **no** token with the first `k` entries
/// cannot reach cosine `t`: the first `k` with
/// `Σ_{i<k} wᵢ² ≥ 1 − t² + EPS`. Returns `weights_desc.len()` when no
/// prefix suffices (then every token must be probed — e.g. tiny `t`).
///
/// `weights_desc` must be sorted descending and L2-normalized (the
/// [`crate::tfidf::TfIdfCorpus::vector`] output re-sorted by weight).
pub fn min_prefix_len(weights_desc: &[f64], t: f64) -> usize {
    debug_assert!(
        weights_desc.windows(2).all(|w| w[0] >= w[1]),
        "weights must be sorted descending"
    );
    let target = 1.0 - t * t + EPS;
    let mut mass = 0.0;
    for (i, w) in weights_desc.iter().enumerate() {
        mass += w * w;
        if mass >= target {
            return i + 1;
        }
    }
    weights_desc.len()
}

/// Minimum number of shared tokens a candidate with maximum weight
/// `max_w_cand` must have with a query of maximum weight `max_w_query`
/// to possibly reach cosine `t`. Always ≥ 1 for `t > 0` (sharing
/// nothing means cosine 0).
pub fn min_shared_tokens(t: f64, max_w_query: f64, max_w_cand: f64) -> usize {
    debug_assert!(t > 0.0, "min_shared_tokens needs a positive threshold");
    if max_w_query <= 0.0 || max_w_cand <= 0.0 {
        return 1;
    }
    let by_product = t / (max_w_query * max_w_cand);
    let by_sqrt = (t / max_w_query) * (t / max_w_query);
    let c = by_product.max(by_sqrt);
    ((c - EPS).ceil().max(1.0)) as usize
}

/// Candidate token-count window `[lo, ∞)` for a query of maximum
/// weight `max_w_query` at threshold `t`: a candidate needs at least
/// `⌈(t/maxw)²⌉` tokens (it must share that many), and no token count
/// is too large.
pub fn size_window(t: f64, max_w_query: f64) -> (usize, usize) {
    debug_assert!(t > 0.0, "size_window needs a positive threshold");
    if max_w_query <= 0.0 {
        return (1, usize::MAX);
    }
    let lo = (t / max_w_query) * (t / max_w_query);
    (((lo - EPS).ceil().max(1.0)) as usize, usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_of_uniform_vector() {
        // 4 equal weights, each ½ of the squared mass is 0.25.
        let w = [0.5f64; 4];
        // t = 1: any shared prefix token required → k = 1.
        assert_eq!(min_prefix_len(&w, 1.0), 1);
        // t = 0.8 → need mass ≥ 0.36 → 2 entries.
        assert_eq!(min_prefix_len(&w, 0.8), 2);
        // At exactly t² = 0.5 the two-entry suffix *ties* the threshold
        // (dot can equal t), so a third prefix entry is required.
        assert_eq!(min_prefix_len(&w, (0.5f64).sqrt()), 3);
        // Tiny t: no prefix short of everything suffices.
        assert_eq!(min_prefix_len(&w, 0.1), 4);
        assert_eq!(min_prefix_len(&[], 0.5), 0);
    }

    #[test]
    fn skewed_vector_has_short_prefix() {
        // One dominant token: at a high threshold the prefix is just it.
        let mut w = vec![0.99f64];
        let rest = (1.0f64 - 0.99 * 0.99).sqrt() / 3.0f64.sqrt();
        w.extend([rest; 3]);
        assert_eq!(min_prefix_len(&w, 0.9), 1);
    }

    #[test]
    fn min_shared_examples() {
        // Uniform 4-token unit vectors: maxw = 0.5. t = 0.9:
        // by_product = 0.9/0.25 = 3.6, by_sqrt = 3.24 → 4.
        assert_eq!(min_shared_tokens(0.9, 0.5, 0.5), 4);
        // Dominant weights: one shared token can be enough.
        assert_eq!(min_shared_tokens(0.5, 0.9, 0.9), 1);
        // Degenerate weights fall back to the trivial bound.
        assert_eq!(min_shared_tokens(0.5, 0.0, 0.5), 1);
    }

    #[test]
    fn size_window_shape() {
        let (lo, hi) = size_window(0.9, 0.5);
        assert_eq!(hi, usize::MAX);
        assert_eq!(lo, 4); // (0.9/0.5)² = 3.24 → 4
        assert_eq!(size_window(0.5, 1.0), (1, usize::MAX));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Build a normalized sparse vector over token ids 0..n from raw
    /// positive weights.
    fn unit_vector(raw: &[(u8, u8)]) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = Vec::new();
        for &(id, w) in raw {
            let w = f64::from(w) + 1.0;
            match v.binary_search_by_key(&u32::from(id), |e| e.0) {
                Ok(i) => v[i].1 += w,
                Err(i) => v.insert(i, (u32::from(id), w)),
            }
        }
        let norm = v.iter().map(|e| e.1 * e.1).sum::<f64>().sqrt();
        for e in &mut v {
            e.1 /= norm;
        }
        v
    }

    fn cosine(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
        crate::tfidf::dot(a, b)
    }

    proptest! {
        /// Brute-force soundness over random weighted vectors: whenever
        /// a pair truly reaches the threshold, the candidate (a) shares
        /// a token with the query's minimal prefix, (b) shares at least
        /// `min_shared_tokens`, and (c) has a token count inside the
        /// size window. No bound ever dismisses a true match.
        #[test]
        fn weighted_bounds_never_dismiss_a_true_match(
            xa in prop::collection::vec((0u8..12, 0u8..9), 1..8),
            ya in prop::collection::vec((0u8..12, 0u8..9), 1..8),
            t in 0.05f64..=1.0,
        ) {
            let x = unit_vector(&xa);
            let y = unit_vector(&ya);
            if cosine(&x, &y) >= t {
                // (a) prefix filter over x's descending weights.
                let mut desc: Vec<(u32, f64)> = x.clone();
                desc.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                let weights: Vec<f64> = desc.iter().map(|e| e.1).collect();
                let k = min_prefix_len(&weights, t);
                let shares_prefix = desc[..k]
                    .iter()
                    .any(|(id, _)| y.binary_search_by_key(id, |e| e.0).is_ok());
                prop_assert!(shares_prefix, "prefix of len {k} missed a true match");
                // (b) minimum shared tokens.
                let shared = x
                    .iter()
                    .filter(|(id, _)| y.binary_search_by_key(id, |e| e.0).is_ok())
                    .count();
                let maxw_x = weights[0];
                let maxw_y = y.iter().map(|e| e.1).fold(0.0, f64::max);
                prop_assert!(shared >= min_shared_tokens(t, maxw_x, maxw_y));
                // (c) size window.
                let (lo, hi) = size_window(t, maxw_x);
                prop_assert!((lo..=hi).contains(&y.len()));
            }
        }

        /// The prefix length is monotone: tighter thresholds need
        /// shorter prefixes (never longer).
        #[test]
        fn prefix_len_monotone_in_threshold(
            xa in prop::collection::vec((0u8..12, 0u8..9), 1..8),
            t1 in 0.05f64..=1.0,
            t2 in 0.05f64..=1.0,
        ) {
            let x = unit_vector(&xa);
            let mut weights: Vec<f64> = x.iter().map(|e| e.1).collect();
            weights.sort_by(|a, b| b.total_cmp(a));
            let (lo_t, hi_t) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(min_prefix_len(&weights, hi_t) <= min_prefix_len(&weights, lo_t));
        }
    }
}
