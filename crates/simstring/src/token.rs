//! Token-level similarity measures.

use moma_table::FxHashSet;

use crate::jaro::jaro_winkler;
use crate::tokenize::words;

fn token_sets(a: &str, b: &str) -> (FxHashSet<String>, FxHashSet<String>) {
    (
        words(a).into_iter().collect(),
        words(b).into_iter().collect(),
    )
}

/// Jaccard similarity over word-token sets.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice similarity over word-token sets.
pub fn token_dice(a: &str, b: &str) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

/// Overlap coefficient over word-token sets.
pub fn token_overlap(a: &str, b: &str) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len().min(sb.len()) as f64
}

/// Unweighted cosine similarity over word-token sets.
pub fn token_cosine(a: &str, b: &str) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    (inter as f64 / ((sa.len() as f64).sqrt() * (sb.len() as f64).sqrt())).min(1.0)
}

/// Monge–Elkan similarity: mean over tokens of `a` of the best secondary
/// similarity (Jaro–Winkler) against tokens of `b`. Asymmetric by
/// definition; [`monge_elkan_sym`] symmetrizes.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = words(a);
    let tb = words(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for x in &ta {
        let best = tb.iter().map(|y| jaro_winkler(x, y)).fold(0.0f64, f64::max);
        total += best;
    }
    (total / ta.len() as f64).min(1.0)
}

/// Symmetrized Monge–Elkan: mean of both directions.
pub fn monge_elkan_sym(a: &str, b: &str) -> f64 {
    (monge_elkan(a, b) + monge_elkan(b, a)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical() {
        for f in [
            token_jaccard,
            token_dice,
            token_overlap,
            token_cosine,
            monge_elkan_sym,
        ] {
            assert_eq!(f("view selection problem", "view selection problem"), 1.0);
        }
    }

    #[test]
    fn disjoint() {
        for f in [token_jaccard, token_dice, token_overlap, token_cosine] {
            assert_eq!(f("aaa bbb", "ccc ddd"), 0.0);
        }
    }

    #[test]
    fn empties() {
        assert_eq!(token_jaccard("", ""), 1.0);
        assert_eq!(token_dice("", "x"), 0.0);
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
    }

    #[test]
    fn word_order_invariance() {
        assert_eq!(
            token_jaccard("data cleaning problems", "problems cleaning data"),
            1.0
        );
    }

    #[test]
    fn half_overlap_values() {
        // {a,b} vs {b,c}: inter 1, union 3.
        assert!((token_jaccard("a b", "b c") - 1.0 / 3.0).abs() < 1e-12);
        assert!((token_dice("a b", "b c") - 0.5).abs() < 1e-12);
        assert!((token_overlap("a b", "b c") - 0.5).abs() < 1e-12);
        assert!((token_cosine("a b", "b c") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_tolerates_token_typos() {
        let s = monge_elkan_sym("andreas thor", "andreas tohr");
        assert!(s > 0.85, "got {s}");
    }

    #[test]
    fn monge_elkan_subset_asymmetry() {
        // Every token of "erhard" is found in "erhard rahm" -> direction 1.
        assert_eq!(monge_elkan("erhard", "erhard rahm"), 1.0);
        assert!(monge_elkan("erhard rahm", "erhard") < 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ranges(a in "[a-z ]{0,24}", b in "[a-z ]{0,24}") {
            for f in [token_jaccard, token_dice, token_overlap, token_cosine, monge_elkan_sym] {
                let s = f(&a, &b);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            }
        }

        #[test]
        fn symmetry(a in "[a-z ]{0,24}", b in "[a-z ]{0,24}") {
            for f in [token_jaccard, token_dice, token_overlap, token_cosine, monge_elkan_sym] {
                prop_assert!((f(&a, &b) - f(&b, &a)).abs() < 1e-12);
            }
        }
    }
}
