//! # moma-tune — self-tuning of match configurations
//!
//! "Similar to the E-Tuner approach for schema matching, MOMA therefore
//! will provide self-tuning capabilities to automatically select matchers
//! and mappings and to find optimal configuration parameters. … For
//! suitable training data these parameters can be optimized by standard
//! machine learning schemes, e.g. using decision trees." (paper
//! Section 2.2)
//!
//! This crate implements that sketch:
//!
//! * [`dataset`] — labeled candidate pairs with per-measure similarity
//!   feature vectors, derived from gold standards,
//! * [`split`] — deterministic train/test splitting,
//! * [`grid`] — exhaustive search over (similarity function, threshold)
//!   configurations maximizing training F-measure,
//! * [`tree`] — a CART decision-tree learner (Gini impurity) over the
//!   feature vectors, usable when no single threshold separates matches
//!   from non-matches.

pub mod dataset;
pub mod grid;
pub mod split;
pub mod tree;

pub use dataset::{build_dataset, candidate_pairs, FeatureSpec, LabeledPair};
pub use grid::{GridResult, GridSearch};
pub use split::train_test_split;
pub use tree::{DecisionTree, TreeConfig};
