//! Deterministic train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::LabeledPair;

/// Shuffle deterministically and split with `train_ratio` of the data in
/// the first returned vector.
///
/// The split is stratified by label: positives and negatives are
/// shuffled and cut separately, so both halves see the same class
/// balance. Matching gold standards are tiny relative to the candidate
/// space (tens of positives among tens of thousands of pairs); an
/// unstratified cut routinely lands enough positives on one side to
/// skew every downstream F-measure.
pub fn train_test_split(
    pairs: Vec<LabeledPair>,
    train_ratio: f64,
    seed: u64,
) -> (Vec<LabeledPair>, Vec<LabeledPair>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ratio = train_ratio.clamp(0.0, 1.0);
    let (mut pos, mut neg): (Vec<_>, Vec<_>) = pairs.into_iter().partition(|p| p.label);
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut class in [pos, neg] {
        let cut = ((class.len() as f64) * ratio).round() as usize;
        test.extend(class.split_off(cut.min(class.len())));
        train.extend(class);
    }
    // Re-shuffle so neither half is ordered positives-first.
    train.shuffle(&mut rng);
    test.shuffle(&mut rng);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: usize) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| LabeledPair {
                domain: i as u32,
                range: i as u32,
                features: vec![i as f64 / n as f64],
                label: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_split(pairs(100), 0.7, 1);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn deterministic() {
        let (t1, _) = train_test_split(pairs(50), 0.5, 9);
        let (t2, _) = train_test_split(pairs(50), 0.5, 9);
        let ids1: Vec<u32> = t1.iter().map(|p| p.domain).collect();
        let ids2: Vec<u32> = t2.iter().map(|p| p.domain).collect();
        assert_eq!(ids1, ids2);
        // A different seed shuffles differently.
        let (t3, _) = train_test_split(pairs(50), 0.5, 10);
        let ids3: Vec<u32> = t3.iter().map(|p| p.domain).collect();
        assert_ne!(ids1, ids3);
    }

    #[test]
    fn partition_is_complete() {
        let (train, test) = train_test_split(pairs(33), 0.6, 3);
        let mut all: Vec<u32> = train.iter().chain(test.iter()).map(|p| p.domain).collect();
        all.sort_unstable();
        assert_eq!(all, (0..33u32).collect::<Vec<_>>());
    }

    /// Pairs with an arbitrary positive rate (`num`/`den` positive).
    fn skewed_pairs(n: usize, num: usize, den: usize) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| LabeledPair {
                domain: i as u32,
                range: i as u32,
                features: vec![i as f64 / n as f64],
                label: i % den < num,
            })
            .collect()
    }

    /// The stratification invariant: for *every* label class, the number
    /// of its members landing in `train` is within ±1 of the class size
    /// times the global train ratio — no rounding scheme may shift a
    /// whole extra member, however skewed the class balance.
    fn assert_stratified(pairs: Vec<LabeledPair>, ratio: f64, seed: u64) {
        let class_sizes = [
            pairs.iter().filter(|p| p.label).count(),
            pairs.iter().filter(|p| !p.label).count(),
        ];
        let (train, test) = train_test_split(pairs, ratio, seed);
        for (label, class_n) in [(true, class_sizes[0]), (false, class_sizes[1])] {
            let in_train = train.iter().filter(|p| p.label == label).count() as f64;
            let expected = class_n as f64 * ratio;
            assert!(
                (in_train - expected).abs() <= 1.0,
                "label={label}: {in_train} of {class_n} in train, expected ~{expected} \
                 (ratio={ratio}, seed={seed})"
            );
            let in_test = test.iter().filter(|p| p.label == label).count();
            assert_eq!(in_train as usize + in_test, class_n, "class must partition");
        }
    }

    #[test]
    fn stratified_within_one_of_global_ratio() {
        // Sweep class skews (down to 1-in-20 positives, the matching
        // regime: tiny gold standards), ratios and seeds.
        for (num, den) in [(1usize, 2usize), (1, 3), (1, 10), (1, 20), (9, 10)] {
            for ratio in [0.3, 0.5, 0.7, 0.8] {
                for seed in [1u64, 7, 42] {
                    assert_stratified(skewed_pairs(100, num, den), ratio, seed);
                    assert_stratified(skewed_pairs(37, num, den), ratio, seed);
                }
            }
        }
    }

    #[test]
    fn stratified_with_single_member_class() {
        // One positive among 50: it must land on exactly one side and
        // the ±1 invariant still holds.
        assert_stratified(skewed_pairs(50, 1, 50), 0.7, 3);
    }

    #[test]
    fn single_class_input_splits_cleanly() {
        // All-negative input: stratification degenerates to a plain cut.
        let all_neg: Vec<LabeledPair> = skewed_pairs(40, 0, 1);
        let (train, test) = train_test_split(all_neg, 0.75, 2);
        assert_eq!(train.len(), 30);
        assert_eq!(test.len(), 10);
        assert!(train.iter().chain(test.iter()).all(|p| !p.label));
    }

    #[test]
    fn extreme_ratios() {
        let (train, test) = train_test_split(pairs(10), 0.0, 1);
        assert!(train.is_empty());
        assert_eq!(test.len(), 10);
        let (train, test) = train_test_split(pairs(10), 1.0, 1);
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
    }
}
