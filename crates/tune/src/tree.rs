//! CART decision-tree learner over similarity feature vectors.
//!
//! The paper names decision trees as the standard machine-learning scheme
//! for optimizing matcher parameters (Section 2.2). A tree can express
//! configurations a single threshold cannot, e.g. "title ≥ 0.7 AND year
//! = 1, OR title ≥ 0.9".

use crate::dataset::LabeledPair;

/// Tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_split: 8,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the `< threshold` child.
        left: usize,
        /// Index of the `>= threshold` child.
        right: usize,
    },
}

/// A trained CART classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fit a tree on labeled pairs.
    pub fn fit(pairs: &[LabeledPair], config: TreeConfig) -> DecisionTree {
        let mut tree = DecisionTree { nodes: Vec::new() };
        let indexes: Vec<usize> = (0..pairs.len()).collect();
        tree.grow(pairs, &indexes, config, 0);
        tree
    }

    fn grow(
        &mut self,
        pairs: &[LabeledPair],
        subset: &[usize],
        config: TreeConfig,
        depth: usize,
    ) -> usize {
        let positives = subset.iter().filter(|&&i| pairs[i].label).count();
        let prob = if subset.is_empty() {
            0.0
        } else {
            positives as f64 / subset.len() as f64
        };
        let pure = positives == 0 || positives == subset.len();
        if depth >= config.max_depth || subset.len() < config.min_split || pure {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { prob });
            return id;
        }
        match best_split(pairs, subset) {
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { prob });
                id
            }
            Some((feature, threshold, _gain)) => {
                let (left_set, right_set): (Vec<usize>, Vec<usize>) = subset
                    .iter()
                    .partition(|&&i| pairs[i].features[feature] < threshold);
                if left_set.is_empty() || right_set.is_empty() {
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { prob });
                    return id;
                }
                // Reserve the split slot, then grow children.
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { prob: 0.0 }); // placeholder
                let left = self.grow(pairs, &left_set, config, depth + 1);
                let right = self.grow(pairs, &right_set, config, depth + 1);
                self.nodes[id] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                id
            }
        }
    }

    /// Probability that `features` describes a match.
    pub fn predict_prob(&self, features: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features.get(*feature).copied().unwrap_or(0.0) < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Binary classification at probability 0.5.
    pub fn classify(&self, features: &[f64]) -> bool {
        self.predict_prob(features) >= 0.5
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Render as a nested rule text (for DESIGN/EXPERIMENTS docs).
    pub fn render_rules(&self, feature_names: &[&str]) -> String {
        fn render(nodes: &[Node], id: usize, names: &[&str], indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match &nodes[id] {
                Node::Leaf { prob } => {
                    out.push_str(&format!("{pad}=> match probability {prob:.2}\n"));
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let name = names.get(*feature).copied().unwrap_or("?");
                    out.push_str(&format!("{pad}if {name} < {threshold:.3}:\n"));
                    render(nodes, *left, names, indent + 1, out);
                    out.push_str(&format!("{pad}else ({name} >= {threshold:.3}):\n"));
                    render(nodes, *right, names, indent + 1, out);
                }
            }
        }
        let mut out = String::new();
        if !self.nodes.is_empty() {
            render(&self.nodes, 0, feature_names, 0, &mut out);
        }
        out
    }
}

fn gini(positives: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = positives as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// Best (feature, threshold, gain) over all features by Gini impurity
/// reduction; thresholds are midpoints between consecutive distinct
/// feature values.
fn best_split(pairs: &[LabeledPair], subset: &[usize]) -> Option<(usize, f64, f64)> {
    let n_features = pairs.first()?.features.len();
    let total = subset.len();
    let total_pos = subset.iter().filter(|&&i| pairs[i].label).count();
    let parent = gini(total_pos, total);
    let mut best: Option<(usize, f64, f64)> = None;
    for feature in 0..n_features {
        let mut values: Vec<(f64, bool)> = subset
            .iter()
            .map(|&i| (pairs[i].features[feature], pairs[i].label))
            .collect();
        values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut left_pos = 0usize;
        for split_at in 1..values.len() {
            if values[split_at - 1].1 {
                left_pos += 1;
            }
            if values[split_at].0 <= values[split_at - 1].0 + 1e-12 {
                continue; // no distinct boundary here
            }
            let threshold = (values[split_at - 1].0 + values[split_at].0) / 2.0;
            let left_n = split_at;
            let right_n = total - split_at;
            let right_pos = total_pos - left_pos;
            let weighted = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / total as f64;
            let gain = parent - weighted;
            if gain > best.map(|(_, _, g)| g).unwrap_or(1e-9) {
                best = Some((feature, threshold, gain));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(features: Vec<f64>, label: bool) -> LabeledPair {
        LabeledPair {
            domain: 0,
            range: 0,
            features,
            label,
        }
    }

    #[test]
    fn learns_single_threshold() {
        let data: Vec<LabeledPair> = (0..100)
            .map(|i| {
                let v = i as f64 / 100.0;
                pair(vec![v], v >= 0.6)
            })
            .collect();
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        assert!(tree.classify(&[0.9]));
        assert!(!tree.classify(&[0.3]));
        assert!(tree.depth() <= 3);
        // The learned boundary sits near 0.6.
        assert!(!tree.classify(&[0.55]));
        assert!(tree.classify(&[0.65]));
    }

    #[test]
    fn learns_conjunction() {
        // Match iff title >= 0.7 AND year == 1 — inexpressible by one
        // threshold on one feature. The two features vary independently
        // so that no single-feature rule can explain the labels.
        let mut data = Vec::new();
        for i in 0..200 {
            let title = (i % 10) as f64 / 10.0;
            let year = if (i / 10) % 2 == 0 { 1.0 } else { 0.0 };
            data.push(pair(vec![title, year], title >= 0.7 && year == 1.0));
        }
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        assert!(tree.classify(&[0.9, 1.0]));
        assert!(!tree.classify(&[0.9, 0.0]));
        assert!(!tree.classify(&[0.5, 1.0]));
        // And the tree beats the best single threshold on either feature.
        let tree_f1 = crate::dataset::f1_of(&data, |p| tree.classify(&p.features));
        let grid = crate::grid::GridSearch::default()
            .search(&data, &data)
            .unwrap();
        assert!(
            tree_f1 > grid.test_f1,
            "tree {tree_f1} vs grid {}",
            grid.test_f1
        );
        assert_eq!(tree_f1, 1.0);
    }

    #[test]
    fn pure_nodes_stop_growth() {
        let data = vec![pair(vec![0.1], false); 50];
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert!(!tree.classify(&[0.9]));
    }

    #[test]
    fn empty_dataset() {
        let tree = DecisionTree::fit(&[], TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert!(!tree.classify(&[1.0]));
    }

    #[test]
    fn respects_max_depth() {
        let data: Vec<LabeledPair> = (0..256)
            .map(|i| pair(vec![i as f64 / 256.0], (i / 2) % 2 == 0))
            .collect();
        let tree = DecisionTree::fit(
            &data,
            TreeConfig {
                max_depth: 2,
                min_split: 2,
            },
        );
        assert!(tree.depth() <= 3); // root + 2 levels
    }

    #[test]
    fn rules_render() {
        let data: Vec<LabeledPair> = (0..100)
            .map(|i| pair(vec![i as f64 / 100.0], i >= 60))
            .collect();
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        let rules = tree.render_rules(&["title"]);
        assert!(rules.contains("if title <"));
        assert!(rules.contains("match probability"));
    }

    #[test]
    fn probabilities_reflect_purity() {
        let mut data: Vec<LabeledPair> = (0..40).map(|_| pair(vec![0.9], true)).collect();
        data.extend((0..10).map(|_| pair(vec![0.9], false)));
        data.extend((0..50).map(|_| pair(vec![0.1], false)));
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        let p_hi = tree.predict_prob(&[0.9]);
        let p_lo = tree.predict_prob(&[0.1]);
        assert!(p_hi > 0.7, "high side {p_hi}");
        assert!(p_lo < 0.1, "low side {p_lo}");
    }
}
