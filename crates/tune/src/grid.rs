//! Grid search over (feature, threshold) matcher configurations.
//!
//! "For attribute matching choices must be made on which attributes to
//! match, and which similarity function and similarity threshold to
//! apply" (paper Section 2.2). The grid searcher scores every feature
//! (attribute pair × similarity function) at every candidate threshold on
//! the training split and reports the F-optimal configuration.
//!
//! Selection uses k-fold cross-validation over the training split
//! (mean per-fold F-measure) rather than aggregate training F-measure:
//! with few gold positives, the aggregate picks configurations whose
//! advantage is a handful of lucky pairs, and those do not generalize.

use crate::dataset::{f1_of, LabeledPair};

/// Grid-search configuration.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Thresholds to evaluate (default: 0.05 steps over `[0.3, 0.95]`).
    pub thresholds: Vec<f64>,
    /// Cross-validation folds for selection (default 5; `< 2` disables
    /// CV and selects on aggregate training F-measure).
    pub folds: usize,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self {
            thresholds: (6..=19).map(|i| i as f64 * 0.05).collect(),
            folds: 5,
        }
    }
}

/// Result of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult {
    /// Index of the winning feature.
    pub feature: usize,
    /// Winning threshold.
    pub threshold: f64,
    /// F-measure on the training split.
    pub train_f1: f64,
    /// F-measure on the held-out split.
    pub test_f1: f64,
}

/// Item indexes of fold `k` out of `folds` over `n` items — the stride
/// scheme used by cross-validation. Deterministic, and balanced: every
/// fold gets `n / folds` items, the first `n % folds` folds one more.
fn fold_indexes(n: usize, folds: usize, k: usize) -> impl Iterator<Item = usize> {
    (k..n).step_by(folds)
}

impl GridSearch {
    /// Mean per-fold F-measure of one configuration. Folds are taken by
    /// index stride ([`fold_indexes`]), which is deterministic and keeps
    /// positives (already shuffled by the train/test split) spread
    /// across folds.
    fn cv_score(&self, train: &[LabeledPair], feature: usize, threshold: f64) -> f64 {
        if self.folds < 2 || train.len() < self.folds {
            return f1_of(train, |p| p.features[feature] >= threshold);
        }
        let mut fold: Vec<&LabeledPair> = Vec::with_capacity(train.len() / self.folds + 1);
        let mut sum = 0.0;
        for k in 0..self.folds {
            fold.clear();
            fold.extend(fold_indexes(train.len(), self.folds, k).map(|i| &train[i]));
            let mut tp = 0usize;
            let mut fp = 0usize;
            let mut fn_ = 0usize;
            for p in &fold {
                match (p.features[feature] >= threshold, p.label) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    (false, false) => {}
                }
            }
            if tp > 0 {
                let precision = tp as f64 / (tp + fp) as f64;
                let recall = tp as f64 / (tp + fn_) as f64;
                sum += 2.0 * precision * recall / (precision + recall);
            }
        }
        sum / self.folds as f64
    }

    /// Search all (feature, threshold) combinations, selecting by
    /// cross-validated F-measure; ties break toward the higher threshold
    /// (more precise matcher).
    pub fn search(&self, train: &[LabeledPair], test: &[LabeledPair]) -> Option<GridResult> {
        let n_features = train.first().map(|p| p.features.len())?;
        let mut best: Option<(GridResult, f64)> = None;
        for feature in 0..n_features {
            for &threshold in &self.thresholds {
                let score = self.cv_score(train, feature, threshold);
                let better = match &best {
                    None => true,
                    Some((b, best_score)) => {
                        score > best_score + 1e-12
                            || ((score - best_score).abs() <= 1e-12 && threshold > b.threshold)
                    }
                };
                if better {
                    let train_f1 = f1_of(train, |p| p.features[feature] >= threshold);
                    best = Some((
                        GridResult {
                            feature,
                            threshold,
                            train_f1,
                            test_f1: 0.0,
                        },
                        score,
                    ));
                }
            }
        }
        best.map(|(mut b, _)| {
            b.test_f1 = f1_of(test, |p| p.features[b.feature] >= b.threshold);
            b
        })
    }

    /// Full per-configuration sweep: `(feature, threshold, train F)` for
    /// every cell — the data behind tuning curves/ablations.
    pub fn sweep(&self, train: &[LabeledPair]) -> Vec<(usize, f64, f64)> {
        let n_features = train.first().map(|p| p.features.len()).unwrap_or(0);
        let mut out = Vec::with_capacity(n_features * self.thresholds.len());
        for feature in 0..n_features {
            for &threshold in &self.thresholds {
                out.push((
                    feature,
                    threshold,
                    f1_of(train, |p| p.features[feature] >= threshold),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0: noisy garbage; feature 1: clean separator at 0.6.
    fn dataset(n: usize) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| {
                let label = i % 3 == 0;
                let clean = if label { 0.8 } else { 0.3 };
                let noisy = (i % 7) as f64 / 7.0;
                LabeledPair {
                    domain: i as u32,
                    range: i as u32,
                    features: vec![noisy, clean],
                    label,
                }
            })
            .collect()
    }

    #[test]
    fn finds_clean_feature() {
        let data = dataset(90);
        let (train, test) = crate::split::train_test_split(data, 0.7, 5);
        let result = GridSearch::default().search(&train, &test).unwrap();
        assert_eq!(result.feature, 1);
        assert!(result.threshold > 0.3 && result.threshold <= 0.8);
        assert_eq!(result.train_f1, 1.0);
        assert_eq!(result.test_f1, 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(GridSearch::default().search(&[], &[]).is_none());
    }

    #[test]
    fn tie_breaks_toward_precision() {
        // All thresholds in (0.3, 0.8] separate perfectly; the search
        // must prefer the highest.
        let data = dataset(30);
        let result = GridSearch::default().search(&data, &data).unwrap();
        assert!(
            (result.threshold - 0.8).abs() < 1e-9,
            "got {}",
            result.threshold
        );
    }

    #[test]
    fn five_fold_cv_folds_are_balanced() {
        // Fold sizes may differ by at most 1, for any n — including
        // n not divisible by the fold count (PR-2 landed 5-fold CV
        // selection without pinning this).
        for n in [5usize, 23, 70, 99, 100, 101] {
            for folds in [2usize, 5, 7] {
                let sizes: Vec<usize> = (0..folds)
                    .map(|k| fold_indexes(n, folds, k).count())
                    .collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} folds={folds} sizes={sizes:?}");
                assert_eq!(sizes.iter().sum::<usize>(), n, "folds must partition");
            }
        }
    }

    #[test]
    fn cv_folds_are_disjoint_and_complete() {
        let (n, folds) = (83usize, 5usize);
        let mut seen = vec![false; n];
        for k in 0..folds {
            for i in fold_indexes(n, folds, k) {
                assert!(!seen[i], "index {i} in two folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "index missing from all folds");
    }

    #[test]
    fn stride_folds_spread_shuffled_positives() {
        // With positives spread by the (label-stratified, shuffled)
        // split, a stride fold of a 1-in-3 dataset holds roughly a third
        // positives — no fold is all-positive or all-negative.
        let data = dataset(90);
        let (train, _) = crate::split::train_test_split(data, 0.8, 11);
        for k in 0..5usize {
            let pos = fold_indexes(train.len(), 5, k)
                .filter(|&i| train[i].label)
                .count();
            let size = fold_indexes(train.len(), 5, k).count();
            assert!(pos > 0 && pos < size, "fold {k}: {pos}/{size} positives");
        }
    }

    #[test]
    fn sweep_covers_grid() {
        let data = dataset(30);
        let gs = GridSearch::default();
        let sweep = gs.sweep(&data);
        assert_eq!(sweep.len(), 2 * gs.thresholds.len());
        let best = sweep.iter().map(|&(_, _, f)| f).fold(0.0f64, f64::max);
        assert_eq!(best, 1.0);
    }
}
