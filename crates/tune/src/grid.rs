//! Grid search over (feature, threshold) matcher configurations.
//!
//! "For attribute matching choices must be made on which attributes to
//! match, and which similarity function and similarity threshold to
//! apply" (paper Section 2.2). The grid searcher scores every feature
//! (attribute pair × similarity function) at every candidate threshold on
//! the training split and reports the F-optimal configuration.

use crate::dataset::{f1_of, LabeledPair};

/// Grid-search configuration.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Thresholds to evaluate (default: 0.05 steps over `[0.3, 0.95]`).
    pub thresholds: Vec<f64>,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self { thresholds: (6..=19).map(|i| i as f64 * 0.05).collect() }
    }
}

/// Result of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult {
    /// Index of the winning feature.
    pub feature: usize,
    /// Winning threshold.
    pub threshold: f64,
    /// F-measure on the training split.
    pub train_f1: f64,
    /// F-measure on the held-out split.
    pub test_f1: f64,
}

impl GridSearch {
    /// Search all (feature, threshold) combinations; ties break toward
    /// the higher threshold (more precise matcher).
    pub fn search(&self, train: &[LabeledPair], test: &[LabeledPair]) -> Option<GridResult> {
        let n_features = train.first().map(|p| p.features.len())?;
        let mut best: Option<GridResult> = None;
        for feature in 0..n_features {
            for &threshold in &self.thresholds {
                let f1 = f1_of(train, |p| p.features[feature] >= threshold);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        f1 > b.train_f1 + 1e-12
                            || ((f1 - b.train_f1).abs() <= 1e-12 && threshold > b.threshold)
                    }
                };
                if better {
                    best = Some(GridResult { feature, threshold, train_f1: f1, test_f1: 0.0 });
                }
            }
        }
        best.map(|mut b| {
            b.test_f1 = f1_of(test, |p| p.features[b.feature] >= b.threshold);
            b
        })
    }

    /// Full per-configuration sweep: `(feature, threshold, train F)` for
    /// every cell — the data behind tuning curves/ablations.
    pub fn sweep(&self, train: &[LabeledPair]) -> Vec<(usize, f64, f64)> {
        let n_features = train.first().map(|p| p.features.len()).unwrap_or(0);
        let mut out = Vec::with_capacity(n_features * self.thresholds.len());
        for feature in 0..n_features {
            for &threshold in &self.thresholds {
                out.push((feature, threshold, f1_of(train, |p| p.features[feature] >= threshold)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0: noisy garbage; feature 1: clean separator at 0.6.
    fn dataset(n: usize) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| {
                let label = i % 3 == 0;
                let clean = if label { 0.8 } else { 0.3 };
                let noisy = (i % 7) as f64 / 7.0;
                LabeledPair {
                    domain: i as u32,
                    range: i as u32,
                    features: vec![noisy, clean],
                    label,
                }
            })
            .collect()
    }

    #[test]
    fn finds_clean_feature() {
        let data = dataset(90);
        let (train, test) = crate::split::train_test_split(data, 0.7, 5);
        let result = GridSearch::default().search(&train, &test).unwrap();
        assert_eq!(result.feature, 1);
        assert!(result.threshold > 0.3 && result.threshold <= 0.8);
        assert_eq!(result.train_f1, 1.0);
        assert_eq!(result.test_f1, 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(GridSearch::default().search(&[], &[]).is_none());
    }

    #[test]
    fn tie_breaks_toward_precision() {
        // All thresholds in (0.3, 0.8] separate perfectly; the search
        // must prefer the highest.
        let data = dataset(30);
        let result = GridSearch::default().search(&data, &data).unwrap();
        assert!((result.threshold - 0.8).abs() < 1e-9, "got {}", result.threshold);
    }

    #[test]
    fn sweep_covers_grid() {
        let data = dataset(30);
        let gs = GridSearch::default();
        let sweep = gs.sweep(&data);
        assert_eq!(sweep.len(), 2 * gs.thresholds.len());
        let best = sweep.iter().map(|&(_, _, f)| f).fold(0.0f64, f64::max);
        assert_eq!(best, 1.0);
    }
}
