//! Labeled training data for the self-tuner.

use moma_core::blocking::TrigramIndex;
use moma_datagen::GoldStandard;
use moma_model::{LdsId, SourceRegistry};
use moma_simstring::SimFn;

/// One similarity feature: an attribute pair scored by a measure.
#[derive(Debug, Clone)]
pub struct FeatureSpec {
    /// Attribute on the domain LDS.
    pub domain_attr: String,
    /// Attribute on the range LDS.
    pub range_attr: String,
    /// The similarity measure.
    pub sim: SimFn,
}

impl FeatureSpec {
    /// Convenience constructor.
    pub fn new(domain_attr: &str, range_attr: &str, sim: SimFn) -> Self {
        Self {
            domain_attr: domain_attr.into(),
            range_attr: range_attr.into(),
            sim,
        }
    }
}

/// A labeled candidate pair with its feature vector.
#[derive(Debug, Clone)]
pub struct LabeledPair {
    /// Domain instance index.
    pub domain: u32,
    /// Range instance index.
    pub range: u32,
    /// One similarity value per [`FeatureSpec`].
    pub features: Vec<f64>,
    /// Whether the pair is a true match (from the gold standard).
    pub label: bool,
}

/// Candidate pairs via trigram blocking on one attribute (floor 0.3),
/// plus every gold pair (training data must contain the positives even
/// when blocking would miss them).
pub fn candidate_pairs(
    registry: &SourceRegistry,
    domain: LdsId,
    range: LdsId,
    block_attr: &str,
    gold: &GoldStandard,
) -> Vec<(u32, u32)> {
    let d_lds = registry.lds(domain);
    let r_lds = registry.lds(range);
    let d_vals = d_lds.project(block_attr).expect("attribute");
    let r_vals = r_lds.project(block_attr).expect("attribute");
    let r_strings: Vec<(u32, String)> = r_vals
        .iter()
        .map(|(i, v)| (*i, v.to_match_string()))
        .collect();
    let index = TrigramIndex::build(r_strings.iter().map(|(i, s)| (*i, s.as_str())));
    let mut pairs: moma_table::FxHashSet<(u32, u32)> = Default::default();
    for (d_idx, v) in &d_vals {
        for cand in index.candidates(&v.to_match_string(), 0.3) {
            pairs.insert((*d_idx, cand));
        }
    }
    pairs.extend(gold.iter());
    let mut out: Vec<(u32, u32)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

/// Score every candidate pair under every feature and attach labels.
pub fn build_dataset(
    registry: &SourceRegistry,
    domain: LdsId,
    range: LdsId,
    specs: &[FeatureSpec],
    candidates: &[(u32, u32)],
    gold: &GoldStandard,
) -> Vec<LabeledPair> {
    let d_lds = registry.lds(domain);
    let r_lds = registry.lds(range);
    let slots: Vec<(usize, usize)> = specs
        .iter()
        .map(|s| {
            (
                d_lds.attr_slot(&s.domain_attr).expect("domain attr"),
                r_lds.attr_slot(&s.range_attr).expect("range attr"),
            )
        })
        .collect();
    candidates
        .iter()
        .map(|&(d, r)| {
            let features = specs
                .iter()
                .zip(&slots)
                .map(|(spec, &(ds, rs))| {
                    let dv = d_lds.get(d).and_then(|i| i.value(ds));
                    let rv = r_lds.get(r).and_then(|i| i.value(rs));
                    match (dv, rv) {
                        (Some(a), Some(b)) => {
                            spec.sim.eval(&a.to_match_string(), &b.to_match_string())
                        }
                        _ => 0.0,
                    }
                })
                .collect();
            LabeledPair {
                domain: d,
                range: r,
                features,
                label: gold.contains(d, r),
            }
        })
        .collect()
}

/// F-measure of a labeled prediction set.
pub fn f1_of(pairs: &[LabeledPair], predict: impl Fn(&LabeledPair) -> bool) -> f64 {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for p in pairs {
        match (predict(p), p.label) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fn_) as f64;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LogicalSource, ObjectType};

    fn setup() -> (SourceRegistry, LdsId, LdsId, GoldStandard) {
        let mut reg = SourceRegistry::new();
        let mut a = LogicalSource::new(
            "A",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        let mut b = LogicalSource::new(
            "B",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        let titles = [
            "efficient query processing",
            "adaptive schema matching",
            "robust data cleaning",
            "scalable similarity search",
        ];
        for (i, t) in titles.iter().enumerate() {
            a.insert_record(
                format!("a{i}"),
                vec![("title", (*t).into()), ("year", (2000 + i as u16).into())],
            )
            .unwrap();
            // B side: slightly perturbed copies.
            let noisy = t.replace('e', "3");
            b.insert_record(
                format!("b{i}"),
                vec![("title", noisy.into()), ("year", (2000 + i as u16).into())],
            )
            .unwrap();
        }
        let da = reg.register(a).unwrap();
        let db = reg.register(b).unwrap();
        let gold = GoldStandard::from_pairs((0..4).map(|i| (i as u32, i as u32)));
        (reg, da, db, gold)
    }

    #[test]
    fn candidates_include_gold() {
        let (reg, d, r, gold) = setup();
        let cands = candidate_pairs(&reg, d, r, "title", &gold);
        for (a, b) in gold.iter() {
            assert!(cands.contains(&(a, b)));
        }
    }

    #[test]
    fn dataset_features_and_labels() {
        let (reg, d, r, gold) = setup();
        let specs = vec![
            FeatureSpec::new("title", "title", SimFn::Levenshtein),
            FeatureSpec::new("year", "year", SimFn::Year(0)),
        ];
        let cands = candidate_pairs(&reg, d, r, "title", &gold);
        let data = build_dataset(&reg, d, r, &specs, &cands, &gold);
        assert_eq!(data.len(), cands.len());
        for p in &data {
            assert_eq!(p.features.len(), 2);
            assert!(p.features.iter().all(|f| (0.0..=1.0).contains(f)));
            if p.label {
                // True pairs share the year exactly.
                assert_eq!(p.features[1], 1.0);
            }
        }
        assert!(data.iter().any(|p| p.label));
    }

    #[test]
    fn f1_metric() {
        let pairs = vec![
            LabeledPair {
                domain: 0,
                range: 0,
                features: vec![0.9],
                label: true,
            },
            LabeledPair {
                domain: 1,
                range: 1,
                features: vec![0.2],
                label: true,
            },
            LabeledPair {
                domain: 0,
                range: 1,
                features: vec![0.8],
                label: false,
            },
        ];
        // Predict by threshold 0.5: tp=1, fp=1, fn=1 -> P=0.5 R=0.5 F=0.5.
        assert!((f1_of(&pairs, |p| p.features[0] >= 0.5) - 0.5).abs() < 1e-12);
        // Nothing predicted -> F 0.
        assert_eq!(f1_of(&pairs, |_| false), 0.0);
    }
}
