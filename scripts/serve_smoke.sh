#!/usr/bin/env bash
# serve_smoke.sh — crash-recovery gate for `moma serve`.
#
# Exercises every endpoint against a live server, then proves WAL
# durability the hard way: kill -9 the server mid-delta-stream, restart
# it with --replay, and require the recovered state to be bit-identical
# to a clean run that executed exactly the same surviving command
# prefix (the delta stream is deterministic, so "same prefix" is just
# "same number of delta commands").
#
# Usage: scripts/serve_smoke.sh [--bin-dir target/release]
# Needs: target/release/moma and target/release/moma_load (built
# beforehand; CI builds them in the shared release-build step).

set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=target/release
if [[ "${1:-}" == "--bin-dir" ]]; then
    BIN_DIR=$2
fi
MOMA=$BIN_DIR/moma
MOMA_LOAD=$BIN_DIR/moma_load
for bin in "$MOMA" "$MOMA_LOAD"; do
    [[ -x "$bin" ]] || { echo "serve_smoke: missing $bin (run: cargo build --release)"; exit 1; }
done

PORT_A=${MOMA_SMOKE_PORT_A:-7311}
PORT_B=${MOMA_SMOKE_PORT_B:-7312}
ADDR_A=127.0.0.1:$PORT_A
ADDR_B=127.0.0.1:$PORT_B
WORK=$(mktemp -d "${TMPDIR:-/tmp}/moma_serve_smoke.XXXXXX")

SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# ---------------------------------------------------------------- run A
echo "== run A: serve --wal, full endpoint smoke, then kill -9 mid-stream"
"$MOMA" serve --addr "$ADDR_A" --scale small --seed 7 --threads 2 \
    --wal "$WORK/a.wal" &
SERVER_PID=$!

# Endpoint conformance: ping/stats/match/compose/query/delta (2 deltas).
"$MOMA_LOAD" smoke --addr "$ADDR_A"
echo "SMOKE_OK"

# Deterministic delta stream, slowed down so the kill lands mid-stream.
"$MOMA_LOAD" stream --addr "$ADDR_A" --steps 400 --sleep-ms 25 &
STREAM_PID=$!
sleep 2

kill -9 "$SERVER_PID"
echo "== killed server A (pid $SERVER_PID) with SIGKILL"
SERVER_PID=""
# The stream client must notice the dead server; exit code 3 means
# "connection lost mid-stream", which is exactly what we arranged.
set +e
wait "$STREAM_PID"
STREAM_RC=$?
set -e
if [[ "$STREAM_RC" -ne 3 && "$STREAM_RC" -ne 0 ]]; then
    echo "serve_smoke: stream client exited $STREAM_RC (want 3, or 0 if it finished)"
    exit 1
fi
echo "STREAM_KILLED (client exit $STREAM_RC)"

# ------------------------------------------------------------- recovery
echo "== restart with --replay"
"$MOMA" serve --addr "$ADDR_A" --scale small --seed 7 --threads 2 \
    --wal "$WORK/a.wal" --replay &
SERVER_PID=$!

# How many delta commands survived? smoke sent 2, the stream sent K-2.
K=$("$MOMA_LOAD" stat --addr "$ADDR_A" --key commands.delta)
echo "== recovered server replayed $K delta command(s)"
if [[ "$K" -lt 3 ]]; then
    echo "serve_smoke: only $K delta commands recovered — kill landed before the stream ran"
    exit 1
fi

"$MOMA_LOAD" dump --addr "$ADDR_A" --dir "$WORK/dump_replayed"
"$MOMA_LOAD" shutdown --addr "$ADDR_A"
wait "$SERVER_PID" || true
SERVER_PID=""

# ---------------------------------------------------------------- run B
echo "== run B: clean server, same command prefix ($((K - 2)) stream steps)"
"$MOMA" serve --addr "$ADDR_B" --scale small --seed 7 --threads 2 \
    --wal "$WORK/b.wal" &
SERVER_PID=$!

"$MOMA_LOAD" smoke --addr "$ADDR_B"
"$MOMA_LOAD" stream --addr "$ADDR_B" --steps $((K - 2))
K_B=$("$MOMA_LOAD" stat --addr "$ADDR_B" --key commands.delta)
if [[ "$K_B" -ne "$K" ]]; then
    echo "serve_smoke: reference run has $K_B delta commands, want $K"
    exit 1
fi
"$MOMA_LOAD" dump --addr "$ADDR_B" --dir "$WORK/dump_clean"
"$MOMA_LOAD" shutdown --addr "$ADDR_B"
wait "$SERVER_PID" || true
SERVER_PID=""

# ---------------------------------------------------------------- gate
echo "== comparing recovered state against the clean run"
if diff -r "$WORK/dump_replayed" "$WORK/dump_clean"; then
    echo "BIT_IDENTICAL: replayed state matches the clean run byte for byte"
else
    echo "serve_smoke: FAIL — replayed state diverges from the clean run"
    exit 1
fi
