#!/usr/bin/env bash
# serve_smoke.sh — crash-recovery gate for `moma serve`.
#
# Exercises every endpoint against a live server, then proves the
# checkpointed, segment-rotated WAL the hard way:
#
#   1. kill -9 the server mid-delta-stream (after a mid-stream
#      checkpoint) and restart with --replay: the recovered server must
#      have restored that checkpoint and replayed only the log suffix
#      after it (bounded replay);
#   2. kill -9 the server *mid-checkpoint* (inside the staging window,
#      via MOMA_CHECKPOINT_FAULT_DELAY_MS) and restart again: the
#      half-published checkpoint must be invisible and recovery must
#      fall back to the previous one;
#   3. compare the recovered state against a clean run that executed
#      exactly the same command prefix — `diff -r` byte-identical (the
#      delta stream is deterministic, so "same prefix" is just "same
#      number of delta commands"). Run A frames part of that prefix as
#      one `batch_delta` group commit while run B sends the same items
#      singly, so the diff also proves group-commit replay equivalence;
#   4. overload leg: saturate a tiny write budget and connection cap,
#      asserting explicit busy/overloaded frames, responsive reads and
#      zero server panics;
#   5. run C: kill -9 *inside a background auto-checkpoint's* staging
#      window (--checkpoint-every-records + fault injection) and
#      recover via fallback to the previous checkpoint;
#   6. runs D/E: the sharded gate — a 4-shard server with per-shard WAL
#      directories takes traffic on every shard (hinted matches +
#      scattered deltas), is killed -9 mid-stream and restarted with
#      --replay --shards 4; each shard replays its own log, and the
#      recovered per-shard dump tree must be byte-identical to a clean
#      4-shard run of the same command prefix.
#
# Usage: scripts/serve_smoke.sh [--bin-dir target/release]
# Needs: target/release/moma and target/release/moma_load (built
# beforehand; CI builds them in the shared release-build step).

set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=target/release
if [[ "${1:-}" == "--bin-dir" ]]; then
    BIN_DIR=$2
fi
MOMA=$BIN_DIR/moma
MOMA_LOAD=$BIN_DIR/moma_load
for bin in "$MOMA" "$MOMA_LOAD"; do
    [[ -x "$bin" ]] || { echo "serve_smoke: missing $bin (run: cargo build --release)"; exit 1; }
done

PORT_A=${MOMA_SMOKE_PORT_A:-7311}
PORT_B=${MOMA_SMOKE_PORT_B:-7312}
PORT_C=${MOMA_SMOKE_PORT_C:-7313}
PORT_D=${MOMA_SMOKE_PORT_D:-7314}
PORT_E=${MOMA_SMOKE_PORT_E:-7315}
ADDR_A=127.0.0.1:$PORT_A
ADDR_B=127.0.0.1:$PORT_B
ADDR_C=127.0.0.1:$PORT_C
ADDR_D=127.0.0.1:$PORT_D
ADDR_E=127.0.0.1:$PORT_E
WORK=$(mktemp -d "${TMPDIR:-/tmp}/moma_serve_smoke.XXXXXX")

# Small segments so the run actually rotates (and checkpoints prune).
SERVE_A=(serve --addr "$ADDR_A" --scale small --seed 7 --threads 2
         --wal "$WORK/a.wal" --segment-records 40)

SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# stat with retry: right after a SIGKILL + restart the first connection
# can land in the dying listener's backlog and be reset — that is the
# crash we arranged, not a server bug, so give the fresh server a few
# attempts to come up.
stat_retry() {
    local addr=$1 key=$2 out
    for _ in 1 2 3 4 5; do
        if out=$("$MOMA_LOAD" stat --addr "$addr" --key "$key" 2>/dev/null); then
            echo "$out"
            return 0
        fi
        sleep 1
    done
    "$MOMA_LOAD" stat --addr "$addr" --key "$key"
}

# ---------------------------------------------------------------- run A
echo "== run A: serve --wal (40-record segments), endpoint smoke, checkpoint, kill -9 mid-stream"
"$MOMA" "${SERVE_A[@]}" &
SERVER_PID=$!

# Endpoint conformance: ping/stats/match/compose/query/delta/checkpoint.
"$MOMA_LOAD" smoke --addr "$ADDR_A"
echo "SMOKE_OK"

# Batch endpoints: 6 deltas as ONE batch_delta frame (one WAL group
# commit — contiguous seqs asserted by the client), plus batch_query
# responses byte-identical to singleton queries. Run B sends the same
# 6 items singly; the final diff gate proves the group commit replays
# bit-identically to singles.
"$MOMA_LOAD" batch --addr "$ADDR_A" --items 6

# Deterministic delta stream, slowed down so the kill lands mid-stream;
# checkpoint once while it runs so recovery has a mid-stream checkpoint.
"$MOMA_LOAD" stream --addr "$ADDR_A" --steps 400 --sleep-ms 25 &
STREAM_PID=$!
sleep 2
"$MOMA_LOAD" checkpoint --addr "$ADDR_A"
echo "CHECKPOINT_MID_STREAM"
sleep 1

kill -9 "$SERVER_PID"
echo "== killed server A (pid $SERVER_PID) with SIGKILL"
SERVER_PID=""
# The stream client must notice the dead server; exit code 3 means
# "connection lost mid-stream", which is exactly what we arranged.
set +e
wait "$STREAM_PID"
STREAM_RC=$?
set -e
if [[ "$STREAM_RC" -ne 3 && "$STREAM_RC" -ne 0 ]]; then
    echo "serve_smoke: stream client exited $STREAM_RC (want 3, or 0 if it finished)"
    exit 1
fi
echo "STREAM_KILLED (client exit $STREAM_RC)"

# ------------------------------------------- recovery 1: bounded replay
echo "== restart with --replay (bounded by the mid-stream checkpoint)"
"$MOMA" "${SERVE_A[@]}" --replay &
SERVER_PID=$!

K=$(stat_retry "$ADDR_A" commands.delta)
SEQ=$(stat_retry "$ADDR_A" wal.seq)
CP=$(stat_retry "$ADDR_A" wal.checkpoint_seq)
LAG=$(stat_retry "$ADDR_A" wal.lag)
echo "== recovered: $K delta command(s), wal seq $SEQ, checkpoint seq $CP, lag $LAG"
if [[ "$K" -lt 3 ]]; then
    echo "serve_smoke: only $K delta commands recovered — kill landed before the stream ran"
    exit 1
fi
if [[ "$CP" -le 0 ]]; then
    echo "serve_smoke: recovery restored no checkpoint (checkpoint_seq $CP)"
    exit 1
fi
if [[ "$LAG" -ge "$SEQ" ]]; then
    echo "serve_smoke: replay was not bounded — replayed $LAG of $SEQ records despite checkpoint $CP"
    exit 1
fi
echo "BOUNDED_REPLAY: replayed $LAG of $SEQ records (checkpoint covered $CP)"

# ------------------------------------- recovery 2: kill mid-checkpoint
# Ask for a checkpoint while the fault injection holds the staged state
# un-renamed for 6s, and SIGKILL inside that window: the half-published
# checkpoint must be invisible to the next recovery.
"$MOMA_LOAD" shutdown --addr "$ADDR_A"
wait "$SERVER_PID" || true
MOMA_CHECKPOINT_FAULT_DELAY_MS=6000 "$MOMA" "${SERVE_A[@]}" --replay &
SERVER_PID=$!
# Block until the restarted server answers, so the checkpoint request
# below lands immediately and the kill falls inside the fault window.
stat_retry "$ADDR_A" wal.seq >/dev/null
"$MOMA_LOAD" checkpoint --addr "$ADDR_A" &
CKPT_PID=$!
sleep 2
kill -9 "$SERVER_PID"
echo "== killed server A (pid $SERVER_PID) with SIGKILL mid-checkpoint"
SERVER_PID=""
wait "$CKPT_PID" 2>/dev/null || true

echo "== restart with --replay after the torn checkpoint"
"$MOMA" "${SERVE_A[@]}" --replay &
SERVER_PID=$!
CP2=$(stat_retry "$ADDR_A" wal.checkpoint_seq)
K2=$(stat_retry "$ADDR_A" commands.delta)
if [[ "$CP2" -ne "$CP" ]]; then
    echo "serve_smoke: expected fallback to checkpoint $CP after the mid-checkpoint kill, got $CP2"
    exit 1
fi
if [[ "$K2" -ne "$K" ]]; then
    echo "serve_smoke: delta count drifted across the mid-checkpoint crash ($K2 vs $K)"
    exit 1
fi
echo "CHECKPOINT_FALLBACK: torn checkpoint ignored, recovered from seq $CP2"

"$MOMA_LOAD" dump --addr "$ADDR_A" --dir "$WORK/dump_replayed"
"$MOMA_LOAD" shutdown --addr "$ADDR_A"
wait "$SERVER_PID" || true
SERVER_PID=""

# ---------------------------------------------------------------- run B
# Smoke contributes 2 deltas and the batch leg 6, so the stream makes
# up the difference to K. The batch items are sent singly here — the
# final diff proves the group-committed run A state matches.
echo "== run B: clean server, same command prefix ($((K - 8)) stream steps)"
"$MOMA" serve --addr "$ADDR_B" --scale small --seed 7 --threads 2 \
    --wal "$WORK/b.wal" &
SERVER_PID=$!

"$MOMA_LOAD" smoke --addr "$ADDR_B"
"$MOMA_LOAD" batch --addr "$ADDR_B" --items 6 --singles 1
"$MOMA_LOAD" stream --addr "$ADDR_B" --steps $((K - 8))
K_B=$("$MOMA_LOAD" stat --addr "$ADDR_B" --key commands.delta)
if [[ "$K_B" -ne "$K" ]]; then
    echo "serve_smoke: reference run has $K_B delta commands, want $K"
    exit 1
fi
"$MOMA_LOAD" dump --addr "$ADDR_B" --dir "$WORK/dump_clean"
"$MOMA_LOAD" shutdown --addr "$ADDR_B"
wait "$SERVER_PID" || true
SERVER_PID=""

# ---------------------------------------------------------------- gate
echo "== comparing recovered state against the clean run"
if diff -r "$WORK/dump_replayed" "$WORK/dump_clean"; then
    echo "BIT_IDENTICAL: replayed state matches the clean run byte for byte"
else
    echo "serve_smoke: FAIL — replayed state diverges from the clean run"
    exit 1
fi

# ------------------------------------------------------- overload leg
# Embedded server with max_pending_writes=1 and a small connection cap:
# concurrent deltas get explicit `overloaded` frames, a connection past
# the cap gets a `busy` frame, reads stay responsive, a retried delta
# recovers, and stats end with degraded=false (zero server panics).
echo "== overload leg: admission control under write-budget saturation"
"$MOMA_LOAD" overload

# ---------------------------------------------------------------- run C
# Background auto-checkpointer crash-safety: a server with
# --checkpoint-every-records publishes checkpoints from its own thread,
# off the delta path. Kill -9 inside a *background* checkpoint's fault
# window; recovery must fall back to the previous checkpoint.
echo "== run C: background auto-checkpointer, kill -9 mid-background-checkpoint"
SERVE_C=(serve --addr "$ADDR_C" --scale small --seed 7 --threads 2
         --wal "$WORK/c.wal" --segment-records 40)
"$MOMA" "${SERVE_C[@]}" --checkpoint-every-records 5 &
SERVER_PID=$!

# Smoke includes one *explicit* checkpoint command, which usually wins
# the race against the 100ms background poll. Note its seq, then drive
# six more deltas as ONE batch group commit to re-arm the records
# threshold: the next checkpoint past CP_SMOKE can only come from the
# background thread, and its trigger was a group-committed batch.
"$MOMA_LOAD" smoke --addr "$ADDR_C"
CP_SMOKE=$(stat_retry "$ADDR_C" wal.checkpoint_seq)
"$MOMA_LOAD" batch --addr "$ADDR_C" --items 6
CP_C=0
for _ in $(seq 1 40); do
    CP_C=$(stat_retry "$ADDR_C" wal.checkpoint_seq)
    [[ "$CP_C" -gt "$CP_SMOKE" ]] && break
    sleep 0.25
done
if [[ "$CP_C" -le "$CP_SMOKE" ]]; then
    echo "serve_smoke: background checkpointer never published (checkpoint_seq stuck at $CP_C)"
    exit 1
fi
AUTO_C=$(stat_retry "$ADDR_C" auto_checkpoints)
K_C=$(stat_retry "$ADDR_C" commands.delta)
if [[ "$AUTO_C" -le 0 ]]; then
    echo "serve_smoke: checkpoint_seq $CP_C but auto_checkpoints $AUTO_C — not the background thread?"
    exit 1
fi
echo "BACKGROUND_CHECKPOINT: auto checkpoint at seq $CP_C ($AUTO_C automatic)"

# Restart with fault injection: the next background checkpoint stalls
# 10s inside its staging window. Five stream deltas re-arm the records
# threshold, then the SIGKILL lands mid-publication.
"$MOMA_LOAD" shutdown --addr "$ADDR_C"
wait "$SERVER_PID" || true
MOMA_CHECKPOINT_FAULT_DELAY_MS=10000 "$MOMA" "${SERVE_C[@]}" --replay --checkpoint-every-records 5 &
SERVER_PID=$!
stat_retry "$ADDR_C" wal.seq >/dev/null
# Background the stream: once the checkpointer enters its 10s fault
# window it holds the write lock, so a late stream step may block —
# the SIGKILL below must not wait for it.
"$MOMA_LOAD" stream --addr "$ADDR_C" --steps 5 &
STREAM_C_PID=$!
sleep 5
kill -9 "$SERVER_PID"
echo "== killed server C (pid $SERVER_PID) with SIGKILL mid-background-checkpoint"
SERVER_PID=""
set +e
wait "$STREAM_C_PID"
STREAM_C_RC=$?
set -e
if [[ "$STREAM_C_RC" -ne 0 && "$STREAM_C_RC" -ne 3 ]]; then
    echo "serve_smoke: run C stream exited $STREAM_C_RC (want 0, or 3 if the kill caught it mid-step)"
    exit 1
fi

# Final restart WITHOUT auto-checkpointing: the torn background
# checkpoint must be invisible and recovery falls back to CP_C; the
# streamed deltas survive via WAL replay.
"$MOMA" "${SERVE_C[@]}" --replay &
SERVER_PID=$!
CP_FINAL=$(stat_retry "$ADDR_C" wal.checkpoint_seq)
K_FINAL=$(stat_retry "$ADDR_C" commands.delta)
if [[ "$CP_FINAL" -ne "$CP_C" ]]; then
    echo "serve_smoke: expected fallback to background checkpoint $CP_C, got $CP_FINAL"
    exit 1
fi
if [[ "$K_FINAL" -lt "$K_C" ]]; then
    echo "serve_smoke: delta commands went backwards across the crash ($K_FINAL < $K_C)"
    exit 1
fi
echo "BACKGROUND_CHECKPOINT_FALLBACK: torn background checkpoint ignored, recovered from seq $CP_FINAL ($K_FINAL deltas)"
"$MOMA_LOAD" shutdown --addr "$ADDR_C"
wait "$SERVER_PID" || true
SERVER_PID=""

# ---------------------------------------------------------------- run D
# Sharded crash gate: 4 shards, each with its own WAL directory under
# d.wal/shard.<i>. Smoke traffic lands on one shard via the routing
# cascade; `scatter` places one hinted match per shard and deltas all
# of them, so every shard's log has records to replay. A mid-stream
# checkpoint exercises the per-shard checkpoint chains.
echo "== run D: serve --shards 4 --wal, traffic on every shard, kill -9 mid-stream"
SERVE_D=(serve --addr "$ADDR_D" --scale small --seed 7 --threads 2
         --wal "$WORK/d.wal" --segment-records 40 --shards 4)
"$MOMA" "${SERVE_D[@]}" &
SERVER_PID=$!

"$MOMA_LOAD" smoke --addr "$ADDR_D"
"$MOMA_LOAD" scatter --addr "$ADDR_D" --shards 4 --deltas 6
SHARDS_D=$(stat_retry "$ADDR_D" shard_count)
if [[ "$SHARDS_D" -ne 4 ]]; then
    echo "serve_smoke: run D reports shard_count $SHARDS_D, want 4"
    exit 1
fi
"$MOMA_LOAD" stream --addr "$ADDR_D" --steps 400 --sleep-ms 25 &
STREAM_D_PID=$!
sleep 2
"$MOMA_LOAD" checkpoint --addr "$ADDR_D"
sleep 1

kill -9 "$SERVER_PID"
echo "== killed server D (pid $SERVER_PID) with SIGKILL"
SERVER_PID=""
set +e
wait "$STREAM_D_PID"
STREAM_D_RC=$?
set -e
if [[ "$STREAM_D_RC" -ne 3 && "$STREAM_D_RC" -ne 0 ]]; then
    echo "serve_smoke: run D stream exited $STREAM_D_RC (want 3, or 0 if it finished)"
    exit 1
fi
for i in 0 1 2 3; do
    if [[ ! -d "$WORK/d.wal/shard.$i" ]]; then
        echo "serve_smoke: run D never created $WORK/d.wal/shard.$i"
        exit 1
    fi
done

# Per-shard recovery: every shard replays its own log independently.
echo "== restart with --replay --shards 4"
"$MOMA" "${SERVE_D[@]}" --replay &
SERVER_PID=$!
K_D=$(stat_retry "$ADDR_D" commands.delta)
CP_D=$(stat_retry "$ADDR_D" wal.checkpoint_seq)
SEQ_D=$(stat_retry "$ADDR_D" wal.seq)
LAG_D=$(stat_retry "$ADDR_D" wal.lag)
echo "== recovered 4 shards: $K_D delta command(s), wal seq $SEQ_D (summed), checkpoint seq $CP_D, lag $LAG_D"
# smoke sends 2 deltas and scatter 24; at least one stream step must
# have survived for the kill to have landed mid-stream.
if [[ "$K_D" -lt 27 ]]; then
    echo "serve_smoke: only $K_D delta commands recovered — kill landed before the stream ran"
    exit 1
fi
if [[ "$CP_D" -le 0 ]]; then
    echo "serve_smoke: sharded recovery restored no checkpoint (checkpoint_seq $CP_D)"
    exit 1
fi
if [[ "$LAG_D" -ge "$SEQ_D" ]]; then
    echo "serve_smoke: sharded replay was not bounded — replayed $LAG_D of $SEQ_D records"
    exit 1
fi
"$MOMA_LOAD" dump --addr "$ADDR_D" --dir "$WORK/dump_shard_replayed"
"$MOMA_LOAD" shutdown --addr "$ADDR_D"
wait "$SERVER_PID" || true
SERVER_PID=""

# ---------------------------------------------------------------- run E
# Clean 4-shard reference: same command prefix, fresh WAL. The delta
# traffic is deterministic, so matching the recovered delta count means
# replaying K_D - 26 stream steps on top of smoke + scatter.
echo "== run E: clean 4-shard server, same command prefix ($((K_D - 26)) stream steps)"
"$MOMA" serve --addr "$ADDR_E" --scale small --seed 7 --threads 2 \
    --wal "$WORK/e.wal" --shards 4 &
SERVER_PID=$!

"$MOMA_LOAD" smoke --addr "$ADDR_E"
"$MOMA_LOAD" scatter --addr "$ADDR_E" --shards 4 --deltas 6
"$MOMA_LOAD" stream --addr "$ADDR_E" --steps $((K_D - 26))
K_E=$("$MOMA_LOAD" stat --addr "$ADDR_E" --key commands.delta)
if [[ "$K_E" -ne "$K_D" ]]; then
    echo "serve_smoke: sharded reference run has $K_E delta commands, want $K_D"
    exit 1
fi
"$MOMA_LOAD" dump --addr "$ADDR_E" --dir "$WORK/dump_shard_clean"
"$MOMA_LOAD" shutdown --addr "$ADDR_E"
wait "$SERVER_PID" || true
SERVER_PID=""

echo "== comparing recovered 4-shard state against the clean 4-shard run"
for i in 0 1 2 3; do
    if [[ ! -f "$WORK/dump_shard_replayed/shard.$i/manifest.tsv" ]]; then
        echo "serve_smoke: recovered dump is missing shard.$i"
        exit 1
    fi
done
if diff -r "$WORK/dump_shard_replayed" "$WORK/dump_shard_clean"; then
    echo "SHARD_BIT_IDENTICAL: 4-shard replayed state matches the clean run byte for byte"
else
    echo "serve_smoke: FAIL — 4-shard replayed state diverges from the clean run"
    exit 1
fi
