#!/usr/bin/env bash
# serve_smoke.sh — crash-recovery gate for `moma serve`.
#
# Exercises every endpoint against a live server, then proves the
# checkpointed, segment-rotated WAL the hard way:
#
#   1. kill -9 the server mid-delta-stream (after a mid-stream
#      checkpoint) and restart with --replay: the recovered server must
#      have restored that checkpoint and replayed only the log suffix
#      after it (bounded replay);
#   2. kill -9 the server *mid-checkpoint* (inside the staging window,
#      via MOMA_CHECKPOINT_FAULT_DELAY_MS) and restart again: the
#      half-published checkpoint must be invisible and recovery must
#      fall back to the previous one;
#   3. compare the recovered state against a clean run that executed
#      exactly the same command prefix — `diff -r` byte-identical (the
#      delta stream is deterministic, so "same prefix" is just "same
#      number of delta commands").
#
# Usage: scripts/serve_smoke.sh [--bin-dir target/release]
# Needs: target/release/moma and target/release/moma_load (built
# beforehand; CI builds them in the shared release-build step).

set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=target/release
if [[ "${1:-}" == "--bin-dir" ]]; then
    BIN_DIR=$2
fi
MOMA=$BIN_DIR/moma
MOMA_LOAD=$BIN_DIR/moma_load
for bin in "$MOMA" "$MOMA_LOAD"; do
    [[ -x "$bin" ]] || { echo "serve_smoke: missing $bin (run: cargo build --release)"; exit 1; }
done

PORT_A=${MOMA_SMOKE_PORT_A:-7311}
PORT_B=${MOMA_SMOKE_PORT_B:-7312}
ADDR_A=127.0.0.1:$PORT_A
ADDR_B=127.0.0.1:$PORT_B
WORK=$(mktemp -d "${TMPDIR:-/tmp}/moma_serve_smoke.XXXXXX")

# Small segments so the run actually rotates (and checkpoints prune).
SERVE_A=(serve --addr "$ADDR_A" --scale small --seed 7 --threads 2
         --wal "$WORK/a.wal" --segment-records 40)

SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# stat with retry: right after a SIGKILL + restart the first connection
# can land in the dying listener's backlog and be reset — that is the
# crash we arranged, not a server bug, so give the fresh server a few
# attempts to come up.
stat_retry() {
    local addr=$1 key=$2 out
    for _ in 1 2 3 4 5; do
        if out=$("$MOMA_LOAD" stat --addr "$addr" --key "$key" 2>/dev/null); then
            echo "$out"
            return 0
        fi
        sleep 1
    done
    "$MOMA_LOAD" stat --addr "$addr" --key "$key"
}

# ---------------------------------------------------------------- run A
echo "== run A: serve --wal (40-record segments), endpoint smoke, checkpoint, kill -9 mid-stream"
"$MOMA" "${SERVE_A[@]}" &
SERVER_PID=$!

# Endpoint conformance: ping/stats/match/compose/query/delta/checkpoint.
"$MOMA_LOAD" smoke --addr "$ADDR_A"
echo "SMOKE_OK"

# Deterministic delta stream, slowed down so the kill lands mid-stream;
# checkpoint once while it runs so recovery has a mid-stream checkpoint.
"$MOMA_LOAD" stream --addr "$ADDR_A" --steps 400 --sleep-ms 25 &
STREAM_PID=$!
sleep 2
"$MOMA_LOAD" checkpoint --addr "$ADDR_A"
echo "CHECKPOINT_MID_STREAM"
sleep 1

kill -9 "$SERVER_PID"
echo "== killed server A (pid $SERVER_PID) with SIGKILL"
SERVER_PID=""
# The stream client must notice the dead server; exit code 3 means
# "connection lost mid-stream", which is exactly what we arranged.
set +e
wait "$STREAM_PID"
STREAM_RC=$?
set -e
if [[ "$STREAM_RC" -ne 3 && "$STREAM_RC" -ne 0 ]]; then
    echo "serve_smoke: stream client exited $STREAM_RC (want 3, or 0 if it finished)"
    exit 1
fi
echo "STREAM_KILLED (client exit $STREAM_RC)"

# ------------------------------------------- recovery 1: bounded replay
echo "== restart with --replay (bounded by the mid-stream checkpoint)"
"$MOMA" "${SERVE_A[@]}" --replay &
SERVER_PID=$!

K=$(stat_retry "$ADDR_A" commands.delta)
SEQ=$(stat_retry "$ADDR_A" wal.seq)
CP=$(stat_retry "$ADDR_A" wal.checkpoint_seq)
LAG=$(stat_retry "$ADDR_A" wal.lag)
echo "== recovered: $K delta command(s), wal seq $SEQ, checkpoint seq $CP, lag $LAG"
if [[ "$K" -lt 3 ]]; then
    echo "serve_smoke: only $K delta commands recovered — kill landed before the stream ran"
    exit 1
fi
if [[ "$CP" -le 0 ]]; then
    echo "serve_smoke: recovery restored no checkpoint (checkpoint_seq $CP)"
    exit 1
fi
if [[ "$LAG" -ge "$SEQ" ]]; then
    echo "serve_smoke: replay was not bounded — replayed $LAG of $SEQ records despite checkpoint $CP"
    exit 1
fi
echo "BOUNDED_REPLAY: replayed $LAG of $SEQ records (checkpoint covered $CP)"

# ------------------------------------- recovery 2: kill mid-checkpoint
# Ask for a checkpoint while the fault injection holds the staged state
# un-renamed for 6s, and SIGKILL inside that window: the half-published
# checkpoint must be invisible to the next recovery.
"$MOMA_LOAD" shutdown --addr "$ADDR_A"
wait "$SERVER_PID" || true
MOMA_CHECKPOINT_FAULT_DELAY_MS=6000 "$MOMA" "${SERVE_A[@]}" --replay &
SERVER_PID=$!
# Block until the restarted server answers, so the checkpoint request
# below lands immediately and the kill falls inside the fault window.
stat_retry "$ADDR_A" wal.seq >/dev/null
"$MOMA_LOAD" checkpoint --addr "$ADDR_A" &
CKPT_PID=$!
sleep 2
kill -9 "$SERVER_PID"
echo "== killed server A (pid $SERVER_PID) with SIGKILL mid-checkpoint"
SERVER_PID=""
wait "$CKPT_PID" 2>/dev/null || true

echo "== restart with --replay after the torn checkpoint"
"$MOMA" "${SERVE_A[@]}" --replay &
SERVER_PID=$!
CP2=$(stat_retry "$ADDR_A" wal.checkpoint_seq)
K2=$(stat_retry "$ADDR_A" commands.delta)
if [[ "$CP2" -ne "$CP" ]]; then
    echo "serve_smoke: expected fallback to checkpoint $CP after the mid-checkpoint kill, got $CP2"
    exit 1
fi
if [[ "$K2" -ne "$K" ]]; then
    echo "serve_smoke: delta count drifted across the mid-checkpoint crash ($K2 vs $K)"
    exit 1
fi
echo "CHECKPOINT_FALLBACK: torn checkpoint ignored, recovered from seq $CP2"

"$MOMA_LOAD" dump --addr "$ADDR_A" --dir "$WORK/dump_replayed"
"$MOMA_LOAD" shutdown --addr "$ADDR_A"
wait "$SERVER_PID" || true
SERVER_PID=""

# ---------------------------------------------------------------- run B
echo "== run B: clean server, same command prefix ($((K - 2)) stream steps)"
"$MOMA" serve --addr "$ADDR_B" --scale small --seed 7 --threads 2 \
    --wal "$WORK/b.wal" &
SERVER_PID=$!

"$MOMA_LOAD" smoke --addr "$ADDR_B"
"$MOMA_LOAD" stream --addr "$ADDR_B" --steps $((K - 2))
K_B=$("$MOMA_LOAD" stat --addr "$ADDR_B" --key commands.delta)
if [[ "$K_B" -ne "$K" ]]; then
    echo "serve_smoke: reference run has $K_B delta commands, want $K"
    exit 1
fi
"$MOMA_LOAD" dump --addr "$ADDR_B" --dir "$WORK/dump_clean"
"$MOMA_LOAD" shutdown --addr "$ADDR_B"
wait "$SERVER_PID" || true
SERVER_PID=""

# ---------------------------------------------------------------- gate
echo "== comparing recovered state against the clean run"
if diff -r "$WORK/dump_replayed" "$WORK/dump_clean"; then
    echo "BIT_IDENTICAL: replayed state matches the clean run byte for byte"
else
    echo "serve_smoke: FAIL — replayed state diverges from the clean run"
    exit 1
fi
