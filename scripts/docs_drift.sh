#!/usr/bin/env bash
# Drift check between docs/ARCHITECTURE.md and the workspace.
#
# Fails if:
#   1. a workspace crate (crates/*/) is not mentioned in the book,
#   2. the book names a `moma-<x>` crate that does not exist,
#   3. a serve-path module the book's data-flow diagram walks through
#      has been renamed or removed.
#
# Run from the repo root: scripts/docs_drift.sh
set -u

ARCH="docs/ARCHITECTURE.md"
fail=0

if [[ ! -f "$ARCH" ]]; then
    echo "docs_drift: $ARCH is missing" >&2
    exit 1
fi

# 1. Every workspace crate must appear in the book.
for dir in crates/*/; do
    crate="moma-$(basename "$dir")"
    if ! grep -q "$crate" "$ARCH"; then
        echo "docs_drift: crate \`$crate\` (from $dir) is not mentioned in $ARCH" >&2
        fail=1
    fi
done

# 2. Every crate the book names must exist.
while read -r crate; do
    [[ "$crate" == "moma" ]] && continue
    short="${crate#moma-}"
    if [[ ! -d "crates/$short" ]]; then
        echo "docs_drift: $ARCH names \`$crate\` but crates/$short does not exist" >&2
        fail=1
    fi
done < <(grep -o '\bmoma-[a-z]*\b' "$ARCH" | sort -u)

# 3. The serve-path modules the book's diagram walks through.
for m in server shard engine wal checkpoint protocol frame json client; do
    if [[ ! -f "crates/server/src/$m.rs" ]]; then
        echo "docs_drift: $ARCH documents serve module \`$m\` but crates/server/src/$m.rs does not exist" >&2
        fail=1
    fi
done

if [[ "$fail" -ne 0 ]]; then
    echo "docs_drift: $ARCH is out of date — update the book alongside the code" >&2
    exit 1
fi
echo "docs_drift: $ARCH matches the workspace"
