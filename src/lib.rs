//! # MOMA — a mapping-based object matching system
//!
//! A production-quality Rust reproduction of *MOMA — A Mapping-based
//! Object Matching System* (Andreas Thor, Erhard Rahm; CIDR 2007): a
//! domain-independent framework for object matching (entity resolution)
//! built around **instance mappings** — sets of correspondences
//! `(a, b, similarity)` between objects of two data sources.
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`model`] | physical/logical data sources, object instances, the source-mapping model |
//! | [`table`] | 3-column mapping tables, indexes, hash/sort-merge joins, TSV persistence |
//! | [`simstring`] | similarity measures: trigram, TF-IDF, affix, edit distances, person names, … |
//! | [`core`] | **the paper's contribution**: merge/compose/selection operators, matcher library, neighborhood matcher, workflows, mapping repository |
//! | [`ifuice`] | mini iFuice platform: source operators, fusion, the workflow script language |
//! | [`datagen`] | synthetic bibliographic world (DBLP / ACM / Google Scholar views + gold standards) |
//! | [`tune`] | self-tuning: grid search and decision trees over matcher configurations |
//! | [`eval`] | reproduction harness for every table and figure of the paper |
//! | [`server`] | `moma serve`: long-lived matching service with a write-ahead delta log and snapshot-isolated reads |
//!
//! ## Quick start
//!
//! ```
//! use moma::model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};
//! use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
//! use moma::core::ops::{merge, select, MergeFn, MissingPolicy, Selection};
//! use moma::simstring::SimFn;
//!
//! // 1. Register two sources.
//! let mut reg = SourceRegistry::new();
//! let mut dblp = LogicalSource::new("DBLP", ObjectType::new("Publication"),
//!     vec![AttrDef::text("title"), AttrDef::year("year")]);
//! dblp.insert_record("d1", vec![
//!     ("title", "Generic Schema Matching with Cupid".into()),
//!     ("year", 2001u16.into()),
//! ]).unwrap();
//! let mut acm = LogicalSource::new("ACM", ObjectType::new("Publication"),
//!     vec![AttrDef::text("title"), AttrDef::year("year")]);
//! acm.insert_record("P-672191", vec![
//!     ("title", "Generic schema matching with CUPID".into()),
//!     ("year", 2001u16.into()),
//! ]).unwrap();
//! let d = reg.register(dblp).unwrap();
//! let a = reg.register(acm).unwrap();
//!
//! // 2. Execute two attribute matchers and merge their same-mappings.
//! let ctx = MatchContext::new(&reg);
//! let by_title = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.5)
//!     .execute(&ctx, d, a).unwrap();
//! let by_year = AttributeMatcher::new("year", "year", SimFn::Year(0), 1.0)
//!     .execute(&ctx, d, a).unwrap();
//! let combined = merge(&[&by_title, &by_year], MergeFn::Avg, MissingPolicy::Zero).unwrap();
//!
//! // 3. Select the confident correspondences.
//! let result = select(&combined, &Selection::Threshold(0.8));
//! assert_eq!(result.len(), 1);
//! ```
//!
//! See `examples/` for realistic scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction map.

pub use moma_core as core;
pub use moma_datagen as datagen;
pub use moma_eval as eval;
pub use moma_ifuice as ifuice;
pub use moma_model as model;
pub use moma_server as server;
pub use moma_simstring as simstring;
pub use moma_table as table;
pub use moma_tune as tune;

/// Crate version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        let _m = crate::core::Mapping::identity(crate::model::LdsId(0), 3);
        assert_eq!(crate::simstring::SimFn::Trigram.eval("a", "a"), 1.0);
        assert!(!crate::VERSION.is_empty());
    }
}
