//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no network access to crates.io, so the subset of
//! the proptest 1.x API that MOMA's tests use is implemented locally:
//!
//! * the [`proptest!`] macro wrapping `fn name(x in strategy, ..)` bodies,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * the [`strategy::Strategy`] trait with `prop_map`,
//! * strategies for integer/float ranges, tuples, fixed arrays (uniform
//!   choice), `prop::collection::vec`, and `&str` regex-like patterns
//!   (character classes, groups, `{m,n}` / `?` / `*` / `+` quantifiers),
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed number
//! of deterministically seeded cases (seeded from the test name, so failures
//! reproduce across runs).

/// Number of generated cases per property test.
pub const NUM_CASES: u32 = 64;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Deterministic generator seeded from the test name; the stream
    /// itself comes from the vendored `rand` crate (as with real
    /// proptest, which builds on `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seed deterministically from an arbitrary string (the test name).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen()
        }
    }
}

pub mod strategy {
    use crate::pattern;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
    /// replaces the value-tree machinery.
    pub trait Strategy {
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    /// String literals act as regex-like pattern strategies, as in proptest.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            pattern::generate(self, rng)
        }
    }

    /// Fixed arrays pick one element uniformly (used for choosing among a
    /// fixed set of functions/values in tests).
    impl<T: Clone, const N: usize> Strategy for [T; N] {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(N > 0, "cannot sample from an empty array strategy");
            self[rng.below(N as u64) as usize].clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Strategy for `Vec`s of values from `element` with a length drawn
        /// from `size` — mirror of `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec()`](fn@vec).
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.size.start < self.size.end, "empty size range");
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub(crate) mod pattern {
    //! Generator for the regex subset proptest string strategies use here:
    //! character classes, literals, groups, and `{m,n}` / `?` / `*` / `+`.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Node {
        Literal(char),
        /// Inclusive char ranges, e.g. `[a-zA-Z. ]` → `[(a,z),(A,Z),(.,.),( , )]`.
        Class(Vec<(char, char)>),
        Group(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut pos = 0;
        let seq = parse_seq(&chars, &mut pos, pat);
        assert!(pos == chars.len(), "unsupported pattern syntax in {pat:?}");
        let mut out = String::new();
        for node in &seq {
            emit(node, rng, &mut out);
        }
        out
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pat: &str) -> Vec<Node> {
        let mut nodes = Vec::new();
        while *pos < chars.len() && chars[*pos] != ')' {
            let atom = match chars[*pos] {
                '[' => parse_class(chars, pos, pat),
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, pat);
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "unclosed group in pattern {pat:?}"
                    );
                    *pos += 1;
                    Node::Group(inner)
                }
                '\\' => {
                    *pos += 1;
                    assert!(*pos < chars.len(), "trailing escape in pattern {pat:?}");
                    let c = chars[*pos];
                    *pos += 1;
                    Node::Literal(c)
                }
                c => {
                    assert!(
                        !matches!(c, '|' | '^' | '$'),
                        "unsupported pattern syntax {c:?} in {pat:?}"
                    );
                    *pos += 1;
                    Node::Literal(c)
                }
            };
            nodes.push(parse_quantifier(atom, chars, pos, pat));
        }
        nodes
    }

    fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Node {
        *pos += 1; // consume '['
        assert!(
            *pos < chars.len() && chars[*pos] != '^',
            "unsupported class syntax in pattern {pat:?}"
        );
        let mut ranges = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let lo = chars[*pos];
            *pos += 1;
            if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                let hi = chars[*pos + 1];
                *pos += 2;
                assert!(lo <= hi, "inverted class range in pattern {pat:?}");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(*pos < chars.len(), "unclosed class in pattern {pat:?}");
        *pos += 1; // consume ']'
        assert!(
            !ranges.is_empty(),
            "empty character class in pattern {pat:?}"
        );
        Node::Class(ranges)
    }

    fn parse_quantifier(atom: Node, chars: &[char], pos: &mut usize, pat: &str) -> Node {
        if *pos >= chars.len() {
            return atom;
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            '*' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 8)
            }
            '+' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 1, 8)
            }
            '{' => {
                *pos += 1;
                let mut spec = String::new();
                while *pos < chars.len() && chars[*pos] != '}' {
                    spec.push(chars[*pos]);
                    *pos += 1;
                }
                assert!(*pos < chars.len(), "unclosed quantifier in pattern {pat:?}");
                *pos += 1; // consume '}'
                let (min, max) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier min"),
                        hi.parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = spec.parse().expect("quantifier count");
                        (n, n)
                    }
                };
                assert!(min <= max, "inverted quantifier in pattern {pat:?}");
                Node::Repeat(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                    .sum();
                let mut k = rng.below(total);
                for (lo, hi) in ranges {
                    let n = *hi as u64 - *lo as u64 + 1;
                    if k < n {
                        out.push(char::from_u32(*lo as u32 + k as u32).expect("class char"));
                        return;
                    }
                    k -= n;
                }
                unreachable!("class sampling out of bounds");
            }
            Node::Group(nodes) => {
                for n in nodes {
                    emit(n, rng, out);
                }
            }
            Node::Repeat(inner, min, max) => {
                let count = *min as u64 + rng.below((*max - *min) as u64 + 1);
                for _ in 0..count {
                    emit(inner, rng, out);
                }
            }
        }
    }
}

/// Property-test macro: mirror of `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ..) { body }` becomes a `#[test]` running
/// [`NUM_CASES`] deterministically seeded cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __strategies = ($($strat,)+);
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::NUM_CASES {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Mirror of `proptest::prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_shapes() {
        let mut rng = TestRng::for_test("pattern_shapes");
        for _ in 0..200 {
            let s = crate::pattern::generate("[a-z]{1,8}( [a-z]{1,8}){0,4}", &mut rng);
            assert!(!s.is_empty());
            for word in s.split(' ') {
                assert!((1..=8).contains(&word.len()), "bad word in {s:?}");
                assert!(word.bytes().all(|b| b.is_ascii_lowercase()));
            }
            let t = crate::pattern::generate("[A-Za-z. ]{0,20}", &mut rng);
            assert!(t.len() <= 20);
            let u = crate::pattern::generate("x?", &mut rng);
            assert!(u.len() <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut rng = TestRng::for_test("determinism");
            crate::pattern::generate("[a-d][a-d ]{2,11}", &mut rng)
        };
        assert_eq!(mk(), mk());
    }

    proptest! {
        /// The macro itself: ranges, tuples, vec, prop_map, arrays.
        #[test]
        fn macro_end_to_end(
            x in 0u32..10,
            f in 0.25f64..=0.75,
            v in prop::collection::vec((0u32..5, 0.0f64..=1.0), 0..7),
            pick in [1u8, 2, 3],
            s in "[a-c]{2,4}",
        ) {
            prop_assert!(x < 10);
            prop_assert!((0.25..=0.75).contains(&f));
            prop_assert!(v.len() < 7);
            for (a, b) in &v {
                prop_assert!(*a < 5 && (0.0..=1.0).contains(b));
            }
            prop_assert!([1, 2, 3].contains(&pick));
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert_ne!(s.len(), 0);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test("prop_map_applies");
        let doubled = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = doubled.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }
}
