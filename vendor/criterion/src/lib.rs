//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so the subset
//! of the criterion 0.5 API that MOMA's benches use is implemented locally:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of statistical sampling it runs each benchmark body a small fixed
//! number of times and reports the mean wall-clock time per iteration. That
//! keeps `cargo bench` runnable (and `cargo bench --no-run` compiling) without
//! the real dependency; numbers are indicative only.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("hash", 1000)` → `hash/1000`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly, recording mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(id: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        mean_ns: 0.0,
    };
    f(&mut b);
    println!("bench: {id:<48} {:>14.0} ns/iter", b.mean_ns);
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.iters, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    iters: u64,
}

impl BenchmarkGroup {
    /// Criterion's sample count; the stub maps it to a small iteration cap.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 10);
        self
    }

    /// Criterion's warm-up duration; accepted and ignored by the stub.
    pub fn warm_up_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Criterion's measurement duration; accepted and ignored by the stub.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.iters, &mut f);
        self
    }

    /// Benchmark a function parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.iters, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// Mirror of `criterion_group!`: bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of `criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` passes harness flags; only time under `cargo bench`.
            let bench_mode = std::env::args().any(|a| a == "--bench");
            if !bench_mode && std::env::args().len() > 1 {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut hits = 0u32;
        Criterion::default().bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }

    #[test]
    fn group_runs_and_formats_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut hits = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 10), &10, |b, &n| {
            b.iter(|| hits += n as u32)
        });
        g.finish();
        assert!(hits >= 10);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("hash", 100).id, "hash/100");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
