//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the subset of the rand 0.8 API that MOMA uses is
//! implemented locally: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is a deterministic `xorshift*`-style PRNG seeded via
//! SplitMix64 — statistically fine for synthetic data generation and
//! benchmarks (MOMA's only uses), not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full raw stream.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + f64::sample(rng) * (self.end() - self.start())
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly from its natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xorshift* state, SplitMix64 init).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer spreads low-entropy seeds across the
            // state space (seeds 0, 1, 2... are common in tests).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
